"""Quickstart: the paper's running example, end to end.

Builds the Fig. 1 department document, constructs 2x2 position and
coverage histograms, and walks through every estimator on the
faculty//TA query -- reproducing the numbers the paper's Sections 2-4
quote (naive 15, schema bound 5, primitive ~0.6, no-overlap ~1.9,
real 2).

Run:  python examples/quickstart.py
"""

from repro import AnswerSizeEstimator, label_document
from repro.datasets import paper_example_document
from repro.predicates import TagPredicate


def main() -> None:
    # 1. The database: a node-labeled tree (paper Fig. 1).
    document = paper_example_document()
    tree = label_document(document)
    print(f"Database: {len(tree)} element nodes, labels in [1, {tree.max_label}]")

    # 2. The estimator: builds histograms lazily over a 2x2 grid,
    #    exactly the granularity of the paper's Fig. 7.
    estimator = AnswerSizeEstimator(tree, grid_size=2)

    faculty = TagPredicate("faculty")
    ta = TagPredicate("TA")
    print(f"|faculty| = {estimator.catalog.stats(faculty).count}")
    print(f"|TA|      = {estimator.catalog.stats(ta).count}")
    print(f"faculty no-overlap? {estimator.is_no_overlap(faculty)}")
    print()

    # 3. The position histograms of Fig. 7, drawn as in the paper.
    from repro.histograms.render import render_position_histogram

    for predicate in (faculty, ta):
        print(render_position_histogram(estimator.position_histogram(predicate)))
        print()

    # 4. Every estimator on faculty//TA (paper Sections 2-4).
    query = "//faculty//TA"
    real = estimator.real_answer(query)
    for method in ("naive", "upper-bound", "ph-join", "no-overlap"):
        result = estimator.estimate_pair(faculty, ta, method=method)
        print(f"{method:>12}: {result.value:8.3f}")
    print(f"{'real':>12}: {real:8d}")
    print()

    # 5. A twig: the introduction's faculty[TA][RA] query.
    twig = "//department//faculty[.//TA][.//RA]"
    estimate = estimator.estimate(twig)
    print(f"twig {twig}")
    print(f"  estimated matches: {estimate.value:.2f}")
    print(f"  real matches:      {estimator.real_answer(twig)}")


if __name__ == "__main__":
    main()
