"""Bring your own schema: DTD-driven generation + schema-aware estimation.

Shows the full substrate working on a user-supplied DTD:

1. parse a DTD with the built-in parser;
2. analyse it (which tags are schema-guaranteed no-overlap? which
   nestings are impossible?);
3. generate a conforming random document;
4. register schema facts with the estimator so it picks the
   coverage-based algorithm exactly where the schema allows;
5. estimate and verify a few queries, including a schema-impossible
   one (answer provably zero -- no histogram needed, paper Section 4).

Run:  python examples/custom_schema.py
"""

from repro import AnswerSizeEstimator, label_document
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.dtd import analyze_dtd, parse_dtd
from repro.predicates import TagPredicate

STORE_DTD = """
<!ELEMENT store (category+)>
<!ELEMENT category (name, category*, product*)>
<!ELEMENT product (name, price, review*)>
<!ELEMENT review (rating, comment?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT rating (#PCDATA)>
<!ELEMENT comment (#PCDATA)>
"""


def main() -> None:
    declarations = parse_dtd(STORE_DTD)
    schema = analyze_dtd(declarations)

    print("schema analysis:")
    for tag in declarations:
        flag = "no-overlap" if schema.no_overlap(tag) else "overlap (recursive)"
        print(f"  {tag:>10}: {flag}")
    print(f"  product under review possible? {schema.can_contain('review', 'product')}")
    print(f"  review under product possible?  {schema.can_contain('product', 'review')}")
    print()

    config = GeneratorConfig(repeat_mean=2.5, max_depth=10, depth_damping=0.85)
    document = DtdGenerator(declarations, config, seed=99).generate("store")
    tree = label_document(document)
    print(f"generated store catalog: {len(tree):,} nodes\n")

    estimator = AnswerSizeEstimator(tree, grid_size=10)
    # Feed schema facts to the catalog: data-derived detection would
    # find the same thing here, but schema assertions also protect
    # against small samples that happen not to nest.
    for tag in declarations:
        estimator.catalog.register(
            TagPredicate(tag), schema_no_overlap=schema.no_overlap(tag)
        )

    for query in (
        "//category//product",
        "//product//review",
        "//category//review",
        "//product[.//review]//price",
    ):
        estimate = estimator.estimate(query)
        real = estimator.real_answer(query)
        print(f"{query:>32}: estimate {estimate.value:10.1f}   real {real:8d}")

    # Schema shortcut: review//product is impossible -- no estimation
    # work required at all.
    if schema.zero_answer("review", "product"):
        print(f"{'//review//product':>32}: schema-guaranteed zero "
              f"(real {estimator.real_answer('//review//product')})")


if __name__ == "__main__":
    main()
