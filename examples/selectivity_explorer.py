"""Selectivity explorer: accuracy and storage across grid sizes.

Interactively useful view of the paper's Figs. 11-12 trade-off: for a
chosen query, sweep the histogram grid size and print estimate
accuracy next to the summary storage cost, for both the primitive
pH-join and (where applicable) the coverage-based no-overlap estimator.

Run:  python examples/selectivity_explorer.py [xpath]
      python examples/selectivity_explorer.py "//department//email"
"""

import sys

from repro import AnswerSizeEstimator, label_document
from repro.datasets import generate_orgchart
from repro.histograms.storage import coverage_storage_bytes, position_storage_bytes
from repro.query import parse_xpath
from repro.utils.tables import format_table


def main() -> None:
    query = sys.argv[1] if len(sys.argv) > 1 else "//manager//employee"
    pattern = parse_xpath(query)
    if pattern.size() != 2:
        raise SystemExit("the explorer sweeps two-node queries; got a larger twig")
    anc = pattern.root.predicate
    desc = pattern.root.children[0].predicate

    print("generating synthetic orgchart data set ...")
    tree = label_document(generate_orgchart(seed=42))
    print(f"  {len(tree):,} element nodes\n")

    base = AnswerSizeEstimator(tree, grid_size=10)
    real = base.real_answer(pattern)
    no_overlap = base.is_no_overlap(anc)
    print(f"query {query}: real answer {real:,}")
    print(f"ancestor predicate {anc.name!r} no-overlap: {no_overlap}\n")

    rows = []
    for grid_size in (2, 4, 8, 10, 16, 24, 32, 48):
        estimator = AnswerSizeEstimator(tree, grid_size=grid_size)
        hist_bytes = position_storage_bytes(
            estimator.position_histogram(anc)
        ) + position_storage_bytes(estimator.position_histogram(desc))
        coverage = estimator.coverage_histogram(anc)
        cvg_bytes = coverage_storage_bytes(coverage) if coverage else 0
        ph = estimator.estimate_pair(anc, desc, method="ph-join").value
        row = [
            grid_size,
            hist_bytes,
            cvg_bytes,
            round(ph, 1),
            round(ph / real, 3) if real else "-",
        ]
        if no_overlap:
            nov = estimator.estimate_pair(anc, desc, method="no-overlap").value
            row += [round(nov, 1), round(nov / real, 3) if real else "-"]
        else:
            row += ["N/A", "N/A"]
        rows.append(row)

    print(
        format_table(
            [
                "grid",
                "hist bytes",
                "cvg bytes",
                "pH-join",
                "pH/real",
                "no-overlap",
                "noOvl/real",
            ],
            rows,
            title=f"Accuracy vs storage for {query} (real = {real:,})",
        )
    )


if __name__ == "__main__":
    main()
