"""Cost-based plan selection on a DBLP-like bibliography.

The use case from the paper's introduction: a twig query can be
evaluated by structural joins in several orders, and the intermediate
result sizes decide which order wins.  This example:

1. generates a DBLP-like data set,
2. enumerates every connected join order for a 3-node twig,
3. costs each plan with histogram estimates and with exact sizes,
4. shows that the estimate-driven choice matches the true optimum,
5. executes the chosen plan with stack-tree structural joins.

Run:  python examples/dblp_optimizer.py
"""

from repro import AnswerSizeEstimator, label_document
from repro.datasets import generate_dblp
from repro.optimizer import Optimizer
from repro.predicates import TagPredicate
from repro.query import parse_xpath, stack_tree_join


def main() -> None:
    print("generating DBLP-like data set ...")
    tree = label_document(generate_dblp(seed=7, scale=0.5))
    estimator = AnswerSizeEstimator(tree, grid_size=10)
    print(f"  {len(tree):,} element nodes\n")

    query = "//article[.//author]//cite"
    pattern = parse_xpath(query)
    print(f"query: {query}")
    print(f"  estimated answer: {estimator.estimate(pattern).value:,.0f}")
    print(f"  real answer:      {estimator.real_answer(pattern):,}\n")

    optimizer = Optimizer(estimator)
    choice = optimizer.choose_plan(pattern)
    labels = {i: n.predicate.name for i, n in enumerate(pattern.nodes())}

    print(f"{choice.plan_count} connected join orders:")
    for plan_cost in sorted(choice.all_plans, key=lambda p: p.total):
        steps = " , ".join(
            f"{labels[s.parent]}->{labels[s.child]}" for s in plan_cost.plan.steps
        )
        marker = "  <= chosen" if plan_cost.plan == choice.best.plan else ""
        print(
            f"  cost {plan_cost.total:>12,.0f}"
            f"  intermediates {['%.0f' % s for s in plan_cost.intermediate_sizes]}"
            f"  [{steps}]{marker}"
        )
    print()

    report = optimizer.validate_choice(pattern)
    print("validation against exact-cost optimum:")
    print(f"  chosen plan true cost:  {report['chosen_true_cost']:,.0f}")
    print(f"  optimal plan true cost: {report['optimal_true_cost']:,.0f}")
    print(f"  regret ratio:           {report['regret_ratio']:.3f}\n")

    # Execute the first join of the chosen plan with the physical operator.
    first = choice.best.plan.steps[0]
    anc_pred = TagPredicate(labels[first.parent])
    desc_pred = TagPredicate(labels[first.child])
    anc_nodes = estimator.catalog.stats(anc_pred).node_indices
    desc_nodes = estimator.catalog.stats(desc_pred).node_indices
    pairs = stack_tree_join(tree, anc_nodes, desc_nodes)
    print(
        f"executing first join {anc_pred.name}//{desc_pred.name} "
        f"with the stack-tree operator: {pairs:,} pairs"
    )


if __name__ == "__main__":
    main()
