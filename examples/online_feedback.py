"""Online query feedback: estimate first, stream results after.

The paper's Internet-context motivation: "it is helpful to provide an
estimate of the total number of results to the user along with the
first subset of results, to help the user choose whether to request
more results ... or to refine the query."

This example simulates that interaction on the DBLP-like data set: for
each query it prints the instant estimate (microseconds), then streams
the first page of actual matches from the stack-tree join, then the
true total -- so you can judge the refinement advice the estimate
would have given.

Run:  python examples/online_feedback.py
"""

import itertools

from repro import AnswerSizeEstimator, label_document
from repro.datasets import generate_dblp
from repro.query import parse_xpath
from repro.query.structjoin import structural_join_pairs

PAGE_SIZE = 5

QUERIES = [
    "//article//author",
    "//article//cdrom",
    "//book//cdrom",
    "//inproceedings//cite",
]


def main() -> None:
    print("generating DBLP-like data set ...")
    tree = label_document(generate_dblp(seed=7, scale=0.3))
    estimator = AnswerSizeEstimator(tree, grid_size=10)
    print(f"  {len(tree):,} element nodes\n")

    for query in QUERIES:
        pattern = parse_xpath(query)
        estimate = estimator.estimate(pattern)
        assert estimate.elapsed_seconds is not None
        print(f"query: {query}")
        print(
            f"  >> estimated total: ~{estimate.value:,.0f} matches "
            f"(estimated in {estimate.elapsed_seconds * 1e6:.0f} us)"
        )
        if estimate.value > 10_000:
            print("  >> advice: large result -- consider refining the query")
        elif estimate.value < 1:
            print("  >> advice: likely empty -- check the query structure")

        anc = estimator.catalog.stats(pattern.root.predicate).node_indices
        desc = estimator.catalog.stats(
            pattern.root.children[0].predicate
        ).node_indices
        pairs = structural_join_pairs(tree, anc, desc)
        page = list(itertools.islice(pairs, PAGE_SIZE))
        print(f"  first {len(page)} matches:")
        for a, d in page:
            anc_el = tree.elements[a]
            desc_el = tree.elements[d]
            text = desc_el.text_content()[:40]
            print(f"    <{anc_el.tag}> -> <{desc_el.tag}> {text!r}")
        real = estimator.real_answer(pattern)
        ratio = estimate.value / real if real else float("nan")
        print(f"  true total: {real:,} (estimate/real = {ratio:.2f})\n")


if __name__ == "__main__":
    main()
