"""Workload study: estimation accuracy over many random twig queries.

Generates a random twig workload against the synthetic orgchart data
set, estimates every query, computes exact answers, and prints the
per-size q-error breakdown plus the worst offenders -- the analysis a
practitioner would run before trusting the estimator in an optimizer.

Run:  python examples/workload_study.py
"""

from collections import defaultdict

from repro import AnswerSizeEstimator, label_document
from repro.datasets import generate_orgchart
from repro.utils.tables import format_table
from repro.workloads import ErrorSummary, RandomTwigGenerator, q_error


def main() -> None:
    print("generating orgchart data set ...")
    tree = label_document(generate_orgchart(seed=42))
    estimator = AnswerSizeEstimator(tree, grid_size=10)
    print(f"  {len(tree):,} element nodes\n")

    generator = RandomTwigGenerator(tree, seed=7, miss_probability=0.1)
    workload = generator.workload(80, min_size=2, max_size=5)

    by_size: dict[int, list[tuple[float, float]]] = defaultdict(list)
    per_query: list[tuple[str, float, float]] = []
    for pattern in workload:
        estimate = estimator.estimate(pattern).value
        real = float(estimator.real_answer(pattern))
        by_size[pattern.size()].append((estimate, real))
        per_query.append((pattern.to_xpath(), estimate, real))

    rows = []
    for size in sorted(by_size):
        summary = ErrorSummary.from_pairs(by_size[size])
        rows.append([f"{size}-node twigs", *summary.as_row()])
    overall = ErrorSummary.from_pairs([p for pairs in by_size.values() for p in pairs])
    rows.append(["all", *overall.as_row()])
    print(
        format_table(
            ["workload slice", "queries", "geo-mean q", "median q", "p90 q", "p99 q", "worst q"],
            rows,
            title="q-error by twig size (80 random twigs, 10x10 grids)",
        )
    )
    print()

    worst = sorted(per_query, key=lambda t: q_error(t[1], t[2]), reverse=True)[:5]
    print(
        format_table(
            ["query", "estimate", "real", "q-error"],
            [
                [xpath, round(estimate, 1), int(real), round(q_error(estimate, real), 1)]
                for xpath, estimate, real in worst
            ],
            title="Worst five queries (where the uniformity assumption bites)",
        )
    )


if __name__ == "__main__":
    main()
