"""Position histogram unit tests (paper Section 3.1, Theorem 1)."""

import numpy as np
import pytest

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


class TestConstruction:
    def test_from_cells(self):
        grid = GridSpec(2, 59)
        hist = PositionHistogram.from_cells(grid, {(0, 0): 2, (0, 1): 1})
        assert hist.count(0, 0) == 2
        assert hist.count(0, 1) == 1
        assert hist.count(1, 1) == 0
        assert hist.total() == 3

    def test_below_diagonal_rejected(self):
        grid = GridSpec(3, 10)
        with pytest.raises(ValueError, match="below the diagonal"):
            PositionHistogram.from_cells(grid, {(2, 1): 1})

    def test_negative_count_rejected(self):
        grid = GridSpec(3, 10)
        with pytest.raises(ValueError, match="negative"):
            PositionHistogram.from_cells(grid, {(0, 1): -1})

    def test_out_of_grid_rejected(self):
        grid = GridSpec(3, 10)
        with pytest.raises(ValueError, match="outside"):
            PositionHistogram.from_cells(grid, {(0, 3): 1})

    def test_zero_count_not_stored(self):
        grid = GridSpec(3, 10)
        hist = PositionHistogram.from_cells(grid, {(0, 1): 0})
        assert hist.nonzero_cell_count() == 0


class TestBuildFromData:
    def test_total_equals_cardinality(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        grid = GridSpec(4, paper_tree.max_label)
        for tag, expected in [("faculty", 3), ("TA", 5), ("RA", 10)]:
            stats = catalog.stats(TagPredicate(tag))
            hist = build_position_histogram(
                paper_tree, stats.node_indices, grid, name=tag
            )
            assert hist.total() == expected

    def test_cells_match_manual_bucketing(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        grid = GridSpec(5, paper_tree.max_label)
        stats = catalog.stats(TagPredicate("TA"))
        hist = build_position_histogram(paper_tree, stats.node_indices, grid)
        manual: dict[tuple[int, int], int] = {}
        for i in stats.node_indices:
            cell = grid.cell_of(int(paper_tree.start[i]), int(paper_tree.end[i]))
            manual[cell] = manual.get(cell, 0) + 1
        assert dict(hist.cells()) == pytest.approx(manual)

    def test_empty_predicate(self, paper_tree):
        grid = GridSpec(4, paper_tree.max_label)
        hist = build_position_histogram(paper_tree, [], grid)
        assert hist.total() == 0
        assert hist.nonzero_cell_count() == 0

    def test_upper_triangle_only(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        grid = GridSpec(10, dblp_tree.max_label)
        stats = catalog.stats(TagPredicate("article"))
        hist = build_position_histogram(dblp_tree, stats.node_indices, grid)
        for (i, j), _count in hist.cells():
            assert j >= i


class TestDense:
    def test_dense_matches_sparse(self):
        grid = GridSpec(3, 10)
        hist = PositionHistogram.from_cells(grid, {(0, 2): 4, (1, 1): 2})
        dense = hist.dense()
        assert dense.shape == (3, 3)
        assert dense[0, 2] == 4
        assert dense[1, 1] == 2
        assert dense.sum() == 6

    def test_dense_is_cached(self):
        grid = GridSpec(3, 10)
        hist = PositionHistogram.from_cells(grid, {(0, 2): 4})
        assert hist.dense() is hist.dense()


class TestScaled:
    def test_scaled(self):
        grid = GridSpec(3, 10)
        hist = PositionHistogram.from_cells(grid, {(0, 2): 4})
        half = hist.scaled(0.5)
        assert half.count(0, 2) == 2
        assert hist.count(0, 2) == 4  # original untouched


class TestLemma1:
    def test_data_built_histograms_satisfy_lemma1(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        grid = GridSpec(8, dblp_tree.max_label)
        for tag in ("article", "author", "cite", "year"):
            stats = catalog.stats(TagPredicate(tag))
            hist = build_position_histogram(dblp_tree, stats.node_indices, grid)
            assert hist.check_lemma1(), tag

    def test_violating_histogram_detected(self):
        grid = GridSpec(5, 99)
        # (0, 3) populated forbids (1, 4): 0 < 1 < 3 and 4 > 3.
        bad = PositionHistogram.from_cells(grid, {(0, 3): 1, (1, 4): 1})
        assert not bad.check_lemma1()


class TestTheorem1:
    """Non-zero cells grow linearly, not quadratically, with grid size."""

    def test_nonzero_cells_linear_in_grid_size(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        stats = catalog.stats(TagPredicate("author"))
        counts = {}
        for g in (5, 10, 20, 40):
            grid = GridSpec(g, dblp_tree.max_label)
            hist = build_position_histogram(dblp_tree, stats.node_indices, grid)
            counts[g] = hist.nonzero_cell_count()
        # Linear bound with a small constant (paper observes factor ~2).
        for g, cells in counts.items():
            assert cells <= 4 * g, f"g={g}: {cells} cells"
        # And clearly not quadratic: the per-g density stays flat instead
        # of growing with g (quadratic growth would quadruple it).
        assert counts[40] / 40 <= 2.0 * max(counts[10] / 10, 1.0)

    def test_equality_and_repr(self):
        grid = GridSpec(3, 10)
        a = PositionHistogram.from_cells(grid, {(0, 1): 2})
        b = PositionHistogram.from_cells(grid, {(0, 1): 2})
        c = PositionHistogram.from_cells(grid, {(0, 1): 3})
        assert a == b
        assert a != c
