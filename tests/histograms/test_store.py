"""Summary store tests: persist and reload histogram catalogs."""

import pytest

from repro.estimation.nooverlap import no_overlap_estimate
from repro.estimation.phjoin import ph_join
from repro.histograms.store import SummaryStore
from repro.predicates.base import TagPredicate


@pytest.fixture()
def populated_store(dblp_estimator, tmp_path):
    # Build a few histograms, then persist them.
    for tag in ("article", "author", "cite"):
        dblp_estimator.position_histogram(TagPredicate(tag))
        dblp_estimator.coverage_histogram(TagPredicate(tag))
    store = SummaryStore(tmp_path / "summaries")
    written = store.save(dblp_estimator)
    assert written >= 3
    return store


class TestRoundTrip:
    def test_manifest_lists_predicates(self, populated_store):
        names = populated_store.predicate_names()
        assert "article" in names and "author" in names

    def test_grid_round_trips(self, populated_store, dblp_estimator):
        assert populated_store.grid() == dblp_estimator.grid

    def test_position_histograms_identical(self, populated_store, dblp_estimator):
        for tag in ("article", "author"):
            reloaded = populated_store.load_position(tag)
            original = dblp_estimator.position_histogram(TagPredicate(tag))
            assert reloaded == original

    def test_coverage_round_trips(self, populated_store, dblp_estimator):
        reloaded = populated_store.load_coverage("article")
        original = dblp_estimator.coverage_histogram(TagPredicate("article"))
        assert reloaded is not None and original is not None
        assert dict(reloaded.entries()) == dict(original.entries())

    def test_estimates_from_store_match_live(self, populated_store, dblp_estimator):
        """The whole point: estimate from persisted summaries alone."""
        hist_anc = populated_store.load_position("article")
        hist_desc = populated_store.load_position("author")
        coverage = populated_store.load_coverage("article")
        assert coverage is not None
        live = dblp_estimator.estimate_pair(
            TagPredicate("article"), TagPredicate("author"), method="no-overlap"
        ).value
        from_store = no_overlap_estimate(hist_anc, coverage, hist_desc).value
        assert from_store == pytest.approx(live, rel=1e-12)
        live_ph = dblp_estimator.estimate_pair(
            TagPredicate("article"), TagPredicate("author"), method="ph-join"
        ).value
        assert ph_join(hist_anc, hist_desc).value == pytest.approx(live_ph, rel=1e-12)


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        store = SummaryStore(tmp_path / "nowhere")
        with pytest.raises(FileNotFoundError):
            store.load_manifest()

    def test_unknown_predicate(self, populated_store):
        with pytest.raises(KeyError):
            populated_store.load_position("ghost")

    def test_total_bytes_positive(self, populated_store):
        assert populated_store.total_bytes() > 0

    def test_equi_depth_grid_round_trips(self, dblp_tree, tmp_path):
        from repro.estimation import AnswerSizeEstimator

        estimator = AnswerSizeEstimator(dblp_tree, grid_size=6, grid="equi-depth")
        estimator.position_histogram(TagPredicate("article"))
        store = SummaryStore(tmp_path / "eqd")
        store.save(estimator)
        assert store.grid() == estimator.grid
        assert store.grid().boundaries is not None
