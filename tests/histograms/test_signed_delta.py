"""The one-flush signed delta hook on position histograms."""

import numpy as np
import pytest

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.labeling.interval import label_forest
from repro.xmltree.tree import Document, Element


def small_histogram() -> PositionHistogram:
    return PositionHistogram(
        GridSpec(4, 39), {(0, 1): 3.0, (1, 1): 2.0, (2, 3): 1.0}
    )


def test_signed_delta_equals_paired_apply_delta():
    ours = small_histogram()
    reference = small_histogram()
    ins_cols = np.asarray([0, 1, 3])
    ins_rows = np.asarray([1, 2, 3])
    del_cols = np.asarray([0, 2])
    del_rows = np.asarray([1, 3])
    ours.apply_signed_delta(
        np.concatenate([ins_cols, del_cols]),
        np.concatenate([ins_rows, del_rows]),
        np.asarray([1, 1, 1, -1, -1]),
    )
    reference.apply_delta(ins_cols, ins_rows, 1)
    reference.apply_delta(del_cols, del_rows, -1)
    assert dict(ours.cells()) == dict(reference.cells())


def test_signed_delta_cancels_before_touching_cells():
    """+1 and -1 on the same cell cancel even if the cell is empty --
    an insert-then-delete batch touches nothing."""
    histogram = small_histogram()
    before = dict(histogram.cells())
    histogram.apply_signed_delta(
        np.asarray([3, 3]), np.asarray([3, 3]), np.asarray([1, -1])
    )
    assert dict(histogram.cells()) == before


def test_signed_delta_underflow_raises():
    histogram = small_histogram()
    with pytest.raises(ValueError, match="below zero"):
        histogram.apply_signed_delta(
            np.asarray([1]), np.asarray([1]), np.asarray([-3])
        )


def test_signed_delta_empty_is_noop():
    histogram = small_histogram()
    before = dict(histogram.cells())
    histogram.apply_signed_delta(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )
    assert dict(histogram.cells()) == before


def test_signed_delta_misaligned_inputs_rejected():
    histogram = small_histogram()
    with pytest.raises(ValueError, match="aligned"):
        histogram.apply_signed_delta(
            np.asarray([1, 2]), np.asarray([1]), np.asarray([1, 1])
        )


def test_signed_delta_matches_rebuild_over_mutated_nodes():
    document = Document()
    root = Element("r")
    document.append(root)
    for _ in range(10):
        root.append(Element("x"))
    tree = label_forest([document], spacing=4)
    grid = GridSpec(5, tree.max_label)
    indices = np.arange(len(tree))
    histogram = build_position_histogram(tree, indices, grid)
    # Remove three nodes and re-add two of them in one flush.
    cols = grid.buckets(tree.start[np.asarray([2, 3, 4, 2, 3])])
    rows = grid.buckets(tree.end[np.asarray([2, 3, 4, 2, 3])])
    histogram.apply_signed_delta(cols, rows, np.asarray([-1, -1, -1, 1, 1]))
    survivors = np.asarray([i for i in range(len(tree)) if i != 4])
    rebuilt = build_position_histogram(tree, survivors, grid)
    assert dict(histogram.cells()) == dict(rebuilt.cells())
