"""Level-augmented histogram unit tests."""

import pytest

from repro.histograms.grid import GridSpec
from repro.histograms.levels import LevelPositionHistogram, build_level_histogram
from repro.histograms.position import build_position_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


class TestConstruction:
    def test_build_matches_manual(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        grid = GridSpec(4, paper_tree.max_label)
        stats = catalog.stats(TagPredicate("TA"))
        histogram = build_level_histogram(paper_tree, stats.node_indices, grid)
        manual: dict[tuple[int, int, int], int] = {}
        for idx in stats.node_indices:
            cell = grid.cell_of(int(paper_tree.start[idx]), int(paper_tree.end[idx]))
            key = (*cell, int(paper_tree.level[idx]))
            manual[key] = manual.get(key, 0) + 1
        assert dict(histogram.cells()) == pytest.approx(manual)

    def test_total_is_cardinality(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        grid = GridSpec(10, dblp_tree.max_label)
        stats = catalog.stats(TagPredicate("author"))
        histogram = build_level_histogram(dblp_tree, stats.node_indices, grid)
        assert histogram.total() == stats.count

    def test_empty(self, paper_tree):
        grid = GridSpec(4, paper_tree.max_label)
        histogram = build_level_histogram(paper_tree, [], grid)
        assert histogram.total() == 0
        assert histogram.levels() == []

    def test_validation(self):
        grid = GridSpec(3, 10)
        with pytest.raises(ValueError, match="level"):
            LevelPositionHistogram(grid, {(0, 1, 0): 1})
        with pytest.raises(ValueError, match="diagonal"):
            LevelPositionHistogram(grid, {(2, 1, 1): 1})
        with pytest.raises(ValueError, match="negative"):
            LevelPositionHistogram(grid, {(0, 1, 1): -2})


class TestMarginalConsistency:
    @pytest.mark.parametrize("tag", ["article", "author", "cite"])
    def test_marginal_equals_plain_histogram(self, dblp_tree, tag):
        catalog = PredicateCatalog(dblp_tree)
        grid = GridSpec(10, dblp_tree.max_label)
        stats = catalog.stats(TagPredicate(tag))
        leveled = build_level_histogram(dblp_tree, stats.node_indices, grid)
        plain = build_position_histogram(dblp_tree, stats.node_indices, grid)
        assert leveled.marginal() == plain


class TestDenseViews:
    def test_dense_level_and_at_least(self, orgchart_tree):
        catalog = PredicateCatalog(orgchart_tree)
        grid = GridSpec(6, orgchart_tree.max_label)
        stats = catalog.stats(TagPredicate("department"))
        histogram = build_level_histogram(orgchart_tree, stats.node_indices, grid)
        levels = histogram.levels()
        assert len(levels) > 1  # recursion spreads departments over levels
        total = sum(histogram.dense_level(l).sum() for l in levels)
        assert total == pytest.approx(stats.count)
        at_least_min = histogram.dense_levels_at_least(min(levels))
        assert at_least_min.sum() == pytest.approx(stats.count)
        at_least_deep = histogram.dense_levels_at_least(max(levels) + 1)
        assert at_least_deep.sum() == 0.0

    def test_flat_data_single_level(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        grid = GridSpec(10, dblp_tree.max_label)
        stats = catalog.stats(TagPredicate("author"))
        histogram = build_level_histogram(dblp_tree, stats.node_indices, grid)
        assert histogram.levels() == [3]
