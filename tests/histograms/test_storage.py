"""Storage accounting and serialisation unit tests."""

import pytest

from repro.histograms.coverage import CoverageHistogram, build_coverage_histogram
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.histograms.storage import (
    COVERAGE_ENTRY_BYTES,
    HEADER_BYTES,
    POSITION_ENTRY_BYTES,
    coverage_storage_bytes,
    load_histogram,
    position_storage_bytes,
    save_histogram,
)
from repro.histograms.truehist import build_true_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


class TestByteModel:
    def test_position_bytes(self):
        grid = GridSpec(4, 99)
        hist = PositionHistogram.from_cells(grid, {(0, 1): 5, (1, 2): 3, (2, 2): 1})
        assert position_storage_bytes(hist) == HEADER_BYTES + 3 * POSITION_ENTRY_BYTES

    def test_coverage_bytes_charge_partials_only(self):
        grid = GridSpec(4, 99)
        coverage = CoverageHistogram(
            grid,
            {
                (0, 1, 0, 2): 0.5,   # partial -> charged
                (1, 1, 0, 2): 1.0,   # full -> free
                (2, 2, 0, 3): 0.25,  # partial -> charged
            },
        )
        assert (
            coverage_storage_bytes(coverage)
            == HEADER_BYTES + 2 * COVERAGE_ENTRY_BYTES
        )

    def test_empty_histograms_cost_header_only(self):
        grid = GridSpec(4, 99)
        assert position_storage_bytes(PositionHistogram(grid)) == HEADER_BYTES
        assert coverage_storage_bytes(CoverageHistogram(grid)) == HEADER_BYTES


class TestSerialisation:
    def test_position_roundtrip(self, tmp_path):
        grid = GridSpec(6, 120)
        hist = PositionHistogram.from_cells(
            grid, {(0, 5): 2.5, (2, 3): 7}, name="article"
        )
        path = tmp_path / "article.hist.json"
        save_histogram(hist, path)
        loaded = load_histogram(path)
        assert isinstance(loaded, PositionHistogram)
        assert loaded == hist
        assert loaded.name == "article"

    def test_coverage_roundtrip(self, tmp_path):
        grid = GridSpec(6, 120)
        coverage = CoverageHistogram(
            grid, {(0, 1, 0, 5): 0.3, (1, 1, 0, 5): 1.0}, name="faculty"
        )
        path = tmp_path / "faculty.cvg.json"
        save_histogram(coverage, path)
        loaded = load_histogram(path)
        assert isinstance(loaded, CoverageHistogram)
        assert dict(loaded.entries()) == dict(coverage.entries())

    def test_data_built_roundtrip(self, paper_tree, tmp_path):
        grid = GridSpec(5, paper_tree.max_label)
        catalog = PredicateCatalog(paper_tree)
        stats = catalog.stats(TagPredicate("RA"))
        hist = build_position_histogram(paper_tree, stats.node_indices, grid, "RA")
        save_histogram(hist, tmp_path / "ra.json")
        assert load_histogram(tmp_path / "ra.json") == hist

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "mystery", "grid": {"size": 2, "max_label": 5}}')
        with pytest.raises(ValueError, match="unknown histogram kind"):
            load_histogram(path)

    def test_save_rejects_other_types(self, tmp_path):
        with pytest.raises(TypeError):
            save_histogram("not a histogram", tmp_path / "x.json")  # type: ignore[arg-type]


class TestStorageGrowth:
    """The empirical backbone of paper Figs. 11-12: linear in g."""

    def test_total_storage_linear_for_no_overlap_pair(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        stats = catalog.stats(TagPredicate("article"))
        sizes = {}
        for g in (10, 20, 40):
            grid = GridSpec(g, dblp_tree.max_label)
            hist = build_position_histogram(dblp_tree, stats.node_indices, grid)
            true_hist = build_true_histogram(dblp_tree, grid)
            coverage = build_coverage_histogram(
                dblp_tree, stats.node_indices, true_hist
            )
            sizes[g] = position_storage_bytes(hist) + coverage_storage_bytes(coverage)
        # Quadrupling g must not even triple total bytes beyond linear+const.
        assert sizes[40] <= 5 * sizes[10]
        assert sizes[40] > sizes[10]  # it does grow
