"""Round-trip tests for the versioned binary (.npz) summary store, plus
equi-depth grid persistence and the corrupted/mismatched error paths."""

import json
import zipfile

import numpy as np
import pytest

from repro.datasets import generate_orgchart
from repro.estimation import AnswerSizeEstimator
from repro.histograms.adaptive import equi_depth_grid
from repro.histograms.coverage import CoverageHistogram
from repro.histograms.position import PositionHistogram
from repro.histograms.storage import load_histogram, save_histogram
from repro.histograms.store import (
    BINARY_VERSION,
    SummaryFormatError,
    SummaryVersionError,
    load_binary_summaries,
    save_binary_summaries,
)
from repro.labeling import label_document
from repro.predicates.base import TagPredicate


@pytest.fixture(scope="module")
def tree():
    return label_document(generate_orgchart(seed=5))


def built_estimator(tree, grid="uniform"):
    estimator = AnswerSizeEstimator(tree, grid_size=8, grid=grid)
    for tag in ("manager", "department", "employee", "email"):
        estimator.position_histogram(TagPredicate(tag))
        estimator.coverage_histogram(TagPredicate(tag))
    return estimator


class TestRoundTrip:
    def test_position_and_coverage_round_trip_exactly(self, tree, tmp_path):
        estimator = built_estimator(tree)
        path = tmp_path / "summaries.npz"
        written = save_binary_summaries(estimator, path)
        assert written == 4

        loaded = load_binary_summaries(path)
        assert loaded.grid == estimator.grid
        rows = loaded.by_name()
        for predicate in estimator._position_cache:
            row = rows[predicate.name]
            original = estimator._position_cache[predicate]
            assert dict(row.position.cells()) == dict(original.cells())
            assert row.count == original.total()
            assert row.kind == "tag" and row.tag == predicate.name
            coverage = estimator._coverage_cache.get(predicate)
            if coverage is None:
                assert row.coverage is None
                assert not row.no_overlap
            else:
                assert dict(row.coverage.entries()) == dict(coverage.entries())
                assert row.no_overlap

    def test_fractional_counts_round_trip_bitwise(self, tmp_path):
        """Synthesised compound histograms carry fractional counts;
        float64 must survive the binary format bit-for-bit."""
        from repro.histograms.grid import GridSpec

        grid = GridSpec(4, 100)
        histogram = PositionHistogram(
            grid, {(0, 3): 1 / 3, (1, 2): 2.5000000000000004, (2, 2): 7.0}
        )
        coverage = CoverageHistogram(grid, {(1, 1, 0, 3): 1 / 7, (2, 2, 0, 3): 0.25})

        class Fake:
            pass

        fake = Fake()
        fake.grid = grid
        fake._position_cache = {TagPredicate("t"): histogram}
        fake._coverage_cache = {TagPredicate("t"): coverage}
        fake.is_no_overlap = lambda p: True
        path = tmp_path / "frac.npz"
        save_binary_summaries(fake, path)
        row = load_binary_summaries(path).by_name()["t"]
        assert dict(row.position.cells()) == dict(histogram.cells())
        assert dict(row.coverage.entries()) == dict(coverage.entries())

    def test_equi_depth_grid_round_trips(self, tree, tmp_path):
        estimator = built_estimator(tree, grid="equi-depth")
        assert estimator.grid.boundaries is not None
        path = tmp_path / "equidepth.npz"
        save_binary_summaries(estimator, path)
        loaded = load_binary_summaries(path)
        assert loaded.grid == estimator.grid
        assert loaded.grid.boundaries == estimator.grid.boundaries

    def test_empty_estimator_round_trips(self, tree, tmp_path):
        estimator = AnswerSizeEstimator(tree, grid_size=5)
        path = tmp_path / "empty.npz"
        assert save_binary_summaries(estimator, path) == 0
        loaded = load_binary_summaries(path)
        assert loaded.summaries == []
        assert loaded.grid == estimator.grid


class TestJsonGridPersistence:
    def test_json_histogram_keeps_equi_depth_boundaries(self, tree, tmp_path):
        grid = equi_depth_grid(tree, 6)
        estimator = AnswerSizeEstimator(tree, grid_size=6, grid="equi-depth")
        histogram = estimator.position_histogram(TagPredicate("employee"))
        path = tmp_path / "hist.json"
        save_histogram(histogram, path)
        back = load_histogram(path)
        assert back.grid == histogram.grid
        assert back.grid.boundaries is not None
        assert dict(back.cells()) == dict(histogram.cells())
        assert grid.size == back.grid.size

    def test_json_files_without_boundaries_still_load(self, tmp_path):
        """Files written before boundary support lack the key."""
        payload = {
            "kind": "position",
            "name": "legacy",
            "grid": {"size": 3, "max_label": 30},
            "cells": [[0, 2, 4.0]],
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        histogram = load_histogram(path)
        assert histogram.grid.boundaries is None
        assert histogram.count(0, 2) == 4.0


class TestErrorPaths:
    def write_store(self, tree, tmp_path):
        estimator = built_estimator(tree)
        path = tmp_path / "store.npz"
        save_binary_summaries(estimator, path)
        return path

    def rewrite_manifest(self, path, mutate):
        """Round-trip the archive with a mutated manifest member."""
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
        payload = mutate(manifest)
        arrays["manifest"] = np.frombuffer(payload, dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_binary_summaries(tmp_path / "nothing.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip file at all")
        with pytest.raises(SummaryFormatError, match="not a summary archive"):
            load_binary_summaries(path)

    def test_archive_without_manifest(self, tmp_path):
        path = tmp_path / "nomanifest.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(handle, data=np.arange(3))
        with pytest.raises(SummaryFormatError, match="no manifest"):
            load_binary_summaries(path)

    def test_corrupted_manifest_json(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)
        self.rewrite_manifest(path, lambda m: b"{not json at all")
        with pytest.raises(SummaryFormatError, match="corrupted manifest"):
            load_binary_summaries(path)

    def test_foreign_format_tag(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)

        def mutate(manifest):
            manifest["format"] = "someone-elses-format"
            return json.dumps(manifest).encode()

        self.rewrite_manifest(path, mutate)
        with pytest.raises(SummaryFormatError, match="repro-summaries"):
            load_binary_summaries(path)

    def test_version_mismatch(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)

        def mutate(manifest):
            manifest["version"] = BINARY_VERSION + 1
            return json.dumps(manifest).encode()

        self.rewrite_manifest(path, mutate)
        with pytest.raises(SummaryVersionError, match="version"):
            load_binary_summaries(path)
        # A version error is also a format error: callers can catch one.
        with pytest.raises(SummaryFormatError):
            load_binary_summaries(path)

    def test_manifest_missing_grid(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)

        def mutate(manifest):
            del manifest["grid"]
            return json.dumps(manifest).encode()

        self.rewrite_manifest(path, mutate)
        with pytest.raises(SummaryFormatError, match="incomplete"):
            load_binary_summaries(path)

    def test_missing_array_member(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)
        with np.load(path) as archive:
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "p0.cells"
            }
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(SummaryFormatError, match="incomplete"):
            load_binary_summaries(path)

    def test_truncated_zip(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SummaryFormatError):
            load_binary_summaries(path)

    def test_truncation_at_many_points_always_summary_format_error(
        self, tree, tmp_path
    ):
        """However much of the archive survives -- nothing, the zip
        directory, some members -- the loader must raise
        ``SummaryFormatError`` (or report a missing file), never leak a
        raw ``KeyError`` / ``BadZipFile`` / ``zlib.error``."""
        path = self.write_store(tree, tmp_path)
        data = path.read_bytes()
        for fraction in (0.05, 0.2, 0.5, 0.8, 0.95, 0.99):
            path.write_bytes(data[: int(len(data) * fraction)])
            with pytest.raises((SummaryFormatError, FileNotFoundError)):
                load_binary_summaries(path)

    def test_bit_flips_in_member_data_map_to_summary_format_error(
        self, tree, tmp_path
    ):
        """Flipped bytes inside compressed array members surface lazily
        (zip CRC / zlib errors at member-read time) and must be mapped,
        not leaked -- load-bearing for checkpoint loading in the WAL
        recovery path."""
        import random

        path = self.write_store(tree, tmp_path)
        data = path.read_bytes()
        rng = random.Random(13)
        corrupted = 0
        for _ in range(12):
            flipped = bytearray(data)
            for position in rng.sample(range(30, len(data) - 30), 3):
                flipped[position] ^= 0xFF
            path.write_bytes(bytes(flipped))
            try:
                load_binary_summaries(path)
            except SummaryFormatError:
                corrupted += 1
            except FileNotFoundError:  # pragma: no cover - not expected
                raise
        # Almost every flip lands in compressed data; at least most of
        # the rounds must have detected the corruption cleanly.
        assert corrupted >= 8

    def test_manifest_missing_format_tag(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)

        def mutate(manifest):
            del manifest["format"]
            return json.dumps(manifest).encode()

        self.rewrite_manifest(path, mutate)
        with pytest.raises(SummaryFormatError, match="repro-summaries"):
            load_binary_summaries(path)

    def test_manifest_not_a_dict(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)
        self.rewrite_manifest(path, lambda m: json.dumps([1, 2, 3]).encode())
        with pytest.raises(SummaryFormatError):
            load_binary_summaries(path)

    def test_manifest_predicates_mistyped(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)

        def mutate(manifest):
            manifest["predicates"] = "oops"
            return json.dumps(manifest).encode()

        self.rewrite_manifest(path, mutate)
        with pytest.raises(SummaryFormatError):
            load_binary_summaries(path)

    def test_entry_missing_required_field(self, tree, tmp_path):
        path = self.write_store(tree, tmp_path)

        def mutate(manifest):
            del manifest["predicates"][0]["no_overlap"]
            return json.dumps(manifest).encode()

        self.rewrite_manifest(path, mutate)
        with pytest.raises(SummaryFormatError, match="incomplete"):
            load_binary_summaries(path)

    def test_zero_byte_file(self, tmp_path):
        path = tmp_path / "zero.npz"
        path.write_bytes(b"")
        with pytest.raises(SummaryFormatError):
            load_binary_summaries(path)
