"""Epoch engine: immutable pages, overlay sealing, merges, refcounts.

Pins the contracts the O(1) snapshot tier rides on:

* a page is frozen the moment it is built -- writes raise;
* sealing the live overlay is an ownership handoff, not a copy;
* a snapshot view shares the page + sealed layers and never observes
  later writer deltas;
* merging the sealed stack into a fresh page changes no observable
  count and leaves the old page to its pinned readers;
* the epoch registry frees superseded pages when the last pin drops.
"""

import gc
import weakref

import numpy as np
import pytest

from repro.histograms.epoch import (
    EpochRegistry,
    HistogramPage,
    merge_page,
    next_epoch,
)
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram


GRID = GridSpec(6, 120)


def brute_force(histogram):
    return {cell: count for cell, count in histogram.cells()}


class TestHistogramPage:
    def test_arrays_are_frozen(self):
        page = HistogramPage.from_mapping({3: 2.0, 1: 1.0})
        assert page.codes.tolist() == [1, 3]
        with pytest.raises(ValueError):
            page.codes[0] = 9
        with pytest.raises(ValueError):
            page.counts[0] = 9.0

    def test_from_mapping_drops_zeros_and_sorts(self):
        page = HistogramPage.from_mapping({5: 0.0, 2: 4.0, 9: 1.0})
        assert page.codes.tolist() == [2, 9]
        assert page.counts.tolist() == [4.0, 1.0]
        assert page.get(5) == 0.0
        assert page.get(2) == 4.0

    def test_epoch_ids_are_unique_and_increasing(self):
        a = HistogramPage.empty()
        b = HistogramPage.empty()
        assert b.epoch > a.epoch
        assert next_epoch() > b.epoch

    def test_merge_matches_dict_reference(self):
        page = HistogramPage.from_mapping({1: 2.0, 4: 3.0, 7: 1.0})
        layers = [{1: 1.0, 2: 5.0}, {4: -3.0, 2: -1.0}]
        merged = merge_page(page, layers)
        reference = {1: 2.0, 4: 3.0, 7: 1.0}
        for layer in layers:
            for code, delta in layer.items():
                reference[code] = reference.get(code, 0.0) + delta
        reference = {c: v for c, v in reference.items() if v != 0.0}
        assert dict(zip(merged.codes.tolist(), merged.counts.tolist())) == reference
        # The source page is untouched.
        assert page.get(4) == 3.0


class TestSealAndViews:
    def test_seal_is_an_ownership_handoff(self):
        histogram = PositionHistogram(GRID, {(0, 1): 2.0})
        histogram.apply_delta(np.array([0]), np.array([2]))
        overlay = histogram._overlay
        assert overlay  # live deltas pending
        histogram.seal()
        assert histogram._layers[-1] is overlay  # same dict, not a copy
        assert histogram._overlay == {}

    def test_snapshot_view_is_isolated_from_later_writes(self):
        histogram = PositionHistogram(GRID, {(0, 1): 2.0, (2, 3): 1.0})
        view = histogram.snapshot_view()
        before = brute_force(view)
        histogram.apply_delta(np.array([0, 2]), np.array([1, 3]))
        histogram.apply_delta(np.array([2]), np.array([3]), sign=-1)
        assert brute_force(view) == before
        assert view.page is histogram.page  # shared until a merge
        assert histogram.count(0, 1) == 3.0

    def test_view_survives_writer_page_merge(self):
        histogram = PositionHistogram(GRID, {(0, 5): 10.0})
        views = []
        for _ in range(8):  # force the layer limit, hence a merge
            views.append(histogram.snapshot_view())
            histogram.apply_delta(np.array([0]), np.array([5]))
        assert histogram.page is not views[0].page
        assert brute_force(views[0]) == {(0, 5): 10.0}
        for offset, view in enumerate(views):
            assert view.count(0, 5) == 10.0 + offset
        assert histogram.count(0, 5) == 18.0

    def test_maintained_equivalence_with_reference_dict(self):
        import random

        rng = random.Random(5)
        histogram = PositionHistogram(GRID)
        reference: dict[tuple[int, int], float] = {}
        for round_ in range(30):
            i = rng.randrange(GRID.size)
            j = rng.randrange(i, GRID.size)
            sign = 1 if rng.random() < 0.7 or reference.get((i, j), 0) < 1 else -1
            if sign < 0 and reference.get((i, j), 0.0) < 1:
                continue
            histogram.apply_delta(np.array([i]), np.array([j]), sign)
            reference[(i, j)] = reference.get((i, j), 0.0) + sign
            reference = {k: v for k, v in reference.items() if v != 0.0}
            if round_ % 5 == 0:
                histogram.seal()
            assert brute_force(histogram) == reference
            assert histogram.total() == sum(reference.values())
            dense = histogram.dense()
            for (i2, j2), value in reference.items():
                assert dense[i2, j2] == value

    def test_version_bumps_on_writes_only(self):
        histogram = PositionHistogram(GRID, {(1, 2): 1.0})
        v0 = histogram.version
        histogram.seal()
        histogram.snapshot_view()
        assert histogram.version == v0  # content unchanged
        histogram.apply_delta(np.array([1]), np.array([2]))
        assert histogram.version > v0
        v1 = histogram.version
        histogram.apply_signed_delta(
            np.array([1]), np.array([2]), np.array([1])
        )
        assert histogram.version > v1

    def test_underflow_still_raises_through_overlay(self):
        histogram = PositionHistogram(GRID, {(0, 1): 1.0})
        histogram.apply_delta(np.array([0]), np.array([1]), sign=-1)
        with pytest.raises(ValueError, match="below zero"):
            histogram.apply_delta(np.array([0]), np.array([1]), sign=-1)


class TestRegistry:
    def test_refcounts(self):
        registry = EpochRegistry()
        pin_a = registry.pin(7, ["x"])
        pin_b = registry.pin(7)
        assert registry.refcount(7) == 2
        pin_a.release()
        pin_a.release()  # idempotent
        assert registry.refcount(7) == 1
        assert registry.live_epochs() == [7]
        pin_b.release()
        assert registry.refcount(7) == 0
        assert registry.live_epochs() == []

    def test_superseded_page_freed_when_last_pin_drops(self):
        registry = EpochRegistry()
        histogram = PositionHistogram(GRID, {(0, 4): 50.0})
        view = histogram.snapshot_view()
        pinned_page = weakref.ref(view.page)
        pin = registry.pin(1, [view])
        del view
        gc.collect()
        assert pinned_page() is not None  # the registry holds the epoch
        # Writer merges past the pinned page.
        for _ in range(8):
            histogram.apply_delta(np.array([0]), np.array([4]))
            histogram.seal()
        histogram.apply_delta(np.array([0]), np.array([4]))
        assert pinned_page() is not None
        pin.release()
        gc.collect()
        assert pinned_page() is None  # last pin dropped -> page freed
        assert histogram.count(0, 4) == 59.0
