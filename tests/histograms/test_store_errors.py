"""Failure injection for persisted summaries: corrupt stores must fail
cleanly, never silently return wrong statistics."""

import json

import pytest

from repro.histograms.store import SummaryStore
from repro.predicates.base import TagPredicate


@pytest.fixture()
def store(dblp_estimator, tmp_path):
    dblp_estimator.position_histogram(TagPredicate("article"))
    dblp_estimator.coverage_histogram(TagPredicate("article"))
    s = SummaryStore(tmp_path / "sums")
    s.save(dblp_estimator)
    return s


class TestCorruptManifest:
    def test_truncated_manifest(self, store):
        path = store.directory / SummaryStore.MANIFEST
        path.write_text(path.read_text()[:20])
        with pytest.raises(json.JSONDecodeError):
            store.load_manifest()

    def test_deleted_manifest(self, store):
        (store.directory / SummaryStore.MANIFEST).unlink()
        with pytest.raises(FileNotFoundError):
            store.predicate_names()


class TestCorruptHistogramFiles:
    def test_missing_position_file(self, store):
        (store.directory / "0.position.json").unlink()
        with pytest.raises(FileNotFoundError):
            store.load_position("article")

    def test_garbage_position_file(self, store):
        (store.directory / "0.position.json").write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            store.load_position("article")

    def test_wrong_kind_in_file(self, store):
        # Swap a coverage payload into the position slot: the loader
        # returns a CoverageHistogram and the typed accessor must fail
        # loudly rather than hand back the wrong structure.
        coverage_payload = (store.directory / "0.coverage.json").read_text()
        (store.directory / "0.position.json").write_text(coverage_payload)
        with pytest.raises(AssertionError):
            store.load_position("article")

    def test_invalid_cells_rejected_on_load(self, store):
        payload = json.loads((store.directory / "0.position.json").read_text())
        payload["cells"].append([3, 1, 5.0])  # below-diagonal cell
        (store.directory / "0.position.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="below the diagonal"):
            store.load_position("article")

    def test_negative_count_rejected_on_load(self, store):
        payload = json.loads((store.directory / "0.position.json").read_text())
        payload["cells"][0][2] = -4
        (store.directory / "0.position.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="negative"):
            store.load_position("article")

    def test_bad_coverage_fraction_rejected_on_load(self, store):
        payload = json.loads((store.directory / "0.coverage.json").read_text())
        payload["entries"][0][4] = 3.5
        (store.directory / "0.coverage.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="outside"):
            store.load_coverage("article")
