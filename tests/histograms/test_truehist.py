"""TRUE histogram and compound-predicate algebra unit tests."""

import pytest

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.histograms.truehist import (
    and_histograms,
    build_true_histogram,
    not_histogram,
    or_histograms,
    sum_histograms,
    synthesize_from_tree,
    synthesize_histogram,
)
from repro.predicates.base import (
    ContentEqualsPredicate,
    ContentPrefixPredicate,
    TagPredicate,
)
from repro.predicates.boolean import AndPredicate, NotPredicate, OrPredicate
from repro.predicates.catalog import PredicateCatalog


class TestTrueHistogram:
    def test_total_is_node_count(self, paper_tree):
        grid = GridSpec(4, paper_tree.max_label)
        true_hist = build_true_histogram(paper_tree, grid)
        assert true_hist.total() == len(paper_tree)

    def test_true_dominates_every_predicate(self, paper_tree):
        grid = GridSpec(4, paper_tree.max_label)
        true_hist = build_true_histogram(paper_tree, grid)
        catalog = PredicateCatalog(paper_tree)
        stats = catalog.stats(TagPredicate("RA"))
        hist = build_position_histogram(paper_tree, stats.node_indices, grid)
        for cell, count in hist.cells():
            assert true_hist.count(*cell) >= count


class TestAlgebra:
    @pytest.fixture
    def fixtures(self):
        grid = GridSpec(2, 9)
        true_hist = PositionHistogram.from_cells(grid, {(0, 0): 10, (0, 1): 4, (1, 1): 6})
        a = PositionHistogram.from_cells(grid, {(0, 0): 5, (0, 1): 2})
        b = PositionHistogram.from_cells(grid, {(0, 0): 4, (1, 1): 3})
        return grid, true_hist, a, b

    def test_and_independence(self, fixtures):
        _grid, true_hist, a, b = fixtures
        combined = and_histograms(a, b, true_hist)
        assert combined.count(0, 0) == pytest.approx(5 * 4 / 10)
        assert combined.count(0, 1) == 0  # b empty there
        assert combined.count(1, 1) == 0  # a empty there

    def test_or_inclusion_exclusion(self, fixtures):
        _grid, true_hist, a, b = fixtures
        union = or_histograms(a, b, true_hist)
        assert union.count(0, 0) == pytest.approx(5 + 4 - 2.0)
        assert union.count(0, 1) == 2
        assert union.count(1, 1) == 3

    def test_or_disjoint_is_plain_sum(self, fixtures):
        _grid, true_hist, a, b = fixtures
        union = or_histograms(a, b, true_hist, disjoint=True)
        assert union.count(0, 0) == 9

    def test_not(self, fixtures):
        _grid, true_hist, a, _b = fixtures
        complement = not_histogram(a, true_hist)
        assert complement.count(0, 0) == 5
        assert complement.count(0, 1) == 2
        assert complement.count(1, 1) == 6
        assert complement.total() + a.total() == true_hist.total()

    def test_sum_histograms(self, fixtures):
        _grid, _true, a, b = fixtures
        total = sum_histograms([a, b])
        assert total.count(0, 0) == 9
        assert total.total() == a.total() + b.total()

    def test_sum_histograms_empty_rejected(self):
        with pytest.raises(ValueError):
            sum_histograms([])

    def test_mismatched_grids_rejected(self, fixtures):
        _grid, true_hist, a, _b = fixtures
        other = PositionHistogram.from_cells(GridSpec(3, 9), {(0, 0): 1})
        with pytest.raises(ValueError, match="different grids"):
            and_histograms(a, other, true_hist)


class TestSynthesize:
    def test_synthesized_or_approximates_exact(self, dblp_tree):
        """The paper's decade compound: sum of year histograms equals the
        exact histogram of the OR predicate (years are disjoint)."""
        grid = GridSpec(10, dblp_tree.max_label)
        true_hist = build_true_histogram(dblp_tree, grid)
        years = [
            ContentEqualsPredicate(str(y), tag="year") for y in range(1990, 2000)
        ]
        base = {
            p: synthesize_from_tree(p, dblp_tree, grid) for p in years
        }
        decade = OrPredicate(*years, label="1990's")
        synthesized = synthesize_histogram(decade, base, true_hist)
        exact = synthesize_from_tree(decade, dblp_tree, grid)
        # Disjoint OR via inclusion-exclusion stays within a whisker of
        # exact (the AND correction term is tiny but non-zero under the
        # independence assumption).
        assert synthesized.total() == pytest.approx(exact.total(), rel=0.02)

    def test_synthesized_and_within_cell(self, dblp_tree):
        grid = GridSpec(10, dblp_tree.max_label)
        true_hist = build_true_histogram(dblp_tree, grid)
        cite = TagPredicate("cite")
        conf = ContentPrefixPredicate("conf")
        base = {
            cite: synthesize_from_tree(cite, dblp_tree, grid),
            conf: synthesize_from_tree(conf, dblp_tree, grid),
        }
        combined = synthesize_histogram(AndPredicate(cite, conf), base, true_hist)
        exact = synthesize_from_tree(AndPredicate(cite, conf), dblp_tree, grid)
        # conf prefixes only occur on cite elements, so independence
        # within a cell underestimates; it must still be same order.
        assert combined.total() > 0
        assert combined.total() <= exact.total() * 1.05

    def test_not_via_true(self, paper_tree):
        grid = GridSpec(4, paper_tree.max_label)
        true_hist = build_true_histogram(paper_tree, grid)
        ta = TagPredicate("TA")
        base = {ta: synthesize_from_tree(ta, paper_tree, grid)}
        complement = synthesize_histogram(NotPredicate(ta), base, true_hist)
        assert complement.total() == len(paper_tree) - 5

    def test_missing_base_raises(self, paper_tree):
        grid = GridSpec(4, paper_tree.max_label)
        true_hist = build_true_histogram(paper_tree, grid)
        with pytest.raises(KeyError):
            synthesize_histogram(TagPredicate("TA"), {}, true_hist)
