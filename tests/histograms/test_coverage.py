"""Coverage histogram unit tests (paper Section 4.2, Theorem 2)."""

import pytest

from repro.histograms.coverage import CoverageHistogram, build_coverage_histogram
from repro.histograms.grid import GridSpec
from repro.histograms.truehist import build_true_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


def build(tree, tag, grid_size):
    grid = GridSpec(grid_size, tree.max_label)
    true_hist = build_true_histogram(tree, grid)
    catalog = PredicateCatalog(tree)
    stats = catalog.stats(TagPredicate(tag))
    return (
        build_coverage_histogram(tree, stats.node_indices, true_hist, name=tag),
        true_hist,
        stats,
    )


class TestConstructionInvariants:
    def test_fractions_in_unit_interval(self, paper_tree):
        coverage, _true, _stats = build(paper_tree, "faculty", 4)
        for _key, fraction in coverage.entries():
            assert 0.0 < fraction <= 1.0

    def test_covering_cells_are_populated_cells(self, paper_tree):
        """Every covering cell must actually contain a predicate node."""
        from repro.histograms.position import build_position_histogram

        grid = GridSpec(4, paper_tree.max_label)
        catalog = PredicateCatalog(paper_tree)
        stats = catalog.stats(TagPredicate("faculty"))
        hist = build_position_histogram(paper_tree, stats.node_indices, grid)
        true_hist = build_true_histogram(paper_tree, grid)
        coverage = build_coverage_histogram(
            paper_tree, stats.node_indices, true_hist
        )
        for (_i, _j, m, n), _fraction in coverage.entries():
            assert hist.count(m, n) > 0

    def test_numerators_exact_against_brute_force(self, paper_tree):
        """Reconstruct coverage numerators by brute-force ancestor walks."""
        grid = GridSpec(3, paper_tree.max_label)
        true_hist = build_true_histogram(paper_tree, grid)
        catalog = PredicateCatalog(paper_tree)
        stats = catalog.stats(TagPredicate("faculty"))
        coverage = build_coverage_histogram(
            paper_tree, stats.node_indices, true_hist
        )
        predicate_set = set(int(x) for x in stats.node_indices)
        expected: dict[tuple[int, int, int, int], int] = {}
        for v in range(len(paper_tree)):
            v_cell = grid.cell_of(int(paper_tree.start[v]), int(paper_tree.end[v]))
            seen = set()
            for u in range(len(paper_tree)):
                if u in predicate_set and paper_tree.is_ancestor(u, v):
                    u_cell = grid.cell_of(
                        int(paper_tree.start[u]), int(paper_tree.end[u])
                    )
                    if u_cell not in seen:
                        seen.add(u_cell)
                        key = (*v_cell, *u_cell)
                        expected[key] = expected.get(key, 0) + 1
        for key, numerator in expected.items():
            denominator = true_hist.count(key[0], key[1])
            assert coverage.coverage(*key) == pytest.approx(numerator / denominator)
        # And nothing extra.
        assert sum(1 for _ in coverage.entries()) == len(expected)

    def test_overlap_predicate_deduplicates_same_cell(self, orgchart_tree):
        """With nested predicate nodes (overlap), a node under two
        ancestors in the same cell must count once for that cell."""
        coverage, _true, _stats = build(orgchart_tree, "department", 6)
        for _key, fraction in coverage.entries():
            assert fraction <= 1.0 + 1e-9

    def test_empty_predicate_gives_empty_coverage(self, paper_tree):
        grid = GridSpec(4, paper_tree.max_label)
        true_hist = build_true_histogram(paper_tree, grid)
        coverage = build_coverage_histogram(paper_tree, [], true_hist)
        assert coverage.entry_count() == 0


class TestAccessors:
    def test_covering_and_covered_views_agree(self, paper_tree):
        coverage, _true, _stats = build(paper_tree, "faculty", 4)
        entries = dict(coverage.entries())
        for (i, j, m, n), fraction in entries.items():
            assert ((m, n), fraction) in list(coverage.covering_cells(i, j))
            assert ((i, j), fraction) in list(coverage.covered_cells(m, n))

    def test_missing_entry_is_zero(self, paper_tree):
        coverage, _true, _stats = build(paper_tree, "faculty", 4)
        assert coverage.coverage(3, 3, 0, 0) in (0.0, coverage.coverage(3, 3, 0, 0))

    def test_validation_rejects_bad_fraction(self):
        grid = GridSpec(3, 10)
        with pytest.raises(ValueError, match="outside"):
            CoverageHistogram(grid, {(0, 1, 0, 2): 1.5})

    def test_validation_rejects_below_diagonal(self):
        grid = GridSpec(3, 10)
        with pytest.raises(ValueError, match="below-diagonal"):
            CoverageHistogram(grid, {(1, 0, 0, 2): 0.5})

    def test_scaled_copy_is_independent(self, paper_tree):
        coverage, _true, _stats = build(paper_tree, "faculty", 4)
        copy = coverage.scaled_copy()
        assert dict(copy.entries()) == dict(coverage.entries())
        assert copy is not coverage


class TestTheorem2:
    def test_partial_entries_linear_in_grid_size(self, dblp_tree):
        """Theorem 2: partial coverage entries are O(g)."""
        catalog = PredicateCatalog(dblp_tree)
        stats = catalog.stats(TagPredicate("article"))
        partials = {}
        for g in (5, 10, 20, 40):
            grid = GridSpec(g, dblp_tree.max_label)
            true_hist = build_true_histogram(dblp_tree, grid)
            coverage = build_coverage_histogram(
                dblp_tree, stats.node_indices, true_hist
            )
            partials[g] = coverage.partial_entry_count()
        for g, count in partials.items():
            assert count <= 6 * g, f"g={g}: {count} partial entries"
        # Density per g stays bounded (quadratic would quadruple it).
        assert partials[40] / 40 <= 2.0 * max(partials[10] / 10, 1.0)
