"""GridSpec unit tests."""

import numpy as np
import pytest

from repro.histograms.grid import GridSpec


class TestBucketing:
    def test_bucket_boundaries(self):
        grid = GridSpec(size=10, max_label=99)
        assert grid.bucket(0) == 0
        assert grid.bucket(9) == 0
        assert grid.bucket(10) == 1
        assert grid.bucket(99) == 9

    def test_bucket_uneven_division(self):
        grid = GridSpec(size=3, max_label=9)  # span 10/3
        assert grid.bucket(0) == 0
        assert grid.bucket(3) == 0
        assert grid.bucket(4) == 1
        assert grid.bucket(9) == 2

    def test_bucket_out_of_range(self):
        grid = GridSpec(size=4, max_label=10)
        with pytest.raises(ValueError):
            grid.bucket(-1)
        with pytest.raises(ValueError):
            grid.bucket(11)

    def test_vectorised_buckets_match_scalar(self):
        grid = GridSpec(size=7, max_label=52)
        positions = np.arange(0, 53)
        vector = grid.buckets(positions)
        scalar = [grid.bucket(int(p)) for p in positions]
        assert vector.tolist() == scalar

    def test_cell_of(self):
        grid = GridSpec(size=10, max_label=99)
        assert grid.cell_of(5, 95) == (0, 9)

    def test_single_bucket_grid(self):
        grid = GridSpec(size=1, max_label=100)
        assert grid.bucket(0) == 0
        assert grid.bucket(100) == 0


class TestGeometry:
    def test_bucket_bounds(self):
        grid = GridSpec(size=4, max_label=7)
        lo, hi = grid.bucket_bounds(1)
        assert lo == 2.0 and hi == 4.0
        with pytest.raises(ValueError):
            grid.bucket_bounds(4)

    def test_on_diagonal(self):
        grid = GridSpec(size=5, max_label=9)
        assert grid.is_on_diagonal(2, 2)
        assert not grid.is_on_diagonal(2, 3)

    def test_iter_upper_cells(self):
        grid = GridSpec(size=3, max_label=9)
        cells = list(grid.iter_upper_cells())
        assert cells == [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]

    def test_compatible_with(self):
        a = GridSpec(10, 99)
        assert a.compatible_with(GridSpec(10, 99))
        assert not a.compatible_with(GridSpec(10, 100))
        assert not a.compatible_with(GridSpec(9, 99))


class TestValidation:
    def test_bad_size(self):
        with pytest.raises(ValueError):
            GridSpec(size=0, max_label=10)

    def test_bad_max_label(self):
        with pytest.raises(ValueError):
            GridSpec(size=2, max_label=-1)
