"""Vectorized histogram kernels pinned bit-exact to their references.

``merge_page`` and ``coverage_from_numerators`` were rewritten as flat
array passes; their pre-vectorization implementations survive as
``_merge_page_dict`` and ``_coverage_from_numerators_items`` purely so
these tests can assert the kernels produce *bit-identical* float
results (counts compared through their int64 bit patterns, fractions by
exact equality) over random inputs, engineered exact cancellations, and
the empty edge cases.  The columnar :class:`CoverageNumerators` store
is pinned against plain-dict pair arithmetic.
"""

import random

import numpy as np
import pytest

from repro.histograms.coverage import (
    CoverageNumerators,
    _coverage_from_numerators_items,
    build_coverage_numerators,
    coverage_from_numerators,
)
from repro.histograms.epoch import HistogramPage, _merge_page_dict, merge_page
from repro.histograms.grid import GridSpec
from repro.histograms.truehist import build_true_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


def bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return np.array_equal(a.view(np.int64), b.view(np.int64))


def random_page(rng: random.Random, cells: int) -> HistogramPage:
    mapping = {
        rng.randrange(200): rng.uniform(0.5, 50.0) for _ in range(cells)
    }
    return HistogramPage.from_mapping(mapping)


def random_layers(rng: random.Random, page: HistogramPage) -> list[dict]:
    layers = []
    for _ in range(rng.randrange(5)):
        layer: dict[int, float] = {}
        for _ in range(rng.randrange(12)):
            layer[rng.randrange(200)] = rng.choice([-1.0, 1.0]) * rng.uniform(
                0.0, 8.0
            )
        # Sometimes cancel a page cell exactly: the float negation of
        # its count sums to bitwise +0.0, which the merge must drop.
        if len(page) and rng.random() < 0.5:
            slot = rng.randrange(len(page))
            layer[int(page.codes[slot])] = -float(page.counts[slot])
        layers.append(layer)
    return layers


class TestMergePage:
    @pytest.mark.parametrize("seed", range(60))
    def test_matches_dict_reference_bitwise(self, seed):
        rng = random.Random(seed)
        page = random_page(rng, rng.randrange(30))
        layers = random_layers(rng, page)
        merged = merge_page(page, layers)
        reference = _merge_page_dict(page, layers)
        assert np.array_equal(merged.codes, reference.codes)
        assert bit_equal(merged.counts, reference.counts)

    def test_empty_page_and_layers(self):
        merged = merge_page(HistogramPage.empty(), [{}, {}])
        assert len(merged) == 0

    def test_full_cancellation_drops_every_cell(self):
        page = HistogramPage.from_mapping({3: 1.5, 9: 2.25})
        layers = [{3: -1.5}, {9: -2.25}]
        merged = merge_page(page, layers)
        reference = _merge_page_dict(page, layers)
        assert len(merged) == 0 and len(reference) == 0

    def test_accumulation_order_is_page_then_layers(self):
        # 0.1 + 0.2 + 0.3 != 0.1 + (0.2 + 0.3) in float64: the merge
        # must add in stack order to stay bit-identical to a reader.
        page = HistogramPage.from_mapping({5: 0.1})
        layers = [{5: 0.2}, {5: 0.3}]
        merged = merge_page(page, layers)
        assert merged.counts[0] == (0.1 + 0.2) + 0.3


def grid_and_true(tree, grid_size: int):
    grid = GridSpec(grid_size, tree.max_label)
    return grid, build_true_histogram(tree, grid)


def random_numerators(
    rng: random.Random, g: int, entries: int, true_hist=None
) -> dict:
    out = {}
    for _ in range(entries):
        # Valid cells sit on or above the diagonal (start <= end).
        i = rng.randrange(g)
        m = rng.randrange(g)
        key = (i, rng.randrange(i, g), m, rng.randrange(m, g))
        # Real numerators never exceed the covered cell's node count
        # (the fraction stays in (0, 1]); empty covered cells are kept
        # sometimes -- both derivations must filter them out.
        ceiling = 39
        if true_hist is not None:
            ceiling = int(true_hist.count(key[0], key[1]))
            if ceiling == 0 and rng.random() < 0.7:
                continue
        out[key] = rng.randrange(1, max(2, ceiling + 1))
    return out


class TestCoverageFromNumerators:
    @pytest.mark.parametrize("seed", range(30))
    def test_matches_per_entry_reference(self, paper_tree, seed):
        rng = random.Random(seed)
        g = rng.choice([3, 4, 6])
        _grid, true_hist = grid_and_true(paper_tree, g)
        mapping = random_numerators(rng, g, rng.randrange(1, 25), true_hist)
        numerators = CoverageNumerators.from_mapping(g, mapping)
        fast = coverage_from_numerators(numerators, true_hist)
        reference = _coverage_from_numerators_items(mapping, true_hist)
        assert dict(fast.entries()) == dict(reference.entries())

    def test_built_numerators_round_trip(self, paper_tree):
        grid, true_hist = grid_and_true(paper_tree, 4)
        stats = PredicateCatalog(paper_tree).stats(TagPredicate("faculty"))
        numerators = build_coverage_numerators(
            paper_tree, stats.node_indices, grid
        )
        fast = coverage_from_numerators(numerators, true_hist)
        reference = _coverage_from_numerators_items(
            numerators.to_mapping(), true_hist
        )
        assert dict(fast.entries()) == dict(reference.entries())

    def test_empty_numerators(self, paper_tree):
        _grid, true_hist = grid_and_true(paper_tree, 4)
        coverage = coverage_from_numerators(CoverageNumerators.empty(4), true_hist)
        assert dict(coverage.entries()) == {}


class TestCoverageNumerators:
    @pytest.mark.parametrize("seed", range(20))
    def test_mapping_round_trip(self, seed):
        rng = random.Random(seed)
        g = rng.choice([3, 5, 8])
        mapping = random_numerators(rng, g, rng.randrange(30))
        numerators = CoverageNumerators.from_mapping(g, mapping)
        assert numerators.to_mapping() == mapping
        assert numerators == mapping  # Mapping __eq__ path
        assert len(numerators) == len(mapping)
        assert np.array_equal(np.sort(numerators.codes), numerators.codes)

    @pytest.mark.parametrize("seed", range(20))
    def test_patch_matches_dict_arithmetic(self, seed):
        rng = random.Random(seed)
        g = 4
        base = random_numerators(rng, g, 20)
        numerators = CoverageNumerators.from_mapping(g, base)
        gained = random_numerators(rng, g, rng.randrange(10))
        # Losses only remove what is present (plus what was just gained).
        combined = dict(base)
        for key, count in gained.items():
            combined[key] = combined.get(key, 0) + count
        lost = {
            key: rng.randrange(0, combined[key] + 1)
            for key in rng.sample(sorted(combined), min(6, len(combined)))
        }
        patched = numerators.patch(
            CoverageNumerators.from_mapping(g, gained).codes,
            CoverageNumerators.from_mapping(g, gained).counts,
            CoverageNumerators.from_mapping(g, lost).codes,
            CoverageNumerators.from_mapping(g, lost).counts,
        )
        expected = {
            key: count - lost.get(key, 0)
            for key, count in combined.items()
            if count - lost.get(key, 0) > 0
        }
        assert patched.to_mapping() == expected

    def test_patch_underflow_raises_with_owner_and_key(self):
        numerators = CoverageNumerators.from_mapping(3, {(1, 2, 0, 1): 2})
        lost = CoverageNumerators.from_mapping(3, {(1, 2, 0, 1): 3})
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(AssertionError) as info:
            numerators.patch(empty, empty, lost.codes, lost.counts, owner="//a")
        assert "'//a'" in str(info.value)
        assert "(1, 2, 0, 1)" in str(info.value)

    def test_patch_of_empty_is_identity_for_gains(self):
        gained = CoverageNumerators.from_mapping(3, {(0, 1, 1, 2): 5})
        empty = np.empty(0, dtype=np.int64)
        patched = CoverageNumerators.empty(3).patch(
            gained.codes, gained.counts, empty, empty
        )
        assert patched == gained
