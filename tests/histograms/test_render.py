"""Histogram rendering tests."""

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram
from repro.histograms.coverage import CoverageHistogram
from repro.histograms.render import (
    render_coverage_histogram,
    render_position_histogram,
)


class TestPositionRendering:
    def test_fig7_style_grid(self):
        grid = GridSpec(2, 59)
        hist = PositionHistogram.from_cells(
            grid, {(0, 0): 2, (0, 1): 1}, name="faculty"
        )
        text = render_position_histogram(hist)
        lines = text.splitlines()
        assert lines[0].startswith("faculty (g=2, total=3)")
        # Highest end bucket on top.
        assert lines[1].startswith("end  1")
        assert lines[2].startswith("end  0")
        # Counts appear; below-diagonal cell is blank, empty cell dotted.
        assert "1" in lines[1]
        assert "2" in lines[2]
        assert "." in lines[1]  # cell (1,1) is empty

    def test_fractional_counts(self):
        grid = GridSpec(2, 9)
        hist = PositionHistogram.from_cells(grid, {(0, 1): 0.25})
        assert "0.25" in render_position_histogram(hist)

    def test_renders_for_real_data(self, dblp_estimator):
        from repro.predicates.base import TagPredicate

        hist = dblp_estimator.position_histogram(TagPredicate("article"))
        text = render_position_histogram(hist)
        assert text.count("\n") >= dblp_estimator.grid.size


class TestCoverageRendering:
    def test_lists_entries(self):
        grid = GridSpec(2, 9)
        coverage = CoverageHistogram(
            grid, {(0, 0, 0, 1): 0.3, (1, 1, 0, 1): 0.5}, name="faculty"
        )
        text = render_coverage_histogram(coverage)
        assert "cell (0,0) <- ancestors in (0,1): 0.300" in text
        assert "cell (1,1) <- ancestors in (0,1): 0.500" in text

    def test_truncation(self):
        grid = GridSpec(4, 99)
        entries = {
            (i, j, 0, 3): 0.1
            for i in range(4)
            for j in range(i, 4)
        }
        coverage = CoverageHistogram(grid, entries)
        text = render_coverage_histogram(coverage, max_rows=3)
        assert "more entries" in text

    def test_empty(self):
        coverage = CoverageHistogram(GridSpec(2, 9))
        assert "(empty)" in render_coverage_histogram(coverage)
