"""Equi-depth (non-uniform) grid unit tests."""

import numpy as np
import pytest

from repro.histograms.adaptive import equi_depth_boundaries, equi_depth_grid
from repro.histograms.grid import GridSpec
from repro.histograms.position import build_position_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


class TestBoundaries:
    def test_strictly_increasing_and_covering(self, dblp_tree):
        grid = equi_depth_grid(dblp_tree, 10)
        assert grid.boundaries is not None
        bounds = grid.boundaries
        assert len(bounds) == 11
        assert bounds[0] <= 0
        assert bounds[-1] > dblp_tree.max_label
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_roughly_equal_depth(self, dblp_tree):
        grid = equi_depth_grid(dblp_tree, 10)
        positions = np.concatenate([dblp_tree.start, dblp_tree.end])
        buckets = grid.buckets(positions)
        counts = np.bincount(buckets, minlength=10)
        # Quantile boundaries: each axis bucket within 3x of the mean.
        mean = counts.mean()
        assert counts.max() <= 3 * mean
        assert counts.min() >= mean / 3

    def test_degenerate_population(self):
        # All positions identical: must still produce a valid grid.
        bounds = equi_depth_boundaries(np.array([5, 5, 5, 5]), 4, 10)
        assert len(bounds) == 5
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            equi_depth_boundaries(np.array([1, 2, 3]), 0, 10)


class TestGridSpecWithBoundaries:
    def test_bucket_respects_boundaries(self):
        grid = GridSpec(3, 9, boundaries=(0.0, 2.0, 7.0, 10.0))
        assert grid.bucket(0) == 0
        assert grid.bucket(1) == 0
        assert grid.bucket(2) == 1
        assert grid.bucket(6) == 1
        assert grid.bucket(7) == 2
        assert grid.bucket(9) == 2

    def test_vectorised_matches_scalar(self):
        grid = GridSpec(3, 9, boundaries=(0.0, 2.0, 7.0, 10.0))
        positions = np.arange(10)
        assert grid.buckets(positions).tolist() == [
            grid.bucket(int(p)) for p in positions
        ]

    def test_bucket_bounds(self):
        grid = GridSpec(2, 9, boundaries=(0.0, 4.0, 10.0))
        assert grid.bucket_bounds(0) == (0.0, 4.0)
        assert grid.bucket_bounds(1) == (4.0, 10.0)

    def test_span_undefined(self):
        grid = GridSpec(2, 9, boundaries=(0.0, 4.0, 10.0))
        with pytest.raises(ValueError, match="span"):
            grid.span

    def test_validation(self):
        with pytest.raises(ValueError, match="boundaries"):
            GridSpec(2, 9, boundaries=(0.0, 4.0))  # wrong count
        with pytest.raises(ValueError, match="increasing"):
            GridSpec(2, 9, boundaries=(0.0, 4.0, 4.0))
        with pytest.raises(ValueError, match="cover"):
            GridSpec(2, 9, boundaries=(0.0, 4.0, 8.0))

    def test_compatibility_includes_boundaries(self):
        uniform = GridSpec(2, 9)
        shaped = GridSpec(2, 9, boundaries=(0.0, 4.0, 10.0))
        assert not uniform.compatible_with(shaped)
        assert shaped.compatible_with(GridSpec(2, 9, boundaries=(0.0, 4.0, 10.0)))


class TestEstimationOnEquiDepthGrids:
    def test_histograms_and_estimates_work(self, dblp_tree):
        from repro.estimation import AnswerSizeEstimator

        estimator = AnswerSizeEstimator(dblp_tree, grid_size=10, grid="equi-depth")
        real = estimator.real_answer("//article//author")
        estimate = estimator.estimate("//article//author").value
        assert estimate == pytest.approx(real, rel=0.3)

    def test_lemma1_still_holds(self, dblp_tree):
        grid = equi_depth_grid(dblp_tree, 8)
        catalog = PredicateCatalog(dblp_tree)
        for tag in ("article", "cite"):
            stats = catalog.stats(TagPredicate(tag))
            hist = build_position_histogram(dblp_tree, stats.node_indices, grid)
            assert hist.check_lemma1()
            assert hist.total() == stats.count

    def test_invalid_grid_kind_rejected(self, dblp_tree):
        from repro.estimation import AnswerSizeEstimator

        with pytest.raises(ValueError, match="grid"):
            AnswerSizeEstimator(dblp_tree, grid_size=5, grid="hexagonal")
