"""Tree model unit tests: navigation and traversal."""

from repro.xmltree.builder import element
from repro.xmltree.tree import Document, Element, Text, walk


def sample() -> Element:
    return element(
        "a",
        element("b", element("d"), element("e", "txt")),
        element("c"),
    )


class TestNavigation:
    def test_ancestors(self):
        a = sample()
        d = next(a.find_all("d"))
        assert [n.tag for n in d.ancestors() if isinstance(n, Element)] == ["b", "a"]

    def test_is_ancestor_of(self):
        a = sample()
        b = next(a.find_all("b"))
        d = next(a.find_all("d"))
        c = next(a.find_all("c"))
        assert a.is_ancestor_of(d)
        assert b.is_ancestor_of(d)
        assert not c.is_ancestor_of(d)
        assert not d.is_ancestor_of(b)
        assert not d.is_ancestor_of(d)

    def test_root_and_depth(self):
        a = sample()
        d = next(a.find_all("d"))
        assert d.root() is a
        assert d.depth() == 2
        assert a.depth() == 0

    def test_preorder_iteration(self):
        a = sample()
        assert [n.tag for n in a.iter()] == ["a", "b", "d", "e", "c"]

    def test_descendants_excludes_self(self):
        a = sample()
        assert [n.tag for n in a.descendants()] == ["b", "d", "e", "c"]

    def test_text_content_concatenates_in_order(self):
        node = element("x", "one ", element("y", "two"), " three")
        assert node.text_content() == "one two three"


class TestDocument:
    def test_root_element_property(self):
        doc = Document()
        doc.append(Text("ignored?"))
        doc.append(element("r"))
        assert doc.root_element.tag == "r"

    def test_root_element_missing(self):
        doc = Document()
        try:
            doc.root_element
        except ValueError as exc:
            assert "no root element" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_iter_elements(self):
        doc = Document()
        doc.append(sample())
        assert [e.tag for e in doc.iter_elements()] == ["a", "b", "d", "e", "c"]
        assert doc.count_nodes() == 5


class TestWalk:
    def test_enter_leave_order(self):
        events: list[str] = []
        walk(
            sample(),
            enter=lambda e: events.append(f"+{e.tag}"),
            leave=lambda e: events.append(f"-{e.tag}"),
        )
        assert events == ["+a", "+b", "+d", "-d", "+e", "-e", "-b", "+c", "-c", "-a"]

    def test_walk_on_document(self):
        doc = Document()
        doc.append(sample())
        seen: list[str] = []
        walk(doc, enter=lambda e: seen.append(e.tag))
        assert seen == ["a", "b", "d", "e", "c"]

    def test_walk_deep_tree_does_not_recurse(self):
        # 5000 levels would blow Python's default recursion limit if the
        # walk were recursive.
        root = element("n0")
        node = root
        for i in range(1, 5001):
            child = element(f"n{i}")
            node.append(child)
            node = child
        count = 0

        def enter(_e: Element) -> None:
            nonlocal count
            count += 1

        walk(root, enter)
        assert count == 5001
