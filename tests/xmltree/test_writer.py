"""Writer unit tests, including parse/write round-trips."""

from repro.xmltree.builder import element
from repro.xmltree.parser import parse_document, parse_fragment
from repro.xmltree.writer import (
    escape_attribute,
    escape_text,
    write_document,
    write_node,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestWriteNode:
    def test_empty_element(self):
        assert write_node(element("a")) == "<a/>"

    def test_text_only_element_stays_inline(self):
        assert write_node(element("a", "hello")) == "<a>hello</a>"

    def test_attributes(self):
        node = element("a", attributes={"x": "1", "y": "<2>"})
        assert write_node(node) == '<a x="1" y="&lt;2&gt;"/>'

    def test_nested(self):
        node = element("a", element("b", "t"), element("c"))
        assert write_node(node) == "<a><b>t</b><c/></a>"

    def test_pretty_printing_indents(self):
        node = element("a", element("b", "t"))
        text = write_node(node, indent=2)
        assert text == "<a>\n  <b>t</b>\n</a>\n"


class TestRoundTrips:
    CASES = [
        "<a/>",
        "<a>text</a>",
        '<a k="v"><b/>tail<c>x</c></a>',
        "<a>&lt;escaped&gt; &amp; more</a>",
        "<r><x><y><z>deep</z></y></x></r>",
    ]

    def test_parse_write_parse_is_stable(self):
        for case in self.CASES:
            first = parse_fragment(case)
            text = write_node(first)
            second = parse_fragment(text)
            assert _shape(first) == _shape(second), case

    def test_document_roundtrip_with_declaration(self):
        doc = parse_document("<a><b>x</b></a>")
        text = write_document(doc)
        assert text.startswith("<?xml")
        again = parse_document(text)
        assert _shape(doc.root_element) == _shape(again.root_element)


def _shape(node):
    """Structure signature: (tag, attrs, text, children)."""
    from repro.xmltree.tree import Element, Text

    children = []
    text_parts = []
    for child in node.children:
        if isinstance(child, Element):
            children.append(_shape(child))
        elif isinstance(child, Text):
            text_parts.append(child.value)
    return (node.tag, tuple(sorted(node.attributes.items())), "".join(text_parts), tuple(children))
