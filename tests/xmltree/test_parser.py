"""Parser unit tests: well-formedness and tree construction."""

import pytest

from repro.xmltree.errors import XMLWellFormednessError
from repro.xmltree.parser import parse_document, parse_fragment
from repro.xmltree.tree import Element, Text


class TestBasicParsing:
    def test_single_root(self):
        doc = parse_document("<root/>")
        assert doc.root_element.tag == "root"

    def test_nested_structure(self):
        root = parse_fragment("<a><b><c/></b><d/></a>")
        assert [c.tag for c in root.child_elements()] == ["b", "d"]
        b = next(root.child_elements())
        assert [c.tag for c in b.child_elements()] == ["c"]

    def test_text_content(self):
        root = parse_fragment("<a>hello <b>world</b></a>")
        assert root.text_content() == "hello world"

    def test_attributes_preserved(self):
        root = parse_fragment('<a key="value"/>')
        assert root.attributes == {"key": "value"}

    def test_parent_links(self):
        root = parse_fragment("<a><b/></a>")
        b = next(root.child_elements())
        assert b.parent is root

    def test_prolog_and_comments_skipped(self):
        doc = parse_document(
            '<?xml version="1.0"?><!DOCTYPE a><!-- hi --><a/><!-- bye -->'
        )
        assert doc.root_element.tag == "a"


class TestWhitespaceHandling:
    def test_indentation_dropped_by_default(self):
        root = parse_fragment("<a>\n  <b/>\n</a>")
        assert all(isinstance(c, Element) for c in root.children)

    def test_whitespace_kept_when_asked(self):
        root = parse_fragment("<a>\n  <b/>\n</a>", keep_whitespace=True)
        assert any(isinstance(c, Text) for c in root.children)

    def test_significant_text_always_kept(self):
        root = parse_fragment("<a> x </a>")
        assert root.text_content() == " x "


class TestWellFormedness:
    def test_mismatched_close_tag(self):
        with pytest.raises(XMLWellFormednessError, match="does not match"):
            parse_document("<a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XMLWellFormednessError, match="unclosed"):
            parse_document("<a><b></b>")

    def test_stray_close_tag(self):
        with pytest.raises(XMLWellFormednessError, match="no open element"):
            parse_document("<a/></a>")

    def test_two_roots(self):
        with pytest.raises(XMLWellFormednessError, match="second root"):
            parse_document("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(XMLWellFormednessError, match="outside the root"):
            parse_document("junk<a/>")

    def test_empty_input(self):
        with pytest.raises(XMLWellFormednessError, match="no root element"):
            parse_document("")

    def test_comment_only(self):
        with pytest.raises(XMLWellFormednessError, match="no root element"):
            parse_document("<!-- nothing here -->")


class TestRealisticDocuments:
    DBLP_SNIPPET = """
    <dblp>
      <article key="journals/tods/one">
        <author>Alice Garcia</author>
        <author>Bob Chen</author>
        <title>Position Histograms &amp; XML</title>
        <year>1999</year>
        <cite>conf/sigmod/42</cite>
      </article>
      <book><title>Databases</title><year>1995</year></book>
    </dblp>
    """

    def test_dblp_snippet(self):
        doc = parse_document(self.DBLP_SNIPPET)
        root = doc.root_element
        tags = [e.tag for e in root.iter()]
        assert tags.count("author") == 2
        assert tags.count("article") == 1
        article = next(root.find_all("article"))
        title = next(article.find_all("title"))
        assert title.text_content() == "Position Histograms & XML"

    def test_count_nodes(self):
        doc = parse_document(self.DBLP_SNIPPET)
        assert doc.count_nodes() == 10
