"""TreeBuilder unit tests."""

import pytest

from repro.xmltree.builder import TreeBuilder, element, text
from repro.xmltree.tree import Element, Text


class TestFunctionalConstructors:
    def test_element_with_string_children(self):
        node = element("a", "x", element("b"), "y")
        assert isinstance(node.children[0], Text)
        assert isinstance(node.children[1], Element)
        assert node.text_content() == "xy"

    def test_text_constructor(self):
        node = text("hello")
        assert node.value == "hello"
        assert node.parent is None

    def test_attributes_copied(self):
        attrs = {"k": "v"}
        node = element("a", attributes=attrs)
        attrs["k"] = "changed"
        assert node.attributes == {"k": "v"}


class TestTreeBuilder:
    def test_basic_build(self):
        builder = TreeBuilder()
        builder.start("department")
        builder.start("faculty")
        builder.leaf("name", "Patel")
        builder.end()
        builder.end()
        doc = builder.finish()
        assert [e.tag for e in doc.iter_elements()] == [
            "department",
            "faculty",
            "name",
        ]

    def test_leaf_without_value(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.leaf("empty")
        builder.end()
        doc = builder.finish()
        empty = next(doc.root_element.find_all("empty"))
        assert empty.children == []

    def test_end_without_start(self):
        builder = TreeBuilder()
        with pytest.raises(ValueError, match="no open element"):
            builder.end()

    def test_text_outside_element(self):
        builder = TreeBuilder()
        with pytest.raises(ValueError, match="outside"):
            builder.text("floating")

    def test_finish_with_open_element(self):
        builder = TreeBuilder()
        builder.start("a")
        with pytest.raises(ValueError, match="unclosed"):
            builder.finish()

    def test_finish_without_root(self):
        builder = TreeBuilder()
        with pytest.raises(ValueError, match="no root"):
            builder.finish()

    def test_second_root_rejected(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.end()
        with pytest.raises(ValueError, match="already has a root"):
            builder.start("b")

    def test_use_after_finish_rejected(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.end()
        builder.finish()
        with pytest.raises(ValueError, match="finished"):
            builder.start("b")
