"""Tokenizer unit tests: lexical behaviour of the XML substrate."""

import pytest

from repro.xmltree.errors import XMLSyntaxError
from repro.xmltree.tokenizer import Token, TokenType, resolve_references, tokenize


def kinds(data: str) -> list[TokenType]:
    return [t.type for t in tokenize(data)]


class TestBasicTokens:
    def test_simple_element(self):
        tokens = list(tokenize("<a>text</a>"))
        assert [t.type for t in tokens] == [
            TokenType.START_TAG,
            TokenType.TEXT,
            TokenType.END_TAG,
        ]
        assert tokens[0].value == "a"
        assert tokens[1].value == "text"
        assert tokens[2].value == "a"

    def test_empty_element(self):
        (token,) = list(tokenize("<br/>"))
        assert token.type is TokenType.EMPTY_TAG
        assert token.value == "br"

    def test_empty_element_with_space(self):
        (token,) = list(tokenize("<br />"))
        assert token.type is TokenType.EMPTY_TAG

    def test_nested_elements(self):
        assert kinds("<a><b/></a>") == [
            TokenType.START_TAG,
            TokenType.EMPTY_TAG,
            TokenType.END_TAG,
        ]

    def test_offsets_point_into_input(self):
        tokens = list(tokenize("<a>xy</a>"))
        assert tokens[0].offset == 0
        assert tokens[1].offset == 3
        assert tokens[2].offset == 5

    def test_names_with_punctuation(self):
        (token,) = list(tokenize("<ns:tag-1.2_x/>"))
        assert token.value == "ns:tag-1.2_x"


class TestAttributes:
    def test_double_quoted(self):
        (token,) = list(tokenize('<a x="1" y="two"/>'))
        assert token.attributes() == {"x": "1", "y": "two"}

    def test_single_quoted(self):
        (token,) = list(tokenize("<a x='1'/>"))
        assert token.attributes() == {"x": "1"}

    def test_entity_in_attribute(self):
        (token,) = list(tokenize('<a x="a&amp;b"/>'))
        assert token.attributes() == {"x": "a&b"}

    def test_whitespace_around_equals(self):
        (token,) = list(tokenize('<a x = "1"/>'))
        assert token.attributes() == {"x": "1"}

    def test_unquoted_value_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a x=1/>"))

    def test_unterminated_value_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize('<a x="1/>'))


class TestReferences:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("&lt;", "<"),
            ("&gt;", ">"),
            ("&amp;", "&"),
            ("&quot;", '"'),
            ("&apos;", "'"),
            ("&#65;", "A"),
            ("&#x41;", "A"),
            ("&#x263A;", "☺"),
        ],
    )
    def test_builtin_and_character_references(self, raw, expected):
        assert resolve_references(raw) == expected

    def test_unknown_entity_kept_literally(self):
        assert resolve_references("&uuml;") == "&uuml;"

    def test_mixed_text(self):
        assert resolve_references("a &lt; b &amp; c") == "a < b & c"

    def test_unterminated_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&amp")

    def test_bad_character_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&#xZZ;")

    def test_empty_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&;")


class TestSpecialConstructs:
    def test_comment(self):
        tokens = list(tokenize("<a><!-- note --></a>"))
        assert tokens[1].type is TokenType.COMMENT
        assert tokens[1].value == " note "

    def test_cdata_becomes_text(self):
        tokens = list(tokenize("<a><![CDATA[<raw> & stuff]]></a>"))
        assert tokens[1].type is TokenType.TEXT
        assert tokens[1].value == "<raw> & stuff"

    def test_processing_instruction(self):
        tokens = list(tokenize('<?xml version="1.0"?><a/>'))
        assert tokens[0].type is TokenType.PI

    def test_doctype_with_internal_subset(self):
        data = '<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>'
        tokens = list(tokenize(data))
        assert tokens[0].type is TokenType.DOCTYPE
        assert "<!ELEMENT" in tokens[0].value

    def test_unterminated_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a><!-- oops</a>"))

    def test_unterminated_cdata_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a><![CDATA[oops</a>"))


class TestTokenValueObject:
    def test_token_is_frozen(self):
        token = Token(TokenType.TEXT, "x", (), 0)
        with pytest.raises(AttributeError):
            token.value = "y"  # type: ignore[misc]

    def test_attributes_returns_fresh_dict(self):
        token = Token(TokenType.START_TAG, "a", (("x", "1"),), 0)
        d = token.attributes()
        d["x"] = "2"
        assert token.attributes() == {"x": "1"}
