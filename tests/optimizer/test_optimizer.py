"""Optimizer and cost-model tests: the paper's motivating use case."""

import pytest

from repro.optimizer.cost import estimate_plan_cost
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import enumerate_plans
from repro.query.xpath import parse_xpath


class TestCostModel:
    def test_costs_positive_and_complete(self, dblp_estimator):
        pattern = parse_xpath("//article[.//author]//cite")
        optimizer = Optimizer(dblp_estimator)
        choice = optimizer.choose_plan(pattern)
        for plan_cost in choice.all_plans:
            assert len(plan_cost.step_costs) == 2
            assert all(c > 0 for c in plan_cost.step_costs)
            assert plan_cost.total == pytest.approx(sum(plan_cost.step_costs))

    def test_exact_oracle_cost(self, dblp_estimator):
        pattern = parse_xpath("//article//author")
        optimizer = Optimizer(dblp_estimator)
        (plan,) = list(enumerate_plans(pattern))
        cost = estimate_plan_cost(
            pattern, plan, optimizer._exact_size, optimizer._exact_size
        )
        article = dblp_estimator.catalog.stats(
            pattern.root.predicate
        ).count
        author = dblp_estimator.catalog.stats(
            pattern.root.children[0].predicate
        ).count
        real = dblp_estimator.real_answer(pattern)
        assert cost.total == pytest.approx(article + author + real)


class TestPlanChoice:
    def test_choice_covers_all_plans(self, dblp_estimator):
        pattern = parse_xpath("//article[.//author]//cite")
        optimizer = Optimizer(dblp_estimator)
        choice = optimizer.choose_plan(pattern)
        assert choice.plan_count == 2
        assert choice.best.total == min(p.total for p in choice.all_plans)

    def test_rank_of_best_is_one(self, dblp_estimator):
        pattern = parse_xpath("//article[.//author]//cite")
        optimizer = Optimizer(dblp_estimator)
        choice = optimizer.choose_plan(pattern)
        assert choice.rank_of(choice.best) == 1

    def test_single_node_pattern_rejected(self, dblp_estimator):
        optimizer = Optimizer(dblp_estimator)
        with pytest.raises(ValueError, match="no joins"):
            optimizer.choose_plan(parse_xpath("//article"))

    def test_ranks_are_stable_one_based_and_complete(self, dblp_estimator):
        """Ranks are a 1..N relabeling of the plans by total cost, and
        repeated calls (the ranking is computed once, then cached) keep
        returning exactly the same assignment."""
        pattern = parse_xpath("//article[.//author][.//cite]//title")
        optimizer = Optimizer(dblp_estimator)
        choice = optimizer.choose_plan(pattern)
        assert choice.plan_count > 2
        first = [choice.rank_of(plan) for plan in choice.all_plans]
        assert sorted(first) == list(range(1, choice.plan_count + 1))
        assert min(first) == 1
        # Rank order agrees with cost order.
        by_cost = sorted(choice.all_plans, key=lambda p: p.total)
        for position, plan in enumerate(by_cost, start=1):
            assert choice.rank_of(plan) == position
        # Stability: a second sweep is identical (and served from cache).
        assert [choice.rank_of(plan) for plan in choice.all_plans] == first
        assert choice._ranks is not None

    def test_rank_of_unknown_plan_rejected(self, dblp_estimator):
        pattern = parse_xpath("//article[.//author]//cite")
        other = parse_xpath("//article//author")  # fewer edges: no plan overlap
        optimizer = Optimizer(dblp_estimator)
        choice = optimizer.choose_plan(pattern)
        foreign = optimizer.choose_plan(other).best
        with pytest.raises(ValueError, match="not among"):
            choice.rank_of(foreign)


class TestEndToEndValidation:
    @pytest.mark.parametrize(
        "xpath",
        [
            "//article[.//author]//cite",
            "//article[.//cdrom]//author",
            "//inproceedings[.//author]//title",
        ],
    )
    def test_estimator_choice_is_near_optimal_dblp(self, dblp_estimator, xpath):
        """The payoff claim: estimate-driven plan choice should land on
        (or near) the truly optimal plan."""
        optimizer = Optimizer(dblp_estimator)
        report = optimizer.validate_choice(parse_xpath(xpath))
        assert report["regret_ratio"] <= 1.5

    def test_estimator_choice_orgchart_twig(self, orgchart_estimator):
        optimizer = Optimizer(orgchart_estimator)
        report = optimizer.validate_choice(
            parse_xpath("//manager//department[.//employee]//email")
        )
        assert report["regret_ratio"] <= 2.0
        assert report["plan_count"] >= 3

    def test_naive_costing_can_mislead(self, dblp_estimator):
        """Sanity for the premise: with naive product sizes the cost
        model inflates intermediate sizes by orders of magnitude."""
        pattern = parse_xpath("//article[.//author]//cite")
        optimizer = Optimizer(dblp_estimator)

        def naive_size(subpattern):
            total = 1.0
            for node in subpattern.nodes():
                total *= max(
                    dblp_estimator.catalog.stats(node.predicate).count, 1
                )
            return total

        (first_plan, *_rest) = list(enumerate_plans(pattern))
        naive_cost = estimate_plan_cost(pattern, first_plan, naive_size, naive_size)
        informed_cost = estimate_plan_cost(
            pattern, first_plan, optimizer._estimated_size, optimizer._estimated_size
        )
        assert naive_cost.total > 50 * informed_cost.total
