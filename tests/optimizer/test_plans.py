"""Join plan enumeration unit tests."""

import math

from repro.optimizer.plans import (
    JoinStep,
    enumerate_plans,
    induced_subpattern,
    pattern_edges,
)
from repro.query.pattern import PatternTree
from repro.query.xpath import parse_xpath


class TestEdges:
    def test_path_edges(self):
        pattern = PatternTree.path("a", "b", "c")
        assert pattern_edges(pattern) == [JoinStep(0, 1), JoinStep(1, 2)]

    def test_branching_edges(self):
        pattern = parse_xpath("//a[.//b]//c")
        assert set(pattern_edges(pattern)) == {JoinStep(0, 1), JoinStep(0, 2)}


class TestEnumeration:
    def test_two_node_pattern_has_one_plan(self):
        plans = list(enumerate_plans(PatternTree.path("a", "b")))
        assert len(plans) == 1
        assert plans[0].steps == (JoinStep(0, 1),)

    def test_path_three_nodes(self):
        plans = list(enumerate_plans(PatternTree.path("a", "b", "c")))
        # Both edge orders are connected for a path of two edges.
        assert len(plans) == 2

    def test_star_three_leaves(self):
        pattern = parse_xpath("//r[.//a][.//b]//c")
        plans = list(enumerate_plans(pattern))
        # All 3! edge orders share the root, all connected.
        assert len(plans) == 6

    def test_connectivity_pruning(self):
        # Path a-b-c-d: orderings must keep the joined set connected.
        pattern = PatternTree.path("a", "b", "c", "d")
        plans = list(enumerate_plans(pattern))
        # Edges e1=(0,1), e2=(1,2), e3=(2,3).  Valid orders: those where
        # the picked set is always contiguous: e1 first: e1,e2,e3;
        # e2 first: e2,e1,e3 / e2,e3,e1; e3 first: e3,e2,e1.  = 4.
        assert len(plans) == 4
        for plan in plans:
            for k in range(1, len(plan.steps) + 1):
                joined = plan.joined_after(k)
                # Connected index sets over a path are intervals.
                assert max(joined) - min(joined) + 1 == len(joined)

    def test_single_node_no_plans(self):
        pattern = parse_xpath("//a")
        assert list(enumerate_plans(pattern)) == []

    def test_all_plans_distinct(self):
        pattern = parse_xpath("//r[.//a][.//b]//c")
        plans = list(enumerate_plans(pattern))
        assert len({p.steps for p in plans}) == len(plans)


class TestInducedSubpattern:
    def test_full_set_recovers_pattern(self):
        pattern = parse_xpath("//a[.//b]//c")
        induced = induced_subpattern(pattern, frozenset({0, 1, 2}))
        assert induced is not None
        assert induced.size() == 3
        assert induced.root.predicate.name == "a"

    def test_pair_subset(self):
        pattern = parse_xpath("//a[.//b]//c")
        induced = induced_subpattern(pattern, frozenset({0, 2}))
        assert induced is not None
        assert induced.to_xpath() == "//a//c"

    def test_single_node(self):
        pattern = parse_xpath("//a[.//b]//c")
        induced = induced_subpattern(pattern, frozenset({1}))
        assert induced is not None
        assert induced.to_xpath() == "//b"

    def test_axis_preserved(self):
        pattern = parse_xpath("//a/b")
        induced = induced_subpattern(pattern, frozenset({0, 1}))
        assert induced is not None
        assert induced.to_xpath() == "//a/b"

    def test_empty_set(self):
        pattern = parse_xpath("//a//b")
        assert induced_subpattern(pattern, frozenset()) is None

    def test_disconnected_set_rejected(self):
        import pytest

        pattern = PatternTree.path("a", "b", "c")
        with pytest.raises(ValueError, match="not connected"):
            induced_subpattern(pattern, frozenset({0, 2}))

    def test_copies_do_not_alias_original(self):
        pattern = parse_xpath("//a//b")
        induced = induced_subpattern(pattern, frozenset({0, 1}))
        assert induced is not None
        assert induced.root is not pattern.root
