"""Level-aware estimation tests (parent-child and level refinement)."""

import pytest

from repro.estimation.leveljoin import ph_join_level_refined, ph_join_parent_child
from repro.histograms.grid import GridSpec
from repro.histograms.levels import LevelPositionHistogram
from repro.predicates.base import TagPredicate


class TestParentChildEstimation:
    def test_flat_hierarchy_exactish(self, dblp_estimator):
        """On DBLP every author's parent is a record: // and / coincide
        and the child estimate must track the descendant estimate."""
        pa, pd = TagPredicate("article"), TagPredicate("author")
        child = dblp_estimator.estimate_pair(pa, pd, method="ph-join-child").value
        desc = dblp_estimator.estimate_pair(pa, pd, method="ph-join").value
        real_child = dblp_estimator.real_answer("//article/author")
        real_desc = dblp_estimator.real_answer("//article//author")
        assert real_child == real_desc
        assert child == pytest.approx(desc, rel=1e-9)

    @pytest.mark.parametrize(
        "anc,desc", [("manager", "department"), ("department", "employee")]
    )
    def test_recursive_hierarchy_child_much_tighter(
        self, orgchart_estimator, anc, desc
    ):
        """On the recursive orgchart, / answers are far below //; the
        level-aware child estimate must follow the / answer."""
        pa, pd = TagPredicate(anc), TagPredicate(desc)
        child_estimate = orgchart_estimator.estimate_pair(
            pa, pd, method="ph-join-child"
        ).value
        real_child = orgchart_estimator.real_answer(f"//{anc}/{desc}")
        real_desc = orgchart_estimator.real_answer(f"//{anc}//{desc}")
        assert real_child < real_desc
        assert child_estimate == pytest.approx(real_child, rel=0.6)
        # The child estimate must sit much closer to real_child than the
        # descendant answer does.
        assert abs(child_estimate - real_child) < abs(real_desc - real_child)

    def test_estimate_routes_child_axis(self, orgchart_estimator):
        result = orgchart_estimator.estimate("//manager/department")
        assert result.method == "ph-join-child"

    def test_impossible_levels_give_zero(self):
        grid = GridSpec(2, 19)
        anc = LevelPositionHistogram(grid, {(0, 1, 5): 3})
        desc = LevelPositionHistogram(grid, {(1, 1, 2): 4})  # shallower
        assert ph_join_parent_child(anc, desc).value == 0.0

    def test_grid_mismatch_rejected(self):
        anc = LevelPositionHistogram(GridSpec(2, 19), {(0, 1, 1): 1})
        desc = LevelPositionHistogram(GridSpec(3, 19), {(0, 1, 2): 1})
        with pytest.raises(ValueError, match="grids"):
            ph_join_parent_child(anc, desc)


class TestLevelRefinedEstimation:
    def test_never_worse_than_plain_on_self_join(self, dblp_estimator):
        """article//article: plain pH-join assigns in-cell self-pair
        mass; the level refinement knows all articles share one level
        and must estimate exactly zero."""
        pa = TagPredicate("article")
        refined = dblp_estimator.estimate_pair(pa, pa, method="ph-join-level").value
        assert refined == 0.0
        assert dblp_estimator.real_answer("//article//article") == 0

    def test_matches_plain_when_levels_disjoint(self, dblp_estimator):
        pa, pd = TagPredicate("article"), TagPredicate("author")
        plain = dblp_estimator.estimate_pair(pa, pd, method="ph-join").value
        refined = dblp_estimator.estimate_pair(pa, pd, method="ph-join-level").value
        assert refined == pytest.approx(plain, rel=1e-9)

    def test_improves_on_recursive_self_nesting(self, orgchart_estimator):
        """employee//name: employees all at many levels but names are
        one deeper than their employee; refinement must not increase the
        error of the plain estimator."""
        pa, pd = TagPredicate("employee"), TagPredicate("name")
        real = orgchart_estimator.real_answer("//employee//name")
        plain = orgchart_estimator.estimate_pair(pa, pd, method="ph-join").value
        refined = orgchart_estimator.estimate_pair(pa, pd, method="ph-join-level").value
        assert abs(refined - real) <= abs(plain - real)

    def test_nonnegative(self, orgchart_estimator):
        pa, pd = TagPredicate("department"), TagPredicate("email")
        value = orgchart_estimator.estimate_pair(pa, pd, method="ph-join-level").value
        assert value >= 0.0


class TestPrecomputedCoefficients:
    def test_matches_plain_ph_join(self, dblp_estimator):
        for anc, desc in (("article", "author"), ("book", "cdrom")):
            pa, pd = TagPredicate(anc), TagPredicate(desc)
            plain = dblp_estimator.estimate_pair(pa, pd, method="ph-join").value
            pre = dblp_estimator.estimate_pair(
                pa, pd, method="ph-join-precomputed"
            ).value
            assert pre == pytest.approx(plain, rel=1e-12)

    def test_coefficients_cached(self, dblp_estimator):
        pd = TagPredicate("author")
        first = dblp_estimator.join_coefficients(pd)
        second = dblp_estimator.join_coefficients(pd)
        assert first is second

    def test_precomputed_is_fast(self, dblp_estimator):
        pa, pd = TagPredicate("article"), TagPredicate("author")
        dblp_estimator.join_coefficients(pd)  # warm
        result = dblp_estimator.estimate_pair(pa, pd, method="ph-join-precomputed")
        assert result.elapsed_seconds is not None
        assert result.elapsed_seconds < 0.005
