"""Baseline estimator unit tests."""

import pytest

from repro.estimation.naive import naive_product_estimate, upper_bound_estimate


class TestNaiveProduct:
    def test_paper_example_numbers(self):
        """Section 2: 3 faculty x 5 TA = 15."""
        assert naive_product_estimate(3, 5).value == 15.0

    def test_zero_cardinality(self):
        assert naive_product_estimate(0, 100).value == 0.0

    def test_method_tag(self):
        assert naive_product_estimate(2, 2).method == "naive"

    def test_timing_recorded(self):
        assert naive_product_estimate(2, 2).elapsed_seconds is not None


class TestUpperBound:
    def test_paper_example_numbers(self):
        """Section 2: bound is the 5 TA nodes when faculty is no-overlap."""
        result = upper_bound_estimate(5, ancestor_no_overlap=True)
        assert result.value == 5.0

    def test_unavailable_without_property(self):
        """Table 4 prints no upper bound for overlap ancestors."""
        result = upper_bound_estimate(5, ancestor_no_overlap=False)
        assert result.value == float("inf")

    def test_ratio_to_helper(self):
        result = upper_bound_estimate(5, ancestor_no_overlap=True)
        assert result.ratio_to(2) == pytest.approx(2.5)
        assert result.ratio_to(0) == float("inf")

    def test_ratio_both_zero(self):
        result = upper_bound_estimate(0, ancestor_no_overlap=True)
        assert result.ratio_to(0) == 1.0
