"""Hand-verified twig cascade internals (Fig. 10 bookkeeping).

These tests construct tiny synthetic states and check each cascade step
against hand-computed values: the occupancy participation formula, join
factors, coverage propagation, and the overlap fallback.
"""

import numpy as np
import pytest

from repro.estimation.twig import SubpatternState, TwigEstimator
from repro.histograms.coverage import CoverageHistogram
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram


def make_estimator(histograms, coverages, grid_size=2):
    """Histograms/coverages are keyed by predicate *name* here."""
    return TwigEstimator(
        histogram_provider=lambda p: histograms[p.name],
        coverage_provider=lambda p: coverages.get(p.name),
        grid_size=grid_size,
    )


class TestLeafState:
    def test_leaf_from_histogram(self):
        grid = GridSpec(2, 19)
        hist = PositionHistogram.from_cells(grid, {(0, 1): 4})
        estimator = make_estimator({"P": hist}, {})
        state = estimator._leaf_state(_node("P"))
        assert state.participation[0, 1] == 4
        assert state.join_factor[0, 1] == 1.0
        assert state.join_factor[0, 0] == 0.0
        assert not state.no_overlap
        assert state.estimate_total() == 4.0


class TestNoOverlapJoinStep:
    def test_hand_computed_cascade_step(self):
        """One no-overlap join, fully by hand.

        Ancestors: 2 nodes in cell (0, 1), coverage of cell (1, 1) by
        (0, 1) is 0.5.  Child: 8 participating nodes in cell (1, 1),
        join factor 1.

        Est[0,1]   = 0.5 * 8 = 4
        M          = child participation in block {(m,n): 0<=m<=n<=1} = 8
        Part[0,1]  = 2 * (1 - (1/2)^8) = 2 * 255/256
        JnFct[0,1] = 4 / Part[0,1]
        """
        grid = GridSpec(2, 19)
        anc_hist = PositionHistogram.from_cells(grid, {(0, 1): 2})
        child_hist = PositionHistogram.from_cells(grid, {(1, 1): 8})
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.5}, name="anc")
        estimator = make_estimator(
            {"A": anc_hist, "B": child_hist}, {"A": coverage}
        )
        anc_state = estimator._leaf_state(_node("A"))
        child_state = estimator._leaf_state(_node("B"))
        joined = estimator._join_no_overlap(anc_state, child_state)

        expected_part = 2 * (1 - 0.5**8)
        assert joined.participation[0, 1] == pytest.approx(expected_part)
        assert joined.join_factor[0, 1] == pytest.approx(4.0 / expected_part)
        assert joined.estimate_total() == pytest.approx(4.0)
        # Coverage propagated with the participation ratio.
        assert joined.coverage is not None
        assert joined.coverage.coverage(1, 1, 0, 1) == pytest.approx(
            0.5 * expected_part / 2
        )

    def test_empty_child_zeroes_everything(self):
        grid = GridSpec(2, 19)
        anc_hist = PositionHistogram.from_cells(grid, {(0, 1): 2})
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.5})
        estimator = make_estimator(
            {"A": anc_hist, "B": PositionHistogram(grid)}, {"A": coverage}
        )
        joined = estimator._join_no_overlap(
            estimator._leaf_state(_node("A")), estimator._leaf_state(_node("B"))
        )
        assert joined.estimate_total() == 0.0


class TestOverlapJoinStep:
    def test_reduces_to_ph_join(self):
        from repro.estimation.phjoin import ph_join

        grid = GridSpec(3, 29)
        anc_hist = PositionHistogram.from_cells(grid, {(0, 2): 3})
        child_hist = PositionHistogram.from_cells(grid, {(1, 1): 5})
        estimator = make_estimator(
            {"A": anc_hist, "B": child_hist}, {}, grid_size=3
        )
        joined = estimator._join_overlap(
            estimator._leaf_state(_node("A")), estimator._leaf_state(_node("B"))
        )
        assert joined.estimate_total() == pytest.approx(
            ph_join(anc_hist, child_hist).value
        )
        # Overlap participation equals the estimate (Fig. 10 case 1).
        assert joined.participation[0, 2] == pytest.approx(15.0)
        assert joined.join_factor[0, 2] == 1.0
        assert joined.coverage is None


class TestZeroHook:
    def test_hook_short_circuits_join(self):
        grid = GridSpec(2, 19)
        anc_hist = PositionHistogram.from_cells(grid, {(0, 1): 2})
        child_hist = PositionHistogram.from_cells(grid, {(1, 1): 8})
        estimator = TwigEstimator(
            histogram_provider=lambda p: {"A": anc_hist, "B": child_hist}[p.name],
            coverage_provider=lambda p: None,
            grid_size=2,
            zero_hook=lambda anc, child: True,
        )
        from repro.query.pattern import PatternNode, PatternTree

        root = PatternNode(_Pred("A"))
        root.add_child(_Pred("B"))
        result = estimator.estimate(PatternTree(root))
        assert result.value == 0.0


class _Pred:
    """Minimal predicate stand-in keyed by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other) -> bool:
        return isinstance(other, _Pred) and other.name == self.name


def _node(name: str):
    from repro.query.pattern import PatternNode

    return PatternNode(_Pred(name))
