"""Twig cascade estimator unit tests."""

import pytest

from repro.estimation.estimator import AnswerSizeEstimator
from repro.query.pattern import PatternTree
from repro.query.xpath import parse_xpath


class TestReducesToPairwise:
    def test_two_node_twig_matches_pairwise_no_overlap(self, dblp_estimator):
        """For a primitive pattern the cascade must reproduce the
        pairwise no-overlap estimate exactly."""
        pattern = parse_xpath("//article//author")
        cascade = dblp_estimator.twig_estimator().estimate(pattern).value
        pairwise = dblp_estimator.estimate_pair(
            pattern.root.predicate,
            pattern.root.children[0].predicate,
            method="no-overlap",
        ).value
        assert cascade == pytest.approx(pairwise, rel=1e-9)

    def test_two_node_twig_matches_pairwise_overlap(self, orgchart_estimator):
        pattern = parse_xpath("//department//employee")
        cascade = orgchart_estimator.twig_estimator().estimate(pattern).value
        pairwise = orgchart_estimator.estimate_pair(
            pattern.root.predicate,
            pattern.root.children[0].predicate,
            method="ph-join",
        ).value
        assert cascade == pytest.approx(pairwise, rel=1e-9)


class TestThreeNodeTwigs:
    @pytest.mark.parametrize(
        "xpath",
        [
            "//article[.//author]//year",
            "//article[.//author]//cite",
            "//inproceedings[.//author]//title",
        ],
    )
    def test_dblp_branching_twig_reasonable(self, dblp_estimator, xpath):
        pattern = parse_xpath(xpath)
        estimate = dblp_estimator.estimate(pattern).value
        real = dblp_estimator.real_answer(pattern)
        assert real > 0
        # Within a factor of 3 -- far tighter than the naive product,
        # which is off by orders of magnitude for these queries.
        assert real / 3 <= estimate <= real * 3

    def test_path_twig_reasonable(self, dblp_estimator):
        pattern = parse_xpath("//dblp//article//author")
        estimate = dblp_estimator.estimate(pattern).value
        real = dblp_estimator.real_answer(pattern)
        assert real / 3 <= estimate <= real * 3

    def test_orgchart_recursive_twig(self, orgchart_estimator):
        pattern = parse_xpath("//manager//department//employee")
        estimate = orgchart_estimator.estimate(pattern).value
        real = orgchart_estimator.real_answer(pattern)
        assert real > 0
        naive = 1.0
        for node in pattern.nodes():
            naive *= orgchart_estimator.catalog.stats(node.predicate).count
        # The cascade must be much closer (log-scale) than naive.
        import math

        assert abs(math.log10(max(estimate, 1e-9) / real)) < abs(
            math.log10(naive / real)
        )


class TestFourNodeTwig:
    def test_intro_style_twig(self, orgchart_estimator):
        """The paper's introductory query shape:
        department/faculty[TA][RA] transposed to the orgchart schema."""
        pattern = parse_xpath("//manager//department[.//employee]//email")
        estimate = orgchart_estimator.estimate(pattern).value
        real = orgchart_estimator.real_answer(pattern)
        assert estimate > 0
        assert real > 0
        import math

        assert abs(math.log10(estimate / real)) < 1.0  # within 10x

    def test_branching_at_root(self, dblp_estimator):
        pattern = parse_xpath("//article[.//author][.//year]//cite")
        estimate = dblp_estimator.estimate(pattern).value
        real = dblp_estimator.real_answer(pattern)
        assert estimate > 0 and real > 0


class TestMonotonicity:
    def test_adding_branch_never_increases_estimate(self, dblp_estimator):
        """Adding a filter branch can only reduce (or keep) matches per
        root; estimates should not explode when constraints are added."""
        loose = dblp_estimator.estimate(parse_xpath("//article//cite")).value
        tight = dblp_estimator.estimate(
            parse_xpath("//article[.//cdrom]//cite")
        ).value
        assert tight <= loose * 1.05

    def test_zero_when_branch_impossible(self, dblp_estimator):
        pattern = parse_xpath("//article[.//nonexistent]//author")
        assert dblp_estimator.estimate(pattern).value == 0.0


class TestRootState:
    def test_root_state_exposes_per_cell(self, dblp_estimator):
        pattern = parse_xpath("//article[.//author]//year")
        state = dblp_estimator.twig_estimator().root_state(pattern)
        assert state.participation.shape == (10, 10)
        total = state.estimate_total()
        assert total == pytest.approx(
            dblp_estimator.estimate(pattern).value, rel=1e-9
        )

    def test_participation_bounded_by_predicate_count(self, dblp_estimator):
        pattern = parse_xpath("//article//author")
        state = dblp_estimator.twig_estimator().root_state(pattern)
        article_count = dblp_estimator.catalog.stats(
            pattern.root.predicate
        ).count
        assert state.participation.sum() <= article_count + 1e-6
