"""Batched estimation API: estimate_many and the shared catalog scans."""

import numpy as np
import pytest

from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import ContentEqualsPredicate, TagPredicate, TruePredicate
from repro.predicates.catalog import PredicateCatalog

WORKLOAD = [
    "//article//author",
    "//article//cite",
    "//inproceedings//author",
    "//article//author",  # duplicate: must share the result object
    "//article[.//cdrom]//author",
    "//lecturer/TA",
]


class TestEstimateMany:
    def test_matches_sequential_estimates(self, dblp_tree):
        batch_est = AnswerSizeEstimator(dblp_tree, grid_size=10)
        seq_est = AnswerSizeEstimator(dblp_tree, grid_size=10)
        queries = [q for q in WORKLOAD if "lecturer" not in q]
        batch = batch_est.estimate_many(queries)
        for query, result in zip(queries, batch):
            assert result.value == pytest.approx(
                seq_est.estimate(query).value, rel=1e-12
            ), query

    def test_duplicates_share_results(self, dblp_estimator):
        results = dblp_estimator.estimate_many(WORKLOAD)
        assert len(results) == len(WORKLOAD)
        assert results[0] is results[3]

    def test_child_axis_routed(self, paper_tree):
        estimator = AnswerSizeEstimator(paper_tree, grid_size=2)
        (result,) = estimator.estimate_many(["//lecturer/TA"])
        assert result.method == "ph-join-child"

    def test_empty_workload(self, dblp_estimator):
        assert dblp_estimator.estimate_many([]) == []

    def test_same_name_predicates_not_merged(self, dblp_tree):
        """Dedup keys on predicate identity, not display names: a tag
        predicate and a content predicate can both be named 'author'."""
        from repro.query.pattern import PatternTree

        article = TagPredicate("article")
        by_tag = PatternTree.simple_pair(article, TagPredicate("author"))
        by_text = PatternTree.simple_pair(article, ContentEqualsPredicate("author"))
        assert by_tag.to_xpath() == by_text.to_xpath()  # the collision
        estimator = AnswerSizeEstimator(dblp_tree, grid_size=10)
        tag_result, text_result = estimator.estimate_many([by_tag, by_text])
        assert tag_result is not text_result
        reference = AnswerSizeEstimator(dblp_tree, grid_size=10)
        assert tag_result.value == pytest.approx(
            reference.estimate(by_tag).value, rel=1e-12
        )
        assert text_result.value == pytest.approx(
            reference.estimate(by_text).value, rel=1e-12
        )

    def test_precomputed_matches_ph_join(self, orgchart_tree):
        """Overlap ancestors route through cached coefficients; the
        value must be bit-identical to the per-query pH-join."""
        batch_est = AnswerSizeEstimator(orgchart_tree, grid_size=10)
        seq_est = AnswerSizeEstimator(orgchart_tree, grid_size=10)
        query = "//department//email"
        assert not seq_est.is_no_overlap(TagPredicate("department"))
        (batched,) = batch_est.estimate_many([query])
        sequential = seq_est.estimate(query)
        assert batched.value == sequential.value
        assert TagPredicate("email") in batch_est._coefficient_cache


class TestRegisterMany:
    def test_matches_individual_registration(self, dblp_tree):
        predicates = [
            TagPredicate("article"),
            TagPredicate("author"),
            ContentEqualsPredicate("1995", tag="year"),
            TruePredicate(),
        ]
        batch_catalog = PredicateCatalog(dblp_tree)
        batch_stats = batch_catalog.register_many(predicates)
        seq_catalog = PredicateCatalog(dblp_tree)
        for predicate, stats in zip(predicates, batch_stats):
            expected = seq_catalog.register(predicate)
            assert np.array_equal(stats.node_indices, expected.node_indices)
            assert stats.count == expected.count
            assert stats.no_overlap == expected.no_overlap

    def test_shared_full_scan_pass(self, dblp_tree):
        """Multiple non-tag-scoped predicates are resolved in one fused
        element pass and still produce exact index lists."""
        predicates = [TruePredicate(), ContentEqualsPredicate("1995")]
        catalog = PredicateCatalog(dblp_tree)
        stats = catalog.register_many(predicates)
        assert stats[0].count == len(dblp_tree)
        reference = [
            i
            for i, e in enumerate(dblp_tree.elements)
            if predicates[1].matches(e)
        ]
        assert stats[1].node_indices.tolist() == reference

    def test_idempotent(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        first = catalog.register_many([TagPredicate("article")])
        second = catalog.register_many([TagPredicate("article")])
        assert first[0] is second[0]

    def test_accepts_generator_input(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        stats = catalog.register_many(
            TagPredicate(tag) for tag in ("article", "author")
        )
        assert [s.predicate.name for s in stats] == ["article", "author"]
        assert all(s.count > 0 for s in stats)


class TestDenseReadOnly:
    def test_dense_rejects_mutation(self, dblp_estimator):
        dense = dblp_estimator.position_histogram(TagPredicate("article")).dense()
        with pytest.raises(ValueError):
            dense[0, 0] = 99.0
