"""Schema shortcut tests (paper Section 4, first paragraph).

"If we know that no node that satisfies P2 can be a descendant of a
node that satisfies P1, then the estimate ... is simply zero -- there
is no need to compute histograms.  Similarly, if we know that each
element with tag author must have a parent element with tag book, then
the number of pairs ... is exactly equal to the number of author
elements."
"""

import pytest

from repro.datasets.generator import DtdGenerator
from repro.dtd import analyze_dtd, parse_dtd
from repro.estimation import AnswerSizeEstimator
from repro.labeling import label_document
from repro.predicates.base import TagPredicate

BOOK_DTD = """
<!ELEMENT library (book+, magazine*)>
<!ELEMENT book (title, author+)>
<!ELEMENT magazine (title)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
"""


@pytest.fixture(scope="module")
def book_estimator():
    declarations = parse_dtd(BOOK_DTD)
    schema = analyze_dtd(declarations)
    document = DtdGenerator(declarations, seed=3).generate("library")
    tree = label_document(document)
    return AnswerSizeEstimator(tree, grid_size=8, schema=schema)


class TestZeroShortcut:
    def test_schema_impossible_nesting_is_zero(self, book_estimator):
        result = book_estimator.estimate("//author//book")
        assert result.value == 0.0
        assert result.method == "schema-zero"
        assert book_estimator.real_answer("//author//book") == 0

    def test_no_overlap_self_join_is_zero_without_schema(self, dblp_estimator):
        result = dblp_estimator.estimate("//article//article")
        assert result.value == 0.0
        assert result.method == "schema-zero"

    def test_twig_with_impossible_branch_is_zero(self, book_estimator):
        result = book_estimator.estimate("//book[.//magazine]//author")
        assert result.value == 0.0
        assert book_estimator.real_answer("//book[.//magazine]//author") == 0

    def test_possible_nesting_not_zeroed(self, book_estimator):
        result = book_estimator.estimate("//book//author")
        assert result.value > 0


class TestExactShortcut:
    def test_sole_parent_gives_exact_count(self, book_estimator):
        result = book_estimator.estimate("//book//author")
        author_count = book_estimator.catalog.stats(TagPredicate("author")).count
        real = book_estimator.real_answer("//book//author")
        assert result.method == "schema-exact"
        assert result.value == author_count == real

    def test_shared_child_not_shortcut(self, book_estimator):
        """title appears under book and magazine: no sole parent, so the
        histogram path must run."""
        result = book_estimator.estimate("//book//title")
        assert result.method not in ("schema-exact", "schema-zero")

    def test_explicit_methods_bypass_shortcuts(self, book_estimator):
        """Raw estimator measurements must stay unaffected."""
        result = book_estimator.estimate_pair(
            TagPredicate("book"), TagPredicate("author"), method="ph-join"
        )
        assert result.method.startswith("ph-join")


class TestWorkloadImprovement:
    def test_impossible_random_twigs_now_zero(self, orgchart_tree):
        """The worst offenders of the robustness study (impossible
        nestings like employee//manager) become exact zeros once the
        orgchart schema is supplied."""
        from repro.datasets.orgchart import ORGCHART_DTD

        schema = analyze_dtd(parse_dtd(ORGCHART_DTD))
        estimator = AnswerSizeEstimator(orgchart_tree, grid_size=10, schema=schema)
        for query in (
            "//employee//manager",
            "//employee//department",
            "//email//name",
            "//employee//employee",
        ):
            result = estimator.estimate(query)
            assert result.value == 0.0, query
            assert estimator.real_answer(query) == 0, query
