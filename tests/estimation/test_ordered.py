"""Ordered-semantics estimator tests (following / preceding)."""

import numpy as np
import pytest

from repro.estimation.ordered import (
    count_following_pairs,
    following_coefficients,
    ph_join_following,
    ph_join_preceding,
)
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


def setup(tree, before_tag, after_tag, grid_size=10):
    catalog = PredicateCatalog(tree)
    grid = GridSpec(grid_size, tree.max_label)
    before = catalog.stats(TagPredicate(before_tag))
    after = catalog.stats(TagPredicate(after_tag))
    return (
        build_position_histogram(tree, before.node_indices, grid),
        build_position_histogram(tree, after.node_indices, grid),
        before.node_indices,
        after.node_indices,
    )


class TestExactCounter:
    def test_brute_force_agreement(self, paper_tree):
        _hb, _ha, before, after = setup(paper_tree, "faculty", "TA", 4)
        fast = count_following_pairs(paper_tree, before, after)
        brute = sum(
            1
            for u in before
            for v in after
            if paper_tree.end[u] < paper_tree.start[v]
        )
        assert fast == brute

    def test_empty_inputs(self, paper_tree):
        empty = np.array([], dtype=np.int64)
        some = np.array([0], dtype=np.int64)
        assert count_following_pairs(paper_tree, empty, some) == 0
        assert count_following_pairs(paper_tree, some, empty) == 0

    def test_asymmetry(self, paper_tree):
        """following(a, b) + following(b, a) + nesting pairs account for
        every cross pair (disjointness is exhaustive with nesting)."""
        from repro.query.matcher import count_pairs

        _hb, _ha, faculty, ta = setup(paper_tree, "faculty", "TA", 4)
        f_then_t = count_following_pairs(paper_tree, faculty, ta)
        t_then_f = count_following_pairs(paper_tree, ta, faculty)
        nested = count_pairs(paper_tree, faculty, ta) + count_pairs(
            paper_tree, ta, faculty
        )
        assert f_then_t + t_then_f + nested == len(faculty) * len(ta)


class TestCoefficients:
    def test_hand_computed(self):
        grid = GridSpec(3, 29)
        after = PositionHistogram.from_cells(grid, {(2, 2): 4, (1, 1): 2})
        coeff = following_coefficients(after.dense())
        # Anchor ending in bucket 0: everything follows.
        assert coeff[0, 0] == pytest.approx(6.0)
        # Anchor ending in bucket 1: bucket-2 mass (4) + half bucket-1 (1).
        assert coeff[0, 1] == pytest.approx(5.0)
        assert coeff[1, 1] == pytest.approx(5.0)
        # Anchor ending in bucket 2: half the bucket-2 mass.
        assert coeff[0, 2] == pytest.approx(2.0)
        assert coeff[2, 2] == pytest.approx(2.0)

    def test_lower_triangle_not_used(self):
        grid = GridSpec(3, 29)
        after = PositionHistogram.from_cells(grid, {(1, 1): 2})
        coeff = following_coefficients(after.dense())
        # coeff values exist for all (i <= j); anchors never occupy j < i.
        assert coeff.shape == (3, 3)


class TestEstimatesAgainstReal:
    @pytest.mark.parametrize(
        "before,after", [("article", "book"), ("book", "article"), ("cite", "cdrom")]
    )
    def test_dblp_following(self, dblp_tree, before, after):
        hb, ha, before_idx, after_idx = setup(dblp_tree, before, after)
        real = count_following_pairs(dblp_tree, before_idx, after_idx)
        estimate = ph_join_following(hb, ha).value
        assert estimate == pytest.approx(real, rel=0.25)

    def test_orgchart_following(self, orgchart_tree):
        hb, ha, before_idx, after_idx = setup(orgchart_tree, "employee", "email")
        real = count_following_pairs(orgchart_tree, before_idx, after_idx)
        estimate = ph_join_following(hb, ha).value
        assert real > 0
        assert estimate == pytest.approx(real, rel=0.35)

    def test_preceding_mirrors_following(self, dblp_tree):
        hb, ha, before_idx, after_idx = setup(dblp_tree, "article", "book")
        follow = ph_join_following(hb, ha).value
        precede = ph_join_preceding(ha, hb).value
        assert precede == pytest.approx(follow, rel=1e-12)

    def test_grid_mismatch_rejected(self, dblp_tree):
        hb, _ha, _b, _a = setup(dblp_tree, "article", "book", 10)
        other = PositionHistogram(GridSpec(5, dblp_tree.max_label))
        with pytest.raises(ValueError, match="grids"):
            ph_join_following(hb, other)

    def test_refinement_converges(self, dblp_tree):
        """Finer grids shrink the half-weight boundary mass, so the
        estimate converges toward the exact count."""
        errors = {}
        for g in (2, 10, 40):
            hb, ha, before_idx, after_idx = setup(dblp_tree, "article", "book", g)
            real = count_following_pairs(dblp_tree, before_idx, after_idx)
            estimate = ph_join_following(hb, ha).value
            errors[g] = abs(estimate - real) / max(real, 1)
        assert errors[40] <= errors[2] + 1e-9
