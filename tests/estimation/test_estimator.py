"""AnswerSizeEstimator facade unit tests."""

import pytest

from repro.estimation.estimator import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.query.pattern import PatternTree


class TestMethodRouting:
    def test_auto_uses_no_overlap_when_available(self, dblp_estimator):
        result = dblp_estimator.estimate_pair(
            TagPredicate("article"), TagPredicate("author"), method="auto"
        )
        assert result.method == "no-overlap"

    def test_auto_falls_back_to_ph_join(self, orgchart_estimator):
        result = orgchart_estimator.estimate_pair(
            TagPredicate("department"), TagPredicate("employee"), method="auto"
        )
        assert result.method.startswith("ph-join")

    def test_no_overlap_requires_property(self, orgchart_estimator):
        with pytest.raises(ValueError, match="no-overlap"):
            orgchart_estimator.estimate_pair(
                TagPredicate("department"),
                TagPredicate("employee"),
                method="no-overlap",
            )

    def test_unknown_method_rejected(self, dblp_estimator):
        with pytest.raises(ValueError, match="unknown"):
            dblp_estimator.estimate_pair(
                TagPredicate("article"), TagPredicate("author"), method="magic"
            )

    def test_naive_method(self, dblp_estimator):
        a = dblp_estimator.catalog.stats(TagPredicate("article")).count
        b = dblp_estimator.catalog.stats(TagPredicate("author")).count
        result = dblp_estimator.estimate_pair(
            TagPredicate("article"), TagPredicate("author"), method="naive"
        )
        assert result.value == pytest.approx(a * b)

    def test_upper_bound_method(self, dblp_estimator):
        b = dblp_estimator.catalog.stats(TagPredicate("author")).count
        result = dblp_estimator.estimate_pair(
            TagPredicate("article"), TagPredicate("author"), method="upper-bound"
        )
        assert result.value == b


class TestCaching:
    def test_position_histograms_cached(self, dblp_tree):
        estimator = AnswerSizeEstimator(dblp_tree, grid_size=10)
        first = estimator.position_histogram(TagPredicate("article"))
        second = estimator.position_histogram(TagPredicate("article"))
        assert first is second

    def test_true_histogram_cached(self, dblp_tree):
        estimator = AnswerSizeEstimator(dblp_tree, grid_size=10)
        assert estimator.true_histogram is estimator.true_histogram

    def test_coverage_none_for_overlap(self, orgchart_estimator):
        assert orgchart_estimator.coverage_histogram(
            TagPredicate("department")
        ) is None

    def test_coverage_built_for_no_overlap(self, dblp_estimator):
        coverage = dblp_estimator.coverage_histogram(TagPredicate("article"))
        assert coverage is not None
        assert coverage.entry_count() > 0


class TestQueryInterface:
    def test_accepts_xpath_strings(self, dblp_estimator):
        result = dblp_estimator.estimate("//article//author")
        assert result.value > 0

    def test_accepts_pattern_trees(self, dblp_estimator):
        pattern = PatternTree.path("article", "author")
        result = dblp_estimator.estimate(pattern)
        assert result.value > 0

    def test_real_answer_string_and_pattern_agree(self, dblp_estimator):
        via_string = dblp_estimator.real_answer("//article//author")
        via_pattern = dblp_estimator.real_answer(PatternTree.path("article", "author"))
        assert via_string == via_pattern

    def test_storage_bytes_report(self, dblp_estimator):
        report = dblp_estimator.storage_bytes(TagPredicate("article"))
        assert report["position"] > 0
        assert report["coverage"] > 0
        overlap_report = dblp_estimator.storage_bytes(TagPredicate("dblp"))
        assert overlap_report["position"] > 0

    def test_bad_grid_size_rejected(self, dblp_tree):
        with pytest.raises(ValueError):
            AnswerSizeEstimator(dblp_tree, grid_size=0)


class TestAccuracyContract:
    """End-to-end guarantees the library should keep: the paper's
    qualitative claims on its own data regimes."""

    @pytest.mark.parametrize(
        "anc,desc", [("article", "author"), ("article", "cite"), ("book", "cdrom")]
    )
    def test_dblp_auto_estimates_close(self, dblp_estimator, anc, desc):
        real = dblp_estimator.real_answer(f"//{anc}//{desc}")
        estimate = dblp_estimator.estimate(f"//{anc}//{desc}").value
        if real >= 20:
            assert estimate == pytest.approx(real, rel=0.3)
        else:
            assert abs(estimate - real) <= max(5, real)

    @pytest.mark.parametrize(
        "anc,desc",
        [("manager", "department"), ("manager", "employee"), ("department", "email")],
    )
    def test_orgchart_auto_estimates_close(self, orgchart_estimator, anc, desc):
        real = orgchart_estimator.real_answer(f"//{anc}//{desc}")
        estimate = orgchart_estimator.estimate(f"//{anc}//{desc}").value
        assert estimate == pytest.approx(real, rel=0.6)

    def test_estimation_is_fast(self, dblp_estimator):
        """The paper: 'a few tenths of a millisecond'.  Allow 10 ms on
        shared CI hardware -- still minuscule next to evaluation."""
        dblp_estimator.position_histogram(TagPredicate("article"))  # warm
        dblp_estimator.position_histogram(TagPredicate("author"))
        dblp_estimator.coverage_histogram(TagPredicate("article"))
        result = dblp_estimator.estimate_pair(
            TagPredicate("article"), TagPredicate("author")
        )
        assert result.elapsed_seconds is not None
        assert result.elapsed_seconds < 0.010
