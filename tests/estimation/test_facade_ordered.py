"""Facade-level ordered-semantics tests."""

import pytest

from repro.predicates.base import TagPredicate


class TestEstimateFollowing:
    def test_against_exact(self, dblp_estimator):
        before, after = TagPredicate("article"), TagPredicate("book")
        estimate = dblp_estimator.estimate_following(before, after)
        real = dblp_estimator.real_following(before, after)
        assert estimate.method == "following"
        assert estimate.value == pytest.approx(real, rel=0.25)

    def test_siblings_on_paper_example(self, paper_estimator):
        staff, lecturer = TagPredicate("staff"), TagPredicate("lecturer")
        # Fig. 1 order: ... staff ... lecturer ... -> exactly 1 pair.
        assert paper_estimator.real_following(staff, lecturer) == 1
        assert paper_estimator.real_following(lecturer, staff) == 0
        estimate = paper_estimator.estimate_following(staff, lecturer)
        assert 0.0 <= estimate.value <= 2.0

    def test_nested_pairs_never_follow(self, dblp_estimator):
        """A record and its own author nest, so following counts only
        cross-record pairs; the total must be below the full product."""
        article, author = TagPredicate("article"), TagPredicate("author")
        real = dblp_estimator.real_following(article, author)
        product = (
            dblp_estimator.catalog.stats(article).count
            * dblp_estimator.catalog.stats(author).count
        )
        nested = dblp_estimator.real_answer("//article//author")
        assert real < product
        assert real + nested <= product
        estimate = dblp_estimator.estimate_following(article, author)
        assert estimate.value == pytest.approx(real, rel=0.2)
