"""No-overlap estimator unit tests (paper Section 4, Fig. 10)."""

import numpy as np
import pytest

from repro.estimation.nooverlap import (
    join_factor,
    no_overlap_estimate,
    participation_ancestor,
    participation_descendant,
    propagate_coverage,
)
from repro.estimation.phjoin import ph_join
from repro.histograms.coverage import CoverageHistogram, build_coverage_histogram
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.histograms.truehist import build_true_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


def setup_pair(tree, anc_tag, desc_tag, grid_size):
    grid = GridSpec(grid_size, tree.max_label)
    catalog = PredicateCatalog(tree)
    anc_stats = catalog.stats(TagPredicate(anc_tag))
    desc_stats = catalog.stats(TagPredicate(desc_tag))
    true_hist = build_true_histogram(tree, grid)
    hist_anc = build_position_histogram(tree, anc_stats.node_indices, grid)
    hist_desc = build_position_histogram(tree, desc_stats.node_indices, grid)
    coverage = build_coverage_histogram(tree, anc_stats.node_indices, true_hist)
    return hist_anc, hist_desc, coverage, catalog


class TestPaperWorkedExample:
    def test_faculty_ta_close_to_real(self, paper_tree):
        """Paper Fig. 8 narrative: no-overlap estimate 1.9 vs real 2."""
        hist_anc, hist_desc, coverage, _catalog = setup_pair(
            paper_tree, "faculty", "TA", 2
        )
        estimate = no_overlap_estimate(hist_anc, coverage, hist_desc)
        assert 1.5 <= estimate.value <= 2.4
        # Dramatically better than both naive (15) and pH-join (~0.5).
        ph = ph_join(hist_anc, hist_desc).value
        assert abs(estimate.value - 2) < abs(ph - 2)

    def test_never_exceeds_descendant_count(self, paper_tree):
        """Upper bound: each descendant joins at most one no-overlap
        ancestor, so the estimate can't exceed |descendants|."""
        for g in (2, 4, 8):
            hist_anc, hist_desc, coverage, _ = setup_pair(
                paper_tree, "faculty", "TA", g
            )
            estimate = no_overlap_estimate(hist_anc, coverage, hist_desc)
            assert estimate.value <= hist_desc.total() + 1e-9


class TestExactnessOnSeparatedData:
    def test_exact_when_predicates_align_with_cells(self):
        """When every descendant of a cell is a predicate descendant,
        coverage is exact and so is the estimate."""
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram.from_cells(grid, {(0, 0): 1})
        hist_desc = PositionHistogram.from_cells(grid, {(0, 0): 4})
        coverage = CoverageHistogram(grid, {(0, 0, 0, 0): 1.0})
        estimate = no_overlap_estimate(hist_anc, coverage, hist_desc)
        assert estimate.value == pytest.approx(4.0)

    def test_fractional_coverage_scales_linearly(self):
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram.from_cells(grid, {(0, 1): 2})
        hist_desc = PositionHistogram.from_cells(grid, {(1, 1): 10})
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.3})
        estimate = no_overlap_estimate(hist_anc, coverage, hist_desc)
        assert estimate.value == pytest.approx(3.0)

    def test_unpopulated_ancestor_cells_skipped(self):
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram(grid)  # no ancestors participate
        hist_desc = PositionHistogram.from_cells(grid, {(1, 1): 10})
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.5})
        estimate = no_overlap_estimate(hist_anc, coverage, hist_desc)
        assert estimate.value == 0.0

    def test_join_factors_multiply(self):
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram.from_cells(grid, {(0, 1): 2})
        hist_desc = PositionHistogram.from_cells(grid, {(1, 1): 10})
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.3})
        anc_jf = np.zeros((2, 2))
        anc_jf[0, 1] = 2.0
        desc_jf = np.ones((2, 2)) * 3.0
        estimate = no_overlap_estimate(
            hist_anc, coverage, hist_desc,
            ancestor_join_factor=anc_jf,
            descendant_join_factor=desc_jf,
        )
        assert estimate.value == pytest.approx(3.0 * 2.0 * 3.0)


class TestDblpQueries:
    """The Table 2 regime: no-overlap estimates should be within ~20% of
    the real answer, pH-join much worse, naive absurd."""

    @pytest.mark.parametrize(
        "anc,desc",
        [("article", "author"), ("article", "cite"), ("article", "cdrom")],
    )
    def test_no_overlap_beats_ph_join(self, dblp_estimator, anc, desc):
        pa, pd = TagPredicate(anc), TagPredicate(desc)
        real = dblp_estimator.real_answer(f"//{anc}//{desc}")
        nov = dblp_estimator.estimate_pair(pa, pd, method="no-overlap").value
        ph = dblp_estimator.estimate_pair(pa, pd, method="ph-join").value
        assert abs(nov - real) < abs(ph - real)
        assert nov == pytest.approx(real, rel=0.25)


class TestParticipation:
    def test_ancestor_participation_bounded_by_count(self):
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram.from_cells(grid, {(0, 1): 5})
        hist_desc = PositionHistogram.from_cells(grid, {(1, 1): 100})
        part = participation_ancestor(hist_anc, hist_desc)
        assert 0 < part[0, 1] <= 5.0
        # With many descendants, almost all ancestors participate.
        assert part[0, 1] > 4.9

    def test_ancestor_participation_occupancy_formula(self):
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram.from_cells(grid, {(0, 1): 4})
        hist_desc = PositionHistogram.from_cells(grid, {(0, 0): 3})
        part = participation_ancestor(hist_anc, hist_desc)
        expected = 4 * (1 - (3 / 4) ** 3)
        assert part[0, 1] == pytest.approx(expected)

    def test_single_ancestor_participates_fully(self):
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram.from_cells(grid, {(0, 1): 1})
        hist_desc = PositionHistogram.from_cells(grid, {(1, 1): 2})
        part = participation_ancestor(hist_anc, hist_desc)
        assert part[0, 1] == pytest.approx(1.0)

    def test_no_descendants_no_participation(self):
        grid = GridSpec(2, 19)
        hist_anc = PositionHistogram.from_cells(grid, {(0, 1): 5})
        part = participation_ancestor(hist_anc, PositionHistogram(grid))
        assert part[0, 1] == 0.0

    def test_descendant_participation_sums_coverage(self):
        grid = GridSpec(2, 19)
        hist_desc = PositionHistogram.from_cells(grid, {(1, 1): 10})
        hist_anc = PositionHistogram.from_cells(grid, {(0, 1): 2})
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.4})
        part = participation_descendant(hist_desc, hist_anc, coverage)
        assert part[1, 1] == pytest.approx(4.0)

    def test_descendant_participation_ignores_empty_ancestor_cells(self):
        grid = GridSpec(2, 19)
        hist_desc = PositionHistogram.from_cells(grid, {(1, 1): 10})
        hist_anc = PositionHistogram(grid)
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.4})
        part = participation_descendant(hist_desc, hist_anc, coverage)
        assert part[1, 1] == 0.0


class TestJoinFactorAndPropagation:
    def test_join_factor_divides_where_positive(self):
        est = np.array([[0.0, 6.0], [0.0, 0.0]])
        part = np.array([[0.0, 3.0], [0.0, 0.0]])
        jf = join_factor(est, part)
        assert jf[0, 1] == pytest.approx(2.0)
        assert jf[0, 0] == 0.0

    def test_propagate_coverage_scales_by_participation_ratio(self):
        grid = GridSpec(2, 19)
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.8})
        original = PositionHistogram.from_cells(grid, {(0, 1): 4})
        participation = np.zeros((2, 2))
        participation[0, 1] = 2.0  # half the ancestors survive
        scaled = propagate_coverage(coverage, participation, original)
        assert scaled.coverage(1, 1, 0, 1) == pytest.approx(0.4)

    def test_propagate_coverage_clamps_to_one(self):
        grid = GridSpec(2, 19)
        coverage = CoverageHistogram(grid, {(1, 1, 0, 1): 0.9})
        original = PositionHistogram.from_cells(grid, {(0, 1): 1})
        participation = np.zeros((2, 2))
        participation[0, 1] = 2.0  # numerically above the original
        scaled = propagate_coverage(coverage, participation, original)
        assert scaled.coverage(1, 1, 0, 1) == 1.0


class TestGridValidation:
    def test_grid_mismatch_rejected(self):
        a = PositionHistogram.from_cells(GridSpec(2, 19), {(0, 1): 1})
        b = PositionHistogram.from_cells(GridSpec(3, 19), {(0, 1): 1})
        coverage = CoverageHistogram(GridSpec(2, 19))
        with pytest.raises(ValueError, match="different grids"):
            no_overlap_estimate(a, coverage, b)

    def test_coverage_grid_mismatch_rejected(self):
        grid = GridSpec(2, 19)
        a = PositionHistogram.from_cells(grid, {(0, 1): 1})
        coverage = CoverageHistogram(GridSpec(3, 19))
        with pytest.raises(ValueError, match="coverage"):
            no_overlap_estimate(a, coverage, a)
