"""pH-join estimator unit tests (paper Figs. 6 and 9).

The key cross-checks: the literal Fig. 9 transcription, the vectorised
estimator, and the O(g^4) first-principles reference must agree exactly;
and all must reproduce the paper's worked example.
"""

import numpy as np
import pytest

from repro.estimation.phjoin import (
    ancestor_based_coefficients,
    descendant_based_coefficients,
    ph_join,
    ph_join_literal,
    reference_region_estimate,
)
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


def hist(grid: GridSpec, cells) -> PositionHistogram:
    return PositionHistogram.from_cells(grid, cells)


class TestThreeImplementationsAgree:
    def make_pair(self, seed: int, g: int = 8):
        """Random upper-triangular histograms (not necessarily Lemma-1
        valid -- the estimators are defined on any histogram)."""
        rng = np.random.default_rng(seed)
        grid = GridSpec(g, 1000)
        cells_a, cells_b = {}, {}
        for i in range(g):
            for j in range(i, g):
                if rng.random() < 0.4:
                    cells_a[(i, j)] = float(rng.integers(1, 20))
                if rng.random() < 0.4:
                    cells_b[(i, j)] = float(rng.integers(1, 20))
        return hist(grid, cells_a), hist(grid, cells_b)

    @pytest.mark.parametrize("seed", range(8))
    def test_literal_equals_vectorised_ancestor(self, seed):
        a, b = self.make_pair(seed)
        literal = ph_join_literal(a, b)
        fast = ph_join(a, b, based="ancestor")
        assert fast.value == pytest.approx(literal.value, rel=1e-12, abs=1e-12)
        np.testing.assert_allclose(fast.per_cell, literal.per_cell, atol=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_reference_equals_vectorised_ancestor(self, seed):
        a, b = self.make_pair(seed)
        reference = reference_region_estimate(a, b, based="ancestor")
        fast = ph_join(a, b, based="ancestor")
        assert fast.value == pytest.approx(reference.value, rel=1e-12, abs=1e-12)
        np.testing.assert_allclose(fast.per_cell, reference.per_cell, atol=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_reference_equals_vectorised_descendant(self, seed):
        a, b = self.make_pair(seed)
        reference = reference_region_estimate(a, b, based="descendant")
        fast = ph_join(a, b, based="descendant")
        assert fast.value == pytest.approx(reference.value, rel=1e-12, abs=1e-12)
        np.testing.assert_allclose(fast.per_cell, reference.per_cell, atol=1e-9)


class TestHandComputedCases:
    def test_single_cell_on_diagonal(self):
        grid = GridSpec(2, 9)
        a = hist(grid, {(0, 0): 6})
        b = hist(grid, {(0, 0): 4})
        # On-diagonal self weight: 1/12.
        assert ph_join(a, b).value == pytest.approx(6 * 4 / 12)

    def test_single_cell_off_diagonal(self):
        grid = GridSpec(3, 29)
        a = hist(grid, {(0, 2): 6})
        b = hist(grid, {(0, 2): 4})
        # Off-diagonal self weight: 1/4.
        assert ph_join(a, b).value == pytest.approx(6 * 4 / 4)

    def test_strict_inside_weight_one(self):
        grid = GridSpec(3, 29)
        a = hist(grid, {(0, 2): 2})
        b = hist(grid, {(1, 1): 5})
        assert ph_join(a, b).value == pytest.approx(2 * 5)

    def test_diagonal_boundary_weight_half(self):
        grid = GridSpec(3, 29)
        a = hist(grid, {(0, 2): 2})
        low = hist(grid, {(0, 0): 5})   # region F
        high = hist(grid, {(2, 2): 5})  # region D
        assert ph_join(a, low).value == pytest.approx(2 * 5 / 2)
        assert ph_join(a, high).value == pytest.approx(2 * 5 / 2)

    def test_same_column_and_row_weight_one(self):
        grid = GridSpec(4, 39)
        a = hist(grid, {(0, 3): 2})
        col = hist(grid, {(0, 1): 5})  # region E (off-diagonal)
        row = hist(grid, {(2, 3): 5})  # region C (off-diagonal)
        assert ph_join(a, col).value == pytest.approx(2 * 5)
        assert ph_join(a, row).value == pytest.approx(2 * 5)

    def test_unrelated_cells_contribute_nothing(self):
        grid = GridSpec(4, 39)
        a = hist(grid, {(1, 2): 3})
        outside = hist(grid, {(3, 3): 7})
        assert ph_join(a, outside).value == 0.0

    def test_ancestor_cells_contribute_nothing_ancestor_based(self):
        grid = GridSpec(4, 39)
        a = hist(grid, {(1, 2): 3})
        enclosing = hist(grid, {(0, 3): 7})
        assert ph_join(a, enclosing).value == 0.0

    def test_descendant_based_counts_enclosing(self):
        grid = GridSpec(4, 39)
        anc = hist(grid, {(0, 3): 7})
        desc = hist(grid, {(1, 2): 3})
        result = ph_join(anc, desc, based="descendant")
        assert result.value == pytest.approx(3 * 7)


class TestPaperWorkedExample:
    """Fig. 7: the faculty//TA query on the Fig. 1 document with a 2x2
    grid.  Paper reports estimate 0.6 against real 2 (the exact value
    depends on the label assignment; ours gives 0.5 -- same regime).
    """

    def test_example_estimate_in_paper_regime(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        grid = GridSpec(2, paper_tree.max_label)
        faculty = build_position_histogram(
            paper_tree, catalog.stats(TagPredicate("faculty")).node_indices, grid
        )
        ta = build_position_histogram(
            paper_tree, catalog.stats(TagPredicate("TA")).node_indices, grid
        )
        estimate = ph_join(faculty, ta).value
        assert 0.2 <= estimate <= 1.5
        # Hugely better than the naive product (15).
        assert abs(estimate - 2) < abs(15 - 2)

    def test_refinement_improves_estimate(self, paper_tree):
        """The paper: "by refining the histogram to use more buckets, we
        can get a more accurate estimate"."""
        catalog = PredicateCatalog(paper_tree)
        errors = {}
        for g in (1, 2, 8, 32):
            grid = GridSpec(g, paper_tree.max_label)
            faculty = build_position_histogram(
                paper_tree, catalog.stats(TagPredicate("faculty")).node_indices, grid
            )
            ta = build_position_histogram(
                paper_tree, catalog.stats(TagPredicate("TA")).node_indices, grid
            )
            errors[g] = abs(ph_join(faculty, ta).value - 2.0)
        # Convergence is not monotone cell-by-cell on a 60-label toy
        # document, but the finest grid must beat the coarsest and land
        # close to the true answer.
        assert errors[32] <= errors[1]
        assert errors[32] <= 1.0


class TestCoefficients:
    def test_coefficients_depend_only_on_inner_operand(self):
        grid = GridSpec(5, 49)
        b = hist(grid, {(0, 1): 3, (1, 2): 4, (2, 2): 5})
        coeff = ancestor_based_coefficients(b.dense())
        for a_cells in [{(0, 4): 1}, {(1, 3): 2, (0, 0): 7}]:
            a = hist(grid, a_cells)
            expected = float((a.dense() * coeff).sum())
            assert ph_join(a, b).value == pytest.approx(expected)

    def test_descendant_coefficients_shape(self):
        grid = GridSpec(4, 39)
        anc = hist(grid, {(0, 3): 2})
        coeff = descendant_based_coefficients(anc.dense())
        assert coeff.shape == (4, 4)
        # Cell (1, 2) strictly inside (0, 3): coefficient = full count.
        assert coeff[1, 2] == pytest.approx(2.0)
        # Lower triangle zeroed.
        assert coeff[2, 1] == 0.0


class TestErrorsAndEdges:
    def test_grid_mismatch_rejected(self):
        a = hist(GridSpec(4, 39), {(0, 1): 1})
        b = hist(GridSpec(5, 39), {(0, 1): 1})
        with pytest.raises(ValueError, match="different grids"):
            ph_join(a, b)

    def test_invalid_based_rejected(self):
        grid = GridSpec(3, 29)
        a = hist(grid, {(0, 1): 1})
        with pytest.raises(ValueError, match="based"):
            ph_join(a, a, based="sideways")

    def test_empty_histograms(self):
        grid = GridSpec(3, 29)
        empty = PositionHistogram(grid)
        full = hist(grid, {(0, 2): 5})
        assert ph_join(empty, full).value == 0.0
        assert ph_join(full, empty).value == 0.0

    def test_grid_size_one(self):
        grid = GridSpec(1, 9)
        a = hist(grid, {(0, 0): 6})
        b = hist(grid, {(0, 0): 12})
        assert ph_join(a, b).value == pytest.approx(6 * 12 / 12)
        assert ph_join_literal(a, b).value == pytest.approx(6.0)

    def test_timing_recorded(self):
        grid = GridSpec(3, 29)
        a = hist(grid, {(0, 2): 5})
        result = ph_join(a, a)
        assert result.elapsed_seconds is not None
        assert result.elapsed_seconds >= 0.0
