"""EstimationResult value-object tests."""

import numpy as np
import pytest

from repro.estimation.result import EstimationResult


class TestRatioTo:
    def test_normal_ratio(self):
        result = EstimationResult(value=150.0, method="ph-join")
        assert result.ratio_to(100.0) == pytest.approx(1.5)

    def test_zero_real_zero_estimate(self):
        assert EstimationResult(0.0, "naive").ratio_to(0.0) == 1.0

    def test_zero_real_nonzero_estimate(self):
        assert EstimationResult(3.0, "naive").ratio_to(0.0) == float("inf")


class TestStr:
    def test_with_timing(self):
        result = EstimationResult(1234.5, "no-overlap", elapsed_seconds=0.000321)
        text = str(result)
        assert "1,234.5" in text
        assert "no-overlap" in text
        assert "0.000321" in text

    def test_without_timing(self):
        text = str(EstimationResult(2.0, "naive"))
        assert "naive" in text
        assert "s]" not in text

    def test_per_cell_not_in_repr(self):
        result = EstimationResult(
            1.0, "ph-join", per_cell=np.ones((10, 10))
        )
        assert "per_cell" not in repr(result) or "array" not in repr(result)


class TestPerCell:
    def test_per_cell_sums_to_value(self, dblp_estimator):
        from repro.predicates.base import TagPredicate

        result = dblp_estimator.estimate_pair(
            TagPredicate("article"), TagPredicate("author"), method="ph-join"
        )
        assert result.per_cell is not None
        assert float(result.per_cell.sum()) == pytest.approx(result.value)
