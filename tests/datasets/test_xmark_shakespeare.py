"""Robustness data sets: XMark-like and Shakespeare-like generators.

The paper reports results on these corpora were "substantially similar"
to DBLP; these tests confirm our estimators behave on them too.
"""

from collections import Counter

import pytest

from repro.datasets import generate_shakespeare, generate_xmark
from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


class TestXmarkStructure:
    def test_parlist_recursion_gives_overlap(self, xmark_tree):
        catalog = PredicateCatalog(xmark_tree)
        assert not catalog.stats(TagPredicate("parlist")).no_overlap
        assert not catalog.stats(TagPredicate("listitem")).no_overlap

    def test_catalog_tags_no_overlap(self, xmark_tree):
        catalog = PredicateCatalog(xmark_tree)
        for tag in ("item", "person", "open_auction", "bidder"):
            assert catalog.stats(TagPredicate(tag)).no_overlap, tag

    def test_expected_sections(self, xmark_tree):
        counts = Counter(e.tag for e in xmark_tree.elements)
        assert counts["site"] == 1
        assert counts["item"] > 0
        assert counts["person"] > 0
        assert counts["open_auction"] > 0

    def test_determinism(self):
        a = generate_xmark(seed=23, scale=0.2)
        b = generate_xmark(seed=23, scale=0.2)
        assert [e.tag for e in a.iter_elements()] == [
            e.tag for e in b.iter_elements()
        ]

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            generate_xmark(scale=0)


class TestShakespeareStructure:
    def test_hierarchy_depth(self, shakespeare_tree):
        # PLAYS / PLAY / ACT / SCENE / SPEECH / LINE
        assert int(shakespeare_tree.level.max()) == 6

    def test_every_tag_no_overlap(self, shakespeare_tree):
        catalog = PredicateCatalog(shakespeare_tree)
        for stats in catalog.register_all_tags():
            assert stats.no_overlap, stats.predicate.name

    def test_speech_structure(self, shakespeare_tree):
        for speech in (
            e for e in shakespeare_tree.elements if e.tag == "SPEECH"
        ):
            tags = [c.tag for c in speech.child_elements()]
            assert tags[0] == "SPEAKER"
            assert all(t == "LINE" for t in tags[1:])

    def test_plays_validation(self):
        with pytest.raises(ValueError):
            generate_shakespeare(plays=0)


class TestEstimatorsOnRobustnessSets:
    @pytest.mark.parametrize(
        "anc,desc", [("ACT", "LINE"), ("SCENE", "SPEAKER"), ("PLAY", "SPEECH")]
    )
    def test_shakespeare_estimates(self, shakespeare_tree, anc, desc):
        estimator = AnswerSizeEstimator(shakespeare_tree, grid_size=10)
        real = estimator.real_answer(f"//{anc}//{desc}")
        estimate = estimator.estimate(f"//{anc}//{desc}").value
        assert estimate == pytest.approx(real, rel=0.4)

    @pytest.mark.parametrize(
        "anc,desc", [("item", "text"), ("parlist", "text"), ("person", "emailaddress")]
    )
    def test_xmark_estimates(self, xmark_tree, anc, desc):
        estimator = AnswerSizeEstimator(xmark_tree, grid_size=10)
        real = estimator.real_answer(f"//{anc}//{desc}")
        estimate = estimator.estimate(f"//{anc}//{desc}").value
        assert real > 0
        # parlist recursion is harder; stay within a factor of 2.5.
        assert real / 2.5 <= estimate <= real * 2.5
