"""DTD-driven generator tests: output must conform to the DTD."""

import pytest

from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.dtd.analyzer import analyze_dtd
from repro.dtd.parser import parse_dtd

SIMPLE_DTD = """
<!ELEMENT library (book+)>
<!ELEMENT book (title, author+, isbn?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT isbn (#PCDATA)>
"""

RECURSIVE_DTD = """
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
"""

CHOICE_DTD = """
<!ELEMENT doc ((a | b | c)+)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>
"""


class TestConformance:
    def test_sequence_order_respected(self):
        generator = DtdGenerator(parse_dtd(SIMPLE_DTD), seed=1)
        doc = generator.generate("library")
        for book in doc.root_element.find_all("book"):
            tags = [c.tag for c in book.child_elements()]
            assert tags[0] == "title"
            assert all(t == "author" for t in tags[1:-1] or tags[1:])
            assert tags.count("title") == 1
            assert tags.count("author") >= 1
            assert tags.count("isbn") <= 1
            if "isbn" in tags:
                assert tags[-1] == "isbn"

    def test_plus_produces_at_least_one(self):
        generator = DtdGenerator(parse_dtd(SIMPLE_DTD), seed=2)
        doc = generator.generate("library")
        books = list(doc.root_element.find_all("book"))
        assert len(books) >= 1
        for book in books:
            assert any(c.tag == "author" for c in book.child_elements())

    def test_pcdata_elements_have_text(self):
        generator = DtdGenerator(parse_dtd(SIMPLE_DTD), seed=3)
        doc = generator.generate("library")
        for title in doc.root_element.find_all("title"):
            assert title.text_content().strip()

    def test_only_declared_tags_appear(self):
        generator = DtdGenerator(parse_dtd(SIMPLE_DTD), seed=4)
        doc = generator.generate("library")
        declared = {"library", "book", "title", "author", "isbn"}
        assert {e.tag for e in doc.iter_elements()} <= declared


class TestRecursionControl:
    def test_max_depth_respected_approximately(self):
        config = GeneratorConfig(max_depth=5, repeat_mean=3.0, depth_damping=1.0)
        generator = DtdGenerator(parse_dtd(RECURSIVE_DTD), config, seed=5)
        doc = generator.generate("part")
        from repro.labeling import label_document

        tree = label_document(doc)
        # Repeats collapse to minimum (0 for *) at the cap, so depth
        # stays close to max_depth.
        assert int(tree.level.max()) <= config.max_depth + 2

    def test_max_nodes_soft_cap(self):
        config = GeneratorConfig(
            max_nodes=50, repeat_mean=5.0, depth_damping=1.0, max_depth=50
        )
        generator = DtdGenerator(parse_dtd(RECURSIVE_DTD), config, seed=6)
        doc = generator.generate("part")
        # The cap is soft (applies at repeat decisions), so allow slack.
        assert doc.count_nodes() < 500


class TestChoiceWeights:
    def test_weights_bias_selection(self):
        config = GeneratorConfig(
            repeat_mean=50.0,
            depth_damping=1.0,
            choice_weights={"a": 10.0, "b": 1.0, "c": 1.0},
        )
        generator = DtdGenerator(parse_dtd(CHOICE_DTD), config, seed=7)
        doc = generator.generate("doc")
        from collections import Counter

        counts = Counter(e.tag for e in doc.iter_elements())
        assert counts["a"] > counts["b"]
        assert counts["a"] > counts["c"]

    def test_determinism(self):
        config = GeneratorConfig()
        a = DtdGenerator(parse_dtd(CHOICE_DTD), config, seed=8).generate("doc")
        b = DtdGenerator(parse_dtd(CHOICE_DTD), config, seed=8).generate("doc")
        assert [e.tag for e in a.iter_elements()] == [
            e.tag for e in b.iter_elements()
        ]


class TestErrors:
    def test_unknown_root_rejected(self):
        generator = DtdGenerator(parse_dtd(SIMPLE_DTD))
        with pytest.raises(KeyError):
            generator.generate("nonexistent")


class TestSchemaDataAgreement:
    def test_generated_data_respects_schema_no_overlap(self):
        """Tags the schema says are no-overlap must come out no-overlap
        in generated data (the converse may fail on lucky draws)."""
        from repro.labeling import label_document
        from repro.predicates.base import TagPredicate
        from repro.predicates.catalog import PredicateCatalog

        declarations = parse_dtd(RECURSIVE_DTD)
        schema = analyze_dtd(declarations)
        generator = DtdGenerator(declarations, seed=10)
        tree = label_document(generator.generate("part"))
        catalog = PredicateCatalog(tree)
        assert schema.no_overlap("name")
        assert catalog.stats(TagPredicate("name")).no_overlap
