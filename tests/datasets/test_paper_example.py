"""Fig. 1 example document tests: the paper's quoted counts must hold."""

from collections import Counter

from repro.datasets import paper_example_document
from repro.query.xpath import parse_xpath
from repro.query.matcher import count_matches


class TestQuotedCounts:
    def test_tag_counts(self, paper_tree):
        counts = Counter(e.tag for e in paper_tree.elements)
        assert counts["faculty"] == 3
        assert counts["TA"] == 5
        assert counts["RA"] == 10
        assert counts["department"] == 1
        assert counts["lecturer"] == 1
        assert counts["staff"] == 1
        assert counts["research_scientist"] == 1
        assert counts["name"] == 6

    def test_real_faculty_ta_answer_is_two(self, paper_tree):
        assert count_matches(paper_tree, parse_xpath("//faculty//TA")) == 2

    def test_schema_constraints_hold(self, paper_tree):
        """Lecturers have TAs but no RA; research scientists have RAs
        but no TA (the paper's schema description)."""
        assert count_matches(paper_tree, parse_xpath("//lecturer//RA")) == 0
        assert count_matches(paper_tree, parse_xpath("//research_scientist//TA")) == 0
        assert count_matches(paper_tree, parse_xpath("//lecturer//TA")) == 3

    def test_every_personnel_has_name(self, paper_tree):
        for tag in ("faculty", "staff", "lecturer", "research_scientist"):
            personnel = [e for e in paper_tree.elements if e.tag == tag]
            for person in personnel:
                assert any(c.tag == "name" for c in person.child_elements())

    def test_document_rebuilds_identically(self):
        doc1 = paper_example_document()
        doc2 = paper_example_document()
        tags1 = [e.tag for e in doc1.iter_elements()]
        tags2 = [e.tag for e in doc2.iter_elements()]
        assert tags1 == tags2
