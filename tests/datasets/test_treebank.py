"""Treebank-like data set tests: deep recursion, estimator robustness."""

from collections import Counter

import pytest

from repro.datasets import generate_treebank
from repro.estimation import AnswerSizeEstimator
from repro.labeling import label_document
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


@pytest.fixture(scope="module")
def treebank_tree():
    return label_document(generate_treebank(seed=17, sentences=40))


class TestStructure:
    def test_deep_nesting(self, treebank_tree):
        assert int(treebank_tree.level.max()) >= 12

    def test_phrase_tags_overlap(self, treebank_tree):
        """Almost everything recurses: S, NP, VP must be overlap
        predicates -- the hard regime for estimation."""
        catalog = PredicateCatalog(treebank_tree)
        for tag in ("S", "NP", "VP"):
            assert not catalog.stats(TagPredicate(tag)).no_overlap, tag

    def test_terminals_no_overlap(self, treebank_tree):
        catalog = PredicateCatalog(treebank_tree)
        for tag in ("NN", "VB", "DT"):
            assert catalog.stats(TagPredicate(tag)).no_overlap, tag

    def test_expected_tags(self, treebank_tree):
        counts = Counter(e.tag for e in treebank_tree.elements)
        assert counts["S"] >= 40  # at least one S per sentence
        assert counts["NP"] > counts["S"]

    def test_determinism(self):
        a = generate_treebank(seed=17, sentences=5)
        b = generate_treebank(seed=17, sentences=5)
        assert [e.tag for e in a.iter_elements()] == [
            e.tag for e in b.iter_elements()
        ]

    def test_sentence_validation(self):
        with pytest.raises(ValueError):
            generate_treebank(sentences=0)


class TestEstimationAtDepth:
    """The paper: "our techniques are insensitive to depth of tree"."""

    @pytest.mark.parametrize(
        "anc,desc", [("S", "NN"), ("NP", "NN"), ("VP", "NP"), ("S", "VP")]
    )
    def test_overlap_estimates_bounded_and_converging(self, treebank_tree, anc, desc):
        """Dense mutual recursion is the estimator's hardest regime
        (heavy within-cell correlation): expect over-estimates up to
        ~4x at g=10 that shrink with grid refinement."""
        real = None
        errors = {}
        for g in (10, 20):
            estimator = AnswerSizeEstimator(treebank_tree, grid_size=g)
            real = estimator.real_answer(f"//{anc}//{desc}")
            estimate = estimator.estimate(f"//{anc}//{desc}").value
            errors[g] = abs(estimate - real) / real
            assert real / 4.0 <= estimate <= real * 4.0, (g, estimate, real)
        assert errors[20] <= errors[10] + 0.05

    def test_twig_on_parse_trees(self, treebank_tree):
        estimator = AnswerSizeEstimator(treebank_tree, grid_size=10)
        query = "//S//NP[.//NN]//PP"
        real = estimator.real_answer(query)
        estimate = estimator.estimate(query).value
        assert real > 0
        import math

        assert abs(math.log10(estimate / real)) < 1.0
