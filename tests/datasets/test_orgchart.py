"""Orgchart data set tests: the paper's Table 3 characteristics."""

from collections import Counter

import pytest

from repro.datasets import generate_orgchart
from repro.datasets.orgchart import ORGCHART_DTD
from repro.dtd.parser import parse_dtd
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog


class TestTable3Characteristics:
    def test_overlap_mix_matches_paper(self, orgchart_tree):
        catalog = PredicateCatalog(orgchart_tree)
        expected = {
            "manager": False,     # overlap (recursion)
            "department": False,  # overlap (recursion)
            "employee": True,
            "email": True,
            "name": True,
        }
        for tag, no_overlap in expected.items():
            assert catalog.stats(TagPredicate(tag)).no_overlap is no_overlap, tag

    def test_counts_in_paper_range(self, orgchart_tree):
        """Paper: manager 44, department 270, employee 473, email 173,
        name 1002.  Our generator targets the same order of magnitude."""
        counts = Counter(e.tag for e in orgchart_tree.elements)
        assert 10 <= counts["manager"] <= 200
        assert 50 <= counts["department"] <= 800
        assert 150 <= counts["employee"] <= 1600
        assert 50 <= counts["email"] <= 800
        assert 300 <= counts["name"] <= 3000

    def test_deep_nesting(self, orgchart_tree):
        """The whole point of the synthetic set: deep recursion."""
        assert int(orgchart_tree.level.max()) >= 6

    def test_managers_actually_nest(self, orgchart_tree):
        from repro.query.matcher import count_pairs

        catalog = PredicateCatalog(orgchart_tree)
        managers = catalog.stats(TagPredicate("manager")).node_indices
        assert count_pairs(orgchart_tree, managers, managers) > 0


class TestDtdConformance:
    def test_document_conforms_to_content_models(self, orgchart_tree):
        declarations = parse_dtd(ORGCHART_DTD)
        for element in orgchart_tree.elements:
            tags = [c.tag for c in element.child_elements()]
            if element.tag == "manager":
                assert tags[0] == "name"
                assert len(tags) >= 2
                assert set(tags[1:]) <= {"manager", "department", "employee"}
            elif element.tag == "department":
                assert tags[0] == "name"
                body = tags[1:]
                if body and body[0] == "email":
                    body = body[1:]
                assert "employee" in body
                split = body.index("employee")
                assert all(t == "employee" for t in body[split: len([t for t in body if t == 'employee']) + split])
            elif element.tag == "employee":
                assert tags and all(t in ("name", "email") for t in tags)
                assert tags.count("email") <= 1
            elif element.tag in ("name", "email"):
                assert tags == []

    def test_determinism(self):
        a = generate_orgchart(seed=42)
        b = generate_orgchart(seed=42)
        assert [e.tag for e in a.iter_elements()] == [
            e.tag for e in b.iter_elements()
        ]

    def test_min_nodes_gate(self):
        doc = generate_orgchart(seed=1, min_nodes=500)
        assert doc.count_nodes() >= 500

    def test_min_nodes_zero_returns_first_draw(self):
        doc = generate_orgchart(seed=42, min_nodes=0)
        assert doc.count_nodes() >= 1
