"""DBLP-like generator tests: Table 1 structural characteristics."""

from collections import Counter

from repro.datasets import generate_dblp
from repro.labeling import label_document
from repro.predicates.base import ContentPrefixPredicate, TagPredicate
from repro.predicates.catalog import PredicateCatalog


class TestDeterminism:
    def test_same_seed_same_document(self):
        a = generate_dblp(seed=3, scale=0.02)
        b = generate_dblp(seed=3, scale=0.02)
        assert [e.tag for e in a.iter_elements()] == [
            e.tag for e in b.iter_elements()
        ]

    def test_different_seeds_differ(self):
        a = generate_dblp(seed=3, scale=0.02)
        b = generate_dblp(seed=4, scale=0.02)
        assert [e.tag for e in a.iter_elements()] != [
            e.tag for e in b.iter_elements()
        ]

    def test_scale_scales_linearly(self):
        small = generate_dblp(seed=3, scale=0.02).count_nodes()
        large = generate_dblp(seed=3, scale=0.08).count_nodes()
        assert 2.5 <= large / small <= 6.0

    def test_scale_validation(self):
        import pytest

        with pytest.raises(ValueError):
            generate_dblp(scale=0)


class TestTable1Characteristics:
    def test_tag_mix(self, dblp_tree):
        counts = Counter(e.tag for e in dblp_tree.elements)
        # Table 1 ratios: authors outnumber articles; years/titles per
        # record; cites concentrated.
        assert counts["author"] > counts["article"]
        assert counts["year"] >= counts["article"]
        assert counts["title"] >= counts["article"]
        assert counts["book"] < counts["article"] / 5
        assert counts["cdrom"] < counts["url"]

    def test_all_tag_predicates_no_overlap(self, dblp_tree):
        """Table 1: every DBLP element-tag predicate is no-overlap."""
        catalog = PredicateCatalog(dblp_tree)
        for stats in catalog.register_all_tags():
            assert stats.no_overlap, stats.predicate.name

    def test_prefix_predicates_nonempty(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        conf = catalog.stats(ContentPrefixPredicate("conf", tag="cite"))
        journal = catalog.stats(ContentPrefixPredicate("journal", tag="cite"))
        cite = catalog.stats(TagPredicate("cite"))
        assert conf.count > 0 and journal.count > 0
        assert conf.count + journal.count == cite.count

    def test_two_level_records(self, dblp_tree):
        """Structure: record children of the root, fields below them."""
        assert int(dblp_tree.level.max()) == 3

    def test_years_parse_as_integers(self, dblp_tree):
        for element in dblp_tree.elements:
            if element.tag == "year":
                year = int(element.text_content())
                assert 1960 <= year <= 2001
