"""Page-file container: layout, zero-copy mapping, and failure paths.

The page file is the storage substrate for checkpoints, summary stores,
and lazy warm starts, so this suite pins the format contract directly:
byte layout (magic/alignment/footer/tail), the NpzFile-compatible read
surface, zero-copy read-only views, every corruption class (truncation
at each prefix length, bit flips in segments and footer, directory
lies), and the mapped-path registry that checkpoint retention trusts.
"""

import gc
import json
import struct
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.storage.pagefile import (
    PAGEFILE_MAGIC,
    SEGMENT_ALIGN,
    PageFile,
    PageFormatError,
    encode_page_file,
    is_page_file,
    mapped_paths,
    open_array_container,
    write_page_file,
)


def _footer_span(data: bytes):
    """(footer_start, parsed footer dict) for raw page-file bytes.

    Tail layout: ``... footer <u32 len><u32 crc> magic``.
    """
    magic = len(PAGEFILE_MAGIC)
    footer_len, _ = struct.unpack("<II", data[-magic - 8 : -magic])
    start = len(data) - magic - 8 - footer_len
    return start, json.loads(data[start : start + footer_len].decode())


def _parse_footer(data: bytes) -> dict:
    return _footer_span(data)[1]


def sample_arrays():
    return {
        "start": np.arange(17, dtype=np.int64) * 3,
        "end": np.arange(17, dtype=np.int64) * 3 + 2,
        "fracs": np.linspace(0.0, 1.0, 11, dtype=np.float64),
        "cells": np.arange(12, dtype=np.int64).reshape(3, 4),
        "tags": np.array(["a", "bb", "ccc"]),
        "empty": np.zeros(0, dtype=np.int64),
    }


class TestRoundTrip:
    def test_every_member_survives_bit_identically(self, tmp_path):
        arrays = sample_arrays()
        path = tmp_path / "store.pgf"
        write_page_file(path, arrays, meta={"kind": "test", "n": 17})
        with PageFile(path) as pf:
            assert sorted(pf.files) == sorted(arrays)
            assert pf.meta == {"kind": "test", "n": 17}
            for name, expected in arrays.items():
                got = pf[name]
                assert got.dtype == expected.dtype
                assert got.shape == expected.shape
                assert np.array_equal(got, expected)

    def test_segments_are_64_byte_aligned(self, tmp_path):
        data = encode_page_file(sample_arrays())
        path = tmp_path / "aligned.pgf"
        path.write_bytes(data)
        with PageFile(path) as pf:
            for name in pf.files:
                assert pf._segments[name]["offset"] % SEGMENT_ALIGN == 0, name

    def test_head_and_tail_magic(self, tmp_path):
        data = encode_page_file({"x": np.arange(4)})
        assert data.startswith(PAGEFILE_MAGIC)
        assert data.endswith(PAGEFILE_MAGIC)

    def test_views_are_zero_copy_and_read_only(self, tmp_path):
        path = tmp_path / "views.pgf"
        write_page_file(path, {"col": np.arange(100, dtype=np.int64)})
        pf = PageFile(path)
        view = pf["col"]
        assert not view.flags.writeable
        assert not view.flags.owndata  # a view into the mapping, not a copy
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 99
        pf.close()

    def test_repeated_reads_share_the_mapping(self, tmp_path):
        path = tmp_path / "shared.pgf"
        write_page_file(path, {"col": np.arange(8, dtype=np.int64)})
        with PageFile(path) as pf:
            a = pf["col"]
            b = pf["col"]
            assert a.base is not None and b.base is not None
            assert np.shares_memory(a, b)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "atomic.pgf"
        size = write_page_file(path, sample_arrays())
        assert path.stat().st_size == size
        assert list(tmp_path.glob("*.tmp")) == []

    def test_empty_container_round_trips(self, tmp_path):
        path = tmp_path / "empty.pgf"
        write_page_file(path, {})
        with PageFile(path) as pf:
            assert pf.files == []


class TestContainerSniffing:
    def test_open_array_container_dispatches_by_magic(self, tmp_path):
        pgf = tmp_path / "a.bin"
        npz = tmp_path / "b.bin"  # extension deliberately lies
        write_page_file(pgf, {"x": np.arange(3)})
        with open(npz, "wb") as handle:
            np.savez_compressed(handle, x=np.arange(3))
        with open_array_container(pgf) as archive:
            assert isinstance(archive, PageFile)
            assert np.array_equal(archive["x"], np.arange(3))
        with open_array_container(npz) as archive:
            assert not isinstance(archive, PageFile)
            assert np.array_equal(archive["x"], np.arange(3))

    def test_is_page_file(self, tmp_path):
        pgf = tmp_path / "yes.pgf"
        write_page_file(pgf, {})
        assert is_page_file(pgf)
        other = tmp_path / "no.bin"
        other.write_bytes(b"not a page file")
        assert not is_page_file(other)
        assert not is_page_file(tmp_path / "missing.pgf")

    def test_foreign_bytes_are_rejected(self, tmp_path):
        path = tmp_path / "foreign.bin"
        path.write_bytes(b"\x00" * 256)
        with pytest.raises(PageFormatError):
            open_array_container(path)


class TestCorruption:
    def test_truncation_at_every_prefix_is_rejected(self, tmp_path):
        # Small container so the sweep is exhaustive: every proper
        # prefix must fail to open -- there is no prefix length at
        # which a torn write looks like a valid page file.
        data = encode_page_file({"x": np.arange(6, dtype=np.int64)})
        path = tmp_path / "torn.pgf"
        for cut in range(len(data)):
            path.write_bytes(data[:cut])
            with pytest.raises(PageFormatError):
                PageFile(path)
        path.write_bytes(data)
        with PageFile(path) as pf:  # the full file still opens
            assert np.array_equal(pf["x"], np.arange(6))

    def test_bit_flip_in_segment_fails_crc_on_read(self, tmp_path):
        arrays = {"x": np.arange(64, dtype=np.int64)}
        data = bytearray(encode_page_file(arrays))
        offset = _parse_footer(bytes(data))["segments"]["x"]["offset"]
        data[offset + 5] ^= 0x40
        path = tmp_path / "flipped.pgf"
        path.write_bytes(bytes(data))
        pf = PageFile(path)  # footer is intact, so the open succeeds
        with pytest.raises(PageFormatError, match="checksum"):
            pf["x"]
        pf.close()

    def test_bit_flip_in_footer_rejected_at_open(self, tmp_path):
        data = bytearray(encode_page_file({"x": np.arange(4)}))
        # Flip a byte inside the JSON footer (just before the 8-byte
        # tail struct and the trailing magic).
        data[-(8 + len(PAGEFILE_MAGIC)) - 3] ^= 0x01
        path = tmp_path / "badfooter.pgf"
        path.write_bytes(bytes(data))
        with pytest.raises(PageFormatError):
            PageFile(path)

    def _rewrite_footer(self, data: bytes, mutate) -> bytes:
        """Re-encode with a mutated directory but a VALID footer CRC,
        so only the directory-sanity checks can catch the lie."""
        start, footer = _footer_span(data)
        mutate(footer)
        raw = json.dumps(footer, separators=(",", ":")).encode()
        return (
            data[:start]
            + raw
            + struct.pack("<II", len(raw), zlib.crc32(raw))
            + PAGEFILE_MAGIC
        )

    def test_directory_offset_outside_data_region(self, tmp_path):
        data = encode_page_file({"x": np.arange(4, dtype=np.int64)})

        def lie(footer):
            footer["segments"]["x"]["offset"] = 1 << 40

        path = tmp_path / "liar.pgf"
        path.write_bytes(self._rewrite_footer(data, lie))
        pf = PageFile(path)
        with pytest.raises(PageFormatError, match="outside the data region"):
            pf["x"]
        pf.close()

    def test_directory_misaligned_offset(self, tmp_path):
        data = encode_page_file({"x": np.arange(4, dtype=np.int64)})

        def lie(footer):
            footer["segments"]["x"]["offset"] += 1

        path = tmp_path / "misaligned.pgf"
        path.write_bytes(self._rewrite_footer(data, lie))
        pf = PageFile(path)
        with pytest.raises(PageFormatError):
            pf["x"]
        pf.close()

    def test_directory_malformed_dtype(self, tmp_path):
        data = encode_page_file({"x": np.arange(4, dtype=np.int64)})

        def lie(footer):
            footer["segments"]["x"]["dtype"] = "not-a-dtype"

        path = tmp_path / "baddtype.pgf"
        path.write_bytes(self._rewrite_footer(data, lie))
        pf = PageFile(path)
        with pytest.raises(PageFormatError, match="malformed"):
            pf["x"]
        pf.close()

    def test_wrong_version_rejected(self, tmp_path):
        data = encode_page_file({"x": np.arange(4)})

        def lie(footer):
            footer["version"] = 999

        path = tmp_path / "future.pgf"
        path.write_bytes(self._rewrite_footer(data, lie))
        with pytest.raises(PageFormatError, match="version"):
            PageFile(path)

    def test_missing_member_raises_key_error_like_npz(self, tmp_path):
        path = tmp_path / "keys.pgf"
        write_page_file(path, {"x": np.arange(3)})
        with PageFile(path) as pf:
            with pytest.raises(KeyError):
                pf["absent"]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "zero.pgf"
        path.write_bytes(b"")
        with pytest.raises(PageFormatError):
            PageFile(path)


class TestMappingLifecycle:
    def test_mapped_paths_tracks_open_and_close(self, tmp_path):
        path = tmp_path / "track.pgf"
        write_page_file(path, {"x": np.arange(4)})
        resolved = path.resolve()
        assert resolved not in mapped_paths()
        pf = PageFile(path)
        assert resolved in mapped_paths()
        pf.close()
        assert resolved not in mapped_paths()
        assert pf.closed

    def test_close_with_live_views_keeps_the_mapping_visible(self, tmp_path):
        path = tmp_path / "pinned.pgf"
        write_page_file(path, {"x": np.arange(100, dtype=np.int64)})
        resolved = path.resolve()
        pf = PageFile(path)
        view = pf["x"]
        pf.close()  # refused: the view still exports the buffer
        assert not pf.closed
        assert resolved in mapped_paths()
        assert np.array_equal(view, np.arange(100))  # still readable
        del view
        gc.collect()
        pf.close()  # now it can actually unmap
        assert pf.closed
        assert resolved not in mapped_paths()

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "twice.pgf"
        write_page_file(path, {"x": np.arange(4)})
        pf = PageFile(path)
        pf.close()
        pf.close()
        assert pf.closed

    def test_read_after_close_is_an_error(self, tmp_path):
        path = tmp_path / "closed.pgf"
        write_page_file(path, {"x": np.arange(4)})
        pf = PageFile(path)
        pf.close()
        with pytest.raises(PageFormatError, match="closed"):
            pf["x"]

    def test_unlink_while_mapped_views_stay_valid(self, tmp_path):
        # POSIX semantics the retention logic leans on: even if a file
        # IS unlinked, live mappings keep serving the old bytes.
        path = tmp_path / "ghost.pgf"
        write_page_file(path, {"x": np.arange(50, dtype=np.int64)})
        pf = PageFile(path)
        view = pf["x"]
        Path(path).unlink()
        assert np.array_equal(view, np.arange(50))
        pf.close()
