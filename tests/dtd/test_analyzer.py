"""Schema analyzer unit tests (no-overlap inference and shortcuts)."""

from repro.datasets.orgchart import ORGCHART_DTD
from repro.dtd.analyzer import analyze_dtd
from repro.dtd.parser import parse_dtd


def analysis(dtd_text=ORGCHART_DTD):
    return analyze_dtd(parse_dtd(dtd_text))


class TestNoOverlapInference:
    def test_recursive_tags_overlap(self):
        schema = analysis()
        assert not schema.no_overlap("manager")
        assert not schema.no_overlap("department")

    def test_non_recursive_tags_no_overlap(self):
        schema = analysis()
        assert schema.no_overlap("employee")
        assert schema.no_overlap("email")
        assert schema.no_overlap("name")

    def test_mutual_recursion_detected(self):
        schema = analysis(
            "<!ELEMENT a (b)>\n<!ELEMENT b (a?)>\n"
        )
        assert not schema.no_overlap("a")
        assert not schema.no_overlap("b")

    def test_schema_agrees_with_data(self, orgchart_tree):
        """The DTD-derived property must match what the generated data
        exhibits (the generator must honor the schema)."""
        from repro.predicates.base import TagPredicate
        from repro.predicates.catalog import PredicateCatalog

        schema = analysis()
        catalog = PredicateCatalog(orgchart_tree)
        for tag in ("manager", "department", "employee", "email", "name"):
            data_no_overlap = catalog.stats(TagPredicate(tag)).no_overlap
            if schema.no_overlap(tag):
                assert data_no_overlap, tag  # schema guarantee must hold


class TestContainment:
    def test_transitive_reachability(self):
        schema = analysis()
        assert schema.can_contain("manager", "email")
        assert schema.can_contain("manager", "department")
        assert schema.can_contain("department", "employee")
        assert not schema.can_contain("employee", "department")
        assert not schema.can_contain("name", "email")

    def test_zero_answer_shortcut(self):
        """Paper Section 4: schema-forbidden nestings estimate to zero."""
        schema = analysis()
        assert schema.zero_answer("email", "manager")
        assert not schema.zero_answer("manager", "email")

    def test_any_content_contains_everything(self):
        schema = analysis("<!ELEMENT a ANY>\n<!ELEMENT b (#PCDATA)>\n")
        assert schema.can_contain("a", "b")
        assert schema.can_contain("a", "a")
        assert not schema.no_overlap("a")


class TestSoleParent:
    def test_unique_parent_found(self):
        schema = analysis(
            "<!ELEMENT book (author+)>\n<!ELEMENT author (#PCDATA)>\n"
        )
        assert schema.sole_parent("author") == "book"

    def test_shared_child_has_no_sole_parent(self):
        schema = analysis()  # name appears under manager/department/employee
        assert schema.sole_parent("name") is None


class TestMandatoryTags:
    def test_plus_and_bare_names_mandatory(self):
        schema = analysis()
        assert schema.mandatory_tags("employee") == {"name"}
        assert schema.mandatory_tags("department") == {"name", "employee"}

    def test_choice_mandatory_only_if_common(self):
        schema = analysis(
            "<!ELEMENT a ((b, c) | (b, d))>"
            "<!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        assert schema.mandatory_tags("a") == {"b"}

    def test_optional_not_mandatory(self):
        schema = analysis()
        assert "email" not in schema.mandatory_tags("department")

    def test_unknown_tag_empty(self):
        assert analysis().mandatory_tags("ghost") == set()
