"""DTD parser unit tests."""

import pytest

from repro.dtd.ast import (
    AnyContent,
    Choice,
    EmptyContent,
    NameRef,
    PCData,
    Repeat,
    RepeatKind,
    Sequence,
    referenced_names,
)
from repro.dtd.parser import DTDParseError, parse_dtd


class TestBasicDeclarations:
    def test_pcdata(self):
        decls = parse_dtd("<!ELEMENT name (#PCDATA)>")
        assert decls["name"].model == PCData()

    def test_empty(self):
        decls = parse_dtd("<!ELEMENT br EMPTY>")
        assert decls["br"].model == EmptyContent()

    def test_any(self):
        decls = parse_dtd("<!ELEMENT x ANY>")
        assert decls["x"].model == AnyContent()

    def test_single_child(self):
        decls = parse_dtd("<!ELEMENT a (b)>")
        assert decls["a"].model == NameRef("b")

    def test_sequence(self):
        decls = parse_dtd("<!ELEMENT a (b, c, d)>")
        model = decls["a"].model
        assert isinstance(model, Sequence)
        assert [str(i) for i in model.items] == ["b", "c", "d"]

    def test_choice(self):
        decls = parse_dtd("<!ELEMENT a (b | c)>")
        model = decls["a"].model
        assert isinstance(model, Choice)

    @pytest.mark.parametrize("op,kind", [("?", RepeatKind.OPTIONAL), ("*", RepeatKind.STAR), ("+", RepeatKind.PLUS)])
    def test_occurrence_operators(self, op, kind):
        decls = parse_dtd(f"<!ELEMENT a (b{op})>")
        model = decls["a"].model
        assert isinstance(model, Repeat)
        assert model.kind is kind
        assert model.item == NameRef("b")

    def test_group_repeat(self):
        decls = parse_dtd("<!ELEMENT a (b | c)+>")
        model = decls["a"].model
        assert isinstance(model, Repeat)
        assert isinstance(model.item, Choice)


class TestPaperDTD:
    """The manager/department/employee DTD of the paper's Section 5.2."""

    DTD = """
    <!ELEMENT manager (name, (manager | department | employee)+)>
    <!ELEMENT department (name, email?, employee+, department*)>
    <!ELEMENT employee (name+, email?)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT email (#PCDATA)>
    """

    def test_all_five_elements_parsed(self):
        decls = parse_dtd(self.DTD)
        assert sorted(decls) == ["department", "email", "employee", "manager", "name"]

    def test_manager_model_shape(self):
        decls = parse_dtd(self.DTD)
        model = decls["manager"].model
        assert isinstance(model, Sequence)
        assert model.items[0] == NameRef("name")
        repeat = model.items[1]
        assert isinstance(repeat, Repeat) and repeat.kind is RepeatKind.PLUS
        assert isinstance(repeat.item, Choice)
        assert {str(o) for o in repeat.item.options} == {
            "manager",
            "department",
            "employee",
        }

    def test_referenced_names(self):
        decls = parse_dtd(self.DTD)
        assert set(referenced_names(decls["department"].model)) == {
            "name",
            "email",
            "employee",
            "department",
        }

    def test_rendering_round_trip(self):
        decls = parse_dtd(self.DTD)
        rendered = "\n".join(str(d) for d in decls.values())
        again = parse_dtd(rendered)
        assert {n: str(d.model) for n, d in again.items()} == {
            n: str(d.model) for n, d in decls.items()
        }


class TestToleratedConstructs:
    def test_comments_skipped(self):
        decls = parse_dtd("<!-- hi --><!ELEMENT a (b)><!-- bye -->")
        assert "a" in decls

    def test_attlist_skipped(self):
        decls = parse_dtd(
            '<!ELEMENT a (b)><!ATTLIST a id ID #REQUIRED>'
        )
        assert sorted(decls) == ["a"]

    def test_entity_skipped(self):
        decls = parse_dtd('<!ENTITY amp "&#38;"><!ELEMENT a EMPTY>')
        assert sorted(decls) == ["a"]


class TestErrors:
    def test_no_declarations(self):
        with pytest.raises(DTDParseError, match="no <!ELEMENT"):
            parse_dtd("just text")

    def test_duplicate_declaration(self):
        with pytest.raises(DTDParseError, match="duplicate"):
            parse_dtd("<!ELEMENT a (b)><!ELEMENT a (c)>")

    def test_mixed_separators_rejected(self):
        with pytest.raises(DTDParseError, match="mix"):
            parse_dtd("<!ELEMENT a (b, c | d)>")

    def test_unbalanced_group(self):
        with pytest.raises(DTDParseError):
            parse_dtd("<!ELEMENT a (b, (c)>")

    def test_trailing_garbage(self):
        with pytest.raises(DTDParseError, match="trailing"):
            parse_dtd("<!ELEMENT a (b) extra>")
