"""Shared fixtures: labeled trees and estimators for the standard data sets.

Session-scoped where construction is expensive, so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    generate_dblp,
    generate_orgchart,
    generate_shakespeare,
    generate_xmark,
    paper_example_document,
)
from repro.estimation import AnswerSizeEstimator
from repro.labeling import label_document
from repro.labeling.interval import LabeledTree


@pytest.fixture(scope="session")
def paper_tree() -> LabeledTree:
    """The labeled Fig. 1 example document."""
    return label_document(paper_example_document())


@pytest.fixture(scope="session")
def paper_estimator(paper_tree: LabeledTree) -> AnswerSizeEstimator:
    """A 2x2-grid estimator over the Fig. 1 document (as in Fig. 7)."""
    return AnswerSizeEstimator(paper_tree, grid_size=2)


@pytest.fixture(scope="session")
def dblp_tree() -> LabeledTree:
    """A small DBLP-like database (~5.5k nodes, seed-stable)."""
    return label_document(generate_dblp(seed=7, scale=0.1))


@pytest.fixture(scope="session")
def dblp_estimator(dblp_tree: LabeledTree) -> AnswerSizeEstimator:
    return AnswerSizeEstimator(dblp_tree, grid_size=10)


@pytest.fixture(scope="session")
def orgchart_tree() -> LabeledTree:
    """The recursive orgchart database of the paper's Section 5.2."""
    return label_document(generate_orgchart(seed=42))


@pytest.fixture(scope="session")
def orgchart_estimator(orgchart_tree: LabeledTree) -> AnswerSizeEstimator:
    return AnswerSizeEstimator(orgchart_tree, grid_size=10)


@pytest.fixture(scope="session")
def xmark_tree() -> LabeledTree:
    return label_document(generate_xmark(seed=23, scale=0.5))


@pytest.fixture(scope="session")
def shakespeare_tree() -> LabeledTree:
    return label_document(generate_shakespeare(seed=11, plays=1))
