"""Execution engine tests: binding tables and plan execution."""

import pytest

from repro.engine import BindingTable, PlanExecutor
from repro.optimizer.plans import enumerate_plans
from repro.query.matcher import count_matches
from repro.query.xpath import parse_xpath


class TestBindingTable:
    def test_single_column(self):
        table = BindingTable.single_column(0, [3, 5, 7])
        assert len(table) == 3
        assert table.column_values(0) == [3, 5, 7]
        assert table.distinct(0) == [3, 5, 7]

    def test_expand_inner_join(self):
        table = BindingTable.single_column(0, [1, 2, 3])
        expanded = table.expand(0, 1, {1: [10, 11], 3: [12]})
        assert expanded.columns == (0, 1)
        assert set(expanded.rows) == {(1, 10), (1, 11), (3, 12)}

    def test_expand_drops_unmatched(self):
        table = BindingTable.single_column(0, [1, 2])
        expanded = table.expand(0, 1, {})
        assert len(expanded) == 0

    def test_missing_column_rejected(self):
        table = BindingTable.single_column(0, [1])
        with pytest.raises(KeyError):
            table.column_values(9)

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            BindingTable((0, 1), [(1,)])


class TestPlanExecution:
    @pytest.mark.parametrize(
        "xpath",
        [
            "//faculty//TA",
            "//department//faculty[.//TA][.//RA]",
            "//department//RA",
            "//lecturer/TA",
        ],
    )
    def test_row_count_matches_dp_counter(self, paper_tree, xpath):
        from repro.predicates.catalog import PredicateCatalog

        pattern = parse_xpath(xpath)
        catalog = PredicateCatalog(paper_tree)
        executor = PlanExecutor(paper_tree, catalog)
        expected = count_matches(paper_tree, pattern)
        for plan in enumerate_plans(pattern):
            table, stats = executor.execute(pattern, plan)
            assert len(table) == expected, str(plan)
            assert stats.total_work > 0

    def test_all_plans_same_result_on_recursive_data(self, orgchart_tree):
        from repro.predicates.catalog import PredicateCatalog

        pattern = parse_xpath("//manager//department[.//employee]//email")
        catalog = PredicateCatalog(orgchart_tree)
        executor = PlanExecutor(orgchart_tree, catalog)
        expected = count_matches(orgchart_tree, pattern)
        counts = set()
        for plan in enumerate_plans(pattern):
            table, _stats = executor.execute(pattern, plan)
            counts.add(len(table))
        assert counts == {expected}

    def test_bindings_are_structurally_valid(self, paper_tree):
        from repro.predicates.catalog import PredicateCatalog

        pattern = parse_xpath("//faculty//TA")
        catalog = PredicateCatalog(paper_tree)
        executor = PlanExecutor(paper_tree, catalog)
        (plan,) = list(enumerate_plans(pattern))
        table, _stats = executor.execute(pattern, plan)
        f_pos = table.column_position(0)
        t_pos = table.column_position(1)
        for row in table:
            assert paper_tree.is_ancestor(row[f_pos], row[t_pos])

    def test_work_differs_across_plans(self, dblp_tree):
        """The premise of cost-based optimization: join orders have
        genuinely different costs on real data."""
        from repro.predicates.catalog import PredicateCatalog

        pattern = parse_xpath("//article[.//cdrom]//author")
        catalog = PredicateCatalog(dblp_tree)
        executor = PlanExecutor(dblp_tree, catalog)
        works = []
        for plan in enumerate_plans(pattern):
            _table, stats = executor.execute(pattern, plan)
            works.append(stats.total_work)
        assert len(set(works)) > 1

    def test_estimate_driven_choice_minimises_actual_work(self, dblp_tree):
        """End-to-end payoff: the plan the optimizer picks from
        histogram estimates must be (near-)minimal in *measured* work."""
        from repro.estimation import AnswerSizeEstimator
        from repro.optimizer import Optimizer
        from repro.predicates.catalog import PredicateCatalog

        estimator = AnswerSizeEstimator(dblp_tree, grid_size=10)
        optimizer = Optimizer(estimator)
        catalog = PredicateCatalog(dblp_tree)
        executor = PlanExecutor(dblp_tree, catalog)

        for xpath in ("//article[.//cdrom]//author", "//article[.//author]//cite"):
            pattern = parse_xpath(xpath)
            choice = optimizer.choose_plan(pattern)
            works = {}
            for plan in enumerate_plans(pattern):
                _table, stats = executor.execute(pattern, plan)
                works[plan.steps] = stats.total_work
            chosen_work = works[choice.best.plan.steps]
            best_work = min(works.values())
            assert chosen_work <= best_work * 1.6, xpath

    def test_empty_plan_rejected(self, paper_tree):
        from repro.optimizer.plans import JoinPlan
        from repro.predicates.catalog import PredicateCatalog

        executor = PlanExecutor(paper_tree, PredicateCatalog(paper_tree))
        with pytest.raises(ValueError, match="no steps"):
            executor.execute(parse_xpath("//faculty//TA"), JoinPlan(()))
