"""Arbitrary-child-position insert planning and the vectorised relabel."""

import random

import numpy as np
import pytest

from repro.labeling.dynamic import (
    GapExhausted,
    apply_insert,
    child_indices,
    gap_for_insert,
    plan_insert,
)
from repro.labeling.interval import label_forest, relabel_preorder
from repro.xmltree.tree import Document, Element


def flat_document(children: int = 5) -> tuple[Document, Element]:
    document = Document()
    root = Element("root")
    document.append(root)
    for k in range(children):
        root.append(Element(f"c{k}"))
    return document, root


def random_forest(rng: random.Random):
    documents = []
    for _ in range(rng.randrange(1, 4)):
        document = Document()
        root = Element("root")
        document.append(root)
        spine = [root]
        for _ in range(rng.randrange(0, 40)):
            child = Element(rng.choice("abc"))
            rng.choice(spine).append(child)
            spine.append(child)
        documents.append(document)
    return documents


def attach_at(root: Element, subtree: Element, position) -> None:
    kids = list(root.child_elements())
    if position is None or position >= len(kids):
        root.append(subtree)
        return
    slot = root.children.index(kids[position])
    subtree.parent = root
    root.children.insert(slot, subtree)


@pytest.mark.parametrize("position", [0, 1, 3, 4, 5, 99, None])
def test_positional_insert_lands_at_child_rank(position):
    document, root = flat_document()
    tree = label_forest([document], spacing=64)
    subtree = Element("new")
    subtree.append(Element("leaf"))
    plan = plan_insert(tree, 0, subtree, position)
    attach_at(root, subtree, position)
    apply_insert(tree, plan)
    tree.validate()
    kid_tags = [tree.elements[i].tag for i in child_indices(tree, 0)]
    expected_rank = min(position, 5) if position is not None else 5
    assert kid_tags.index("new") == expected_rank
    # The splice keeps the flat arrays equal to a fresh labeling pass.
    reference = label_forest([document], spacing=64)
    assert [e.tag for e in tree.elements] == [e.tag for e in reference.elements]
    assert np.array_equal(tree.parent_index, reference.parent_index)


def test_gap_for_insert_bounds_are_the_sibling_labels():
    document, _ = flat_document(3)
    tree = label_forest([document], spacing=16)
    kids = child_indices(tree, 0)
    lo, hi, position = gap_for_insert(tree, 0, 0)
    assert lo == int(tree.start[0]) and hi == int(tree.start[kids[0]])
    assert position == int(kids[0])
    lo, hi, position = gap_for_insert(tree, 0, 2)
    assert lo == int(tree.end[kids[1]]) and hi == int(tree.start[kids[2]])
    assert position == int(kids[2])
    # Past-the-end falls back to the last-child gap.
    last = gap_for_insert(tree, 0, 3)
    assert last == gap_for_insert(tree, 0, None)


def test_positional_insert_negative_position_rejected():
    document, _ = flat_document(2)
    tree = label_forest([document], spacing=16)
    with pytest.raises(ValueError):
        plan_insert(tree, 0, Element("x"), -1)


def test_positional_insert_gap_exhaustion():
    document, _ = flat_document(3)
    tree = label_forest([document], spacing=2)  # 1-label gaps everywhere
    big = Element("x")
    big.append(Element("y"))
    with pytest.raises(GapExhausted):
        plan_insert(tree, 0, big, 1)


def test_repeated_inserts_at_same_position_stack_in_front():
    document, root = flat_document(2)
    tree = label_forest([document], spacing=512)
    for tag in ("first", "second", "third"):
        subtree = Element(tag)
        plan = plan_insert(tree, 0, subtree, 1)
        attach_at(root, subtree, 1)
        apply_insert(tree, plan)
        tree.validate()
    kid_tags = [tree.elements[i].tag for i in child_indices(tree, 0)]
    # Each insert lands *at* rank 1, pushing the previous one right.
    assert kid_tags == ["c0", "third", "second", "first", "c1"]


@pytest.mark.parametrize("spacing", [1, 3, 64])
def test_relabel_preorder_bit_identical_to_label_forest(spacing):
    for seed in range(10):
        rng = random.Random(seed)
        documents = random_forest(rng)
        tree = label_forest(documents, spacing=7)
        relabel_preorder(tree, spacing=spacing)
        reference = label_forest(documents, spacing=spacing)
        assert np.array_equal(tree.start, reference.start)
        assert np.array_equal(tree.end, reference.end)
        assert tree.max_label == reference.max_label
        tree.validate()


def test_relabel_preorder_replaces_arrays_without_mutation():
    documents = random_forest(random.Random(3))
    tree = label_forest(documents, spacing=4)
    old_start, old_end = tree.start, tree.end
    snapshot_start = old_start.copy()
    relabel_preorder(tree, spacing=32)
    assert tree.start is not old_start  # snapshots keep the old arrays
    assert np.array_equal(old_start, snapshot_start)
    assert np.array_equal(old_end, old_end)


def test_relabel_preorder_empty_tree():
    tree = label_forest([], spacing=8)
    relabel_preorder(tree, spacing=8)
    assert len(tree) == 0 and tree.max_label == 8
