"""Tests of gap-aware label allocation and label-table splicing."""

import numpy as np
import pytest

from repro.labeling.dynamic import (
    GapExhausted,
    apply_delete,
    apply_insert,
    gap_after_last_child,
    plan_insert,
)
from repro.labeling.interval import label_document, label_forest
from repro.xmltree.tree import Document, Element


def chain_document(tags) -> Document:
    document = Document()
    parent = None
    for tag in tags:
        element = Element(tag)
        if parent is None:
            document.append(element)
        else:
            parent.append(element)
        parent = element
    return document


def wide_document(width: int) -> Document:
    document = Document()
    root = Element("root")
    document.append(root)
    for _ in range(width):
        root.append(Element("leaf"))
    return document


def small_subtree() -> Element:
    root = Element("new")
    child = Element("inner")
    root.append(child)
    child.append(Element("deep"))
    return root


class TestSpacedLabeling:
    def test_spacing_one_is_the_dense_numbering(self):
        dense = label_document(wide_document(4))
        spaced = label_document(wide_document(4), spacing=1)
        assert np.array_equal(dense.start, spaced.start)
        assert np.array_equal(dense.end, spaced.end)

    def test_spacing_scales_labels_uniformly(self):
        dense = label_document(wide_document(4))
        spaced = label_document(wide_document(4), spacing=8)
        assert np.array_equal(spaced.start, dense.start * 8)
        assert np.array_equal(spaced.end, dense.end * 8)
        assert spaced.max_label == dense.max_label * 8
        spaced.validate()

    def test_spacing_rejected_below_one(self):
        with pytest.raises(ValueError):
            label_forest([wide_document(2)], spacing=0)

    def test_gap_after_last_child(self):
        tree = label_document(wide_document(2), spacing=4)
        lo, hi = gap_after_last_child(tree, 0)
        assert lo == int(tree.end[2])  # last child's end
        assert hi == int(tree.end[0])
        leaf_lo, leaf_hi = gap_after_last_child(tree, 1)
        assert leaf_lo == int(tree.start[1])
        assert leaf_hi == int(tree.end[1])


class TestPlanInsert:
    def test_plan_labels_fit_the_gap_and_nest(self):
        tree = label_document(wide_document(3), spacing=16)
        plan = plan_insert(tree, 0, small_subtree())
        lo, hi = int(tree.end[3]), int(tree.end[0])
        assert np.all(plan.start > lo) and np.all(plan.end < hi)
        assert np.all(plan.start < plan.end)
        # Root of the subtree contains its descendants.
        assert plan.start[0] < plan.start[1] < plan.end[1] < plan.end[0]
        assert plan.position == 4  # after the root's last descendant

    def test_parent_levels_and_indices(self):
        tree = label_document(chain_document(["a", "b"]), spacing=16)
        plan = plan_insert(tree, 1, small_subtree())
        assert plan.level.tolist() == [3, 4, 5]
        assert plan.parent_index.tolist() == [1, 2, 3]

    def test_gap_exhausted_raises(self):
        tree = label_document(wide_document(1), spacing=2)
        with pytest.raises(GapExhausted):
            plan_insert(tree, 0, small_subtree())

    def test_attached_subtree_rejected(self):
        tree = label_document(wide_document(1), spacing=16)
        attached = tree.elements[1]
        with pytest.raises(ValueError):
            plan_insert(tree, 0, attached)

    def test_bad_parent_rejected(self):
        tree = label_document(wide_document(1), spacing=16)
        with pytest.raises(IndexError):
            plan_insert(tree, 99, small_subtree())


class TestSplices:
    def test_insert_then_validate(self):
        document = wide_document(3)
        tree = label_document(document, spacing=16)
        subtree = small_subtree()
        plan = plan_insert(tree, 0, subtree)
        tree.elements[0].append(subtree)
        apply_insert(tree, plan)
        assert len(tree) == 7
        tree.validate()
        assert tree.elements[plan.position] is subtree

    def test_insert_updates_element_index(self):
        tree = label_document(wide_document(2), spacing=16)
        subtree = Element("new")
        _ = tree.index_of(tree.elements[1])  # force the identity index
        plan = plan_insert(tree, 1, subtree)
        tree.elements[1].append(subtree)
        apply_insert(tree, plan)
        assert tree.index_of(subtree) == plan.position

    def test_delete_subtree_slice(self):
        tree = label_document(chain_document(["a", "b", "c"]), spacing=4)
        pos, count = apply_delete(tree, 1)
        assert (pos, count) == (1, 2)
        assert len(tree) == 1
        tree.validate()

    def test_delete_middle_keeps_parent_links(self):
        document = wide_document(3)
        root = document.root_element
        first_leaf = list(root.child_elements())[0]
        first_leaf.append(Element("x"))
        tree = label_document(document, spacing=8)
        apply_delete(tree, 1)  # removes first leaf + its x child
        assert len(tree) == 3
        assert tree.parent_index.tolist() == [-1, 0, 0]
        tree.validate()

    def test_roundtrip_insert_delete_restores_shape(self):
        document = wide_document(2)
        tree = label_document(document, spacing=32)
        before = (tree.start.copy(), tree.end.copy())
        subtree = small_subtree()
        plan = plan_insert(tree, 0, subtree)
        tree.elements[0].append(subtree)
        apply_insert(tree, plan)
        root = document.root_element
        root.children.remove(subtree)
        subtree.parent = None
        apply_delete(tree, plan.position)
        assert np.array_equal(tree.start, before[0])
        assert np.array_equal(tree.end, before[1])
