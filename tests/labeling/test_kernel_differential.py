"""Vectorized splice kernels pinned bit-exact to their sequential
references.

``plan_insert`` was rewritten as flat-array arithmetic (one light DFS,
then :func:`slice_subtree_sizes` + :func:`spread_labels`); the original
enter/exit walk survives as ``_plan_insert_python`` purely so these
tests can assert the kernel emits *identical* plans -- labels, levels,
parent indices, splice position, stride, and the ``GapExhausted``
message -- over random trees and random insertion points.
``rebalance_for_insert`` has no sequential twin; it is pinned by its
invariants instead: only the reported slice's start/end labels move,
everything else is bit-identical, and the retried insert fits.
"""

import random

import numpy as np
import pytest

from repro.labeling.dynamic import (
    GapExhausted,
    _plan_insert_python,
    _spread_labels_python,
    apply_insert,
    plan_insert,
    rebalance_for_insert,
    slice_subtree_sizes,
    spread_labels,
)
from repro.labeling.interval import label_document
from repro.xmltree.tree import Document, Element

TAGS = ["a", "b", "c", "d"]


def random_document(rng: random.Random, nodes: int) -> Document:
    document = Document()
    root = Element("root")
    document.append(root)
    spine = [root]
    for _ in range(nodes - 1):
        child = Element(rng.choice(TAGS))
        rng.choice(spine[-6:]).append(child)
        spine.append(child)
    return document


def random_subtree(rng: random.Random, max_size: int = 7) -> Element:
    root = Element(rng.choice(TAGS))
    spine = [root]
    for _ in range(rng.randrange(max_size)):
        child = Element(rng.choice(TAGS))
        rng.choice(spine).append(child)
        spine.append(child)
    return root


def assert_plans_identical(plan, reference):
    assert plan.position == reference.position
    assert plan.stride == reference.stride
    assert [id(e) for e in plan.elements] == [id(e) for e in reference.elements]
    assert np.array_equal(plan.start, reference.start)
    assert np.array_equal(plan.end, reference.end)
    assert np.array_equal(plan.level, reference.level)
    assert np.array_equal(plan.parent_index, reference.parent_index)


@pytest.mark.parametrize("seed", range(40))
def test_plan_insert_matches_sequential_reference(seed):
    rng = random.Random(seed)
    tree = label_document(
        random_document(rng, rng.randrange(4, 50)),
        spacing=rng.choice([4, 16, 64]),
    )
    for _ in range(6):
        parent = rng.randrange(len(tree))
        subtree = random_subtree(rng)
        position = rng.choice([None, 0, 1, 2, 99])
        try:
            reference = _plan_insert_python(tree, parent, subtree, position)
        except GapExhausted as exc:
            with pytest.raises(GapExhausted) as info:
                plan_insert(tree, parent, subtree, position)
            assert str(info.value) == str(exc)
            continue
        plan = plan_insert(tree, parent, subtree, position)
        assert_plans_identical(plan, reference)
        # Evolve the tree so later iterations plan against spliced state.
        apply_insert(tree, plan)
        tree.validate()


def test_plan_single_node_and_deep_chain_match():
    tree = label_document(random_document(random.Random(7), 10), spacing=32)
    single = Element("a")
    assert_plans_identical(
        plan_insert(tree, 0, single, 0), _plan_insert_python(tree, 0, single, 0)
    )
    chain = Element("a")
    tip = chain
    for _ in range(9):
        nxt = Element("b")
        tip.append(nxt)
        tip = nxt
    assert_plans_identical(
        plan_insert(tree, 0, chain), _plan_insert_python(tree, 0, chain)
    )


def test_slice_subtree_sizes_known_shape():
    # Slice: [x (3 nodes), y leaf, z (2 nodes)] in pre-order.
    depth = np.array([1, 2, 2, 1, 1, 2], dtype=np.int64)
    pslot = np.array([-1, 0, 0, -1, -1, 4], dtype=np.int64)
    assert slice_subtree_sizes(depth, pslot).tolist() == [3, 1, 1, 1, 2, 1]
    assert slice_subtree_sizes(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ).tolist() == []


@pytest.mark.parametrize("seed", range(30))
def test_spread_labels_matches_sequential_walk(seed):
    """The respread kernel (shared by insert planning and local
    rebalance) against the retained enter/exit stack walk, over region
    arrays extracted from real trees, with and without a hole."""
    rng = random.Random(seed)
    tree = label_document(
        random_document(rng, rng.randrange(4, 60)),
        spacing=rng.choice([4, 64]),
    )
    region = rng.randrange(len(tree))
    lo, hi = region + 1, tree.subtree_slice(region).stop
    depth = tree.level[lo:hi] - int(tree.level[region])
    region_parents = tree.parent_index[lo:hi]
    pslot = np.where(region_parents == region, -1, region_parents - lo)
    base = int(tree.start[region])
    stride = rng.randrange(1, 9)
    n = hi - lo
    hole_event = rng.choice([None, 0, max(0, 2 * n - 1), rng.randrange(2 * n + 1)])
    hole_width = 0 if hole_event is None else 2 * rng.randrange(1, 5)
    kernel = spread_labels(depth, pslot, base, stride, hole_event, hole_width)
    reference = _spread_labels_python(
        depth, pslot, base, stride, hole_event, hole_width
    )
    assert np.array_equal(kernel[0], reference[0])
    assert np.array_equal(kernel[1], reference[1])


def exhaust_gap(tree, parent, position=0):
    """Insert single nodes at one child rank until the gap exhausts."""
    while True:
        node = Element("b")
        try:
            plan = plan_insert(tree, parent, node, position)
        except GapExhausted:
            return node
        apply_insert(tree, plan)


@pytest.mark.parametrize("seed", range(30))
def test_rebalance_moves_only_the_reported_slice(seed):
    rng = random.Random(seed)
    tree = label_document(random_document(rng, rng.randrange(6, 40)), spacing=4)
    parent = rng.randrange(len(tree))
    node = exhaust_gap(tree, parent)
    before_start = tree.start
    before_end = tree.end
    before_level = tree.level
    before_parents = tree.parent_index
    before_elements = tree.elements
    before_max = tree.max_label
    region = rebalance_for_insert(tree, parent, 1, 0)
    assert region is not None
    lo, hi = region
    # The region root (lo - 1) is the parent or one of its ancestors.
    assert 0 < lo <= hi <= len(tree)
    assert lo - 1 <= parent < hi
    # Untouched outside the slice; structure untouched everywhere.
    assert np.array_equal(tree.start[:lo], before_start[:lo])
    assert np.array_equal(tree.start[hi:], before_start[hi:])
    assert np.array_equal(tree.end[:lo], before_end[:lo])
    assert np.array_equal(tree.end[hi:], before_end[hi:])
    assert tree.level is before_level
    assert tree.parent_index is before_parents
    assert tree.elements is before_elements
    assert tree.max_label == before_max
    tree.validate()
    # The reserved hole fits the retried insert, which stays valid.
    plan = plan_insert(tree, parent, node, 0)
    apply_insert(tree, plan)
    tree.validate()


def test_rebalance_returns_none_when_no_region_is_wide_enough():
    # Dense labels (spacing 1) leave no slack anywhere in the forest.
    tree = label_document(random_document(random.Random(3), 8), spacing=1)
    assert rebalance_for_insert(tree, 0, 1) is None


def test_rebalance_reserves_hole_at_interior_child_rank():
    document = Document()
    root = Element("root")
    document.append(root)
    for _ in range(4):
        root.append(Element("a"))
    tree = label_document(document, spacing=4)
    exhaust_gap(tree, 0, position=2)
    region = rebalance_for_insert(tree, 0, 2, 2)
    assert region is not None
    tree.validate()
    wide = Element("b")
    wide.append(Element("c"))
    plan = plan_insert(tree, 0, wide, 2)
    apply_insert(tree, plan)
    tree.validate()
