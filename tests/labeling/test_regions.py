"""Region geometry unit tests (paper Figs. 4-5)."""

import pytest

from repro.labeling.interval import IntervalLabel
from repro.labeling.regions import Region, classify_pair, region_of


class TestRegionOf:
    """Anchor cell (2, 5) in an 8x8 grid, per the paper's Fig. 5 layout."""

    ANCHOR = (2, 5)

    @pytest.mark.parametrize(
        "cell,expected",
        [
            ((2, 5), Region.SELF),
            ((3, 4), Region.INSIDE),        # strictly inside (region B/E)
            ((3, 3), Region.INSIDE),        # interior diagonal cell
            ((4, 4), Region.INSIDE),
            ((2, 3), Region.SAME_COL_BELOW),  # region E boundary
            ((2, 4), Region.SAME_COL_BELOW),
            ((3, 5), Region.SAME_ROW_RIGHT),  # region C boundary
            ((4, 5), Region.SAME_ROW_RIGHT),
            ((2, 2), Region.DIAG_LOW),      # region F
            ((5, 5), Region.DIAG_HIGH),     # region D
            ((1, 6), Region.OUTSIDE_ANC),   # region G
            ((0, 7), Region.OUTSIDE_ANC),
            ((2, 6), Region.SAME_COL_ABOVE),
            ((2, 7), Region.SAME_COL_ABOVE),
            ((0, 5), Region.SAME_ROW_LEFT),
            ((1, 5), Region.SAME_ROW_LEFT),
            ((0, 1), Region.UNRELATED),     # disjoint earlier sibling area
            ((6, 7), Region.UNRELATED),     # disjoint later sibling area
            ((0, 3), Region.UNRELATED),     # partially overlapping left
            ((3, 7), Region.UNRELATED),     # partially overlapping right
        ],
    )
    def test_classification(self, cell, expected):
        assert region_of(*self.ANCHOR, *cell) is expected

    def test_on_diagonal_anchor(self):
        # Anchor (3, 3): descendants only in SELF; ancestors above/left.
        assert region_of(3, 3, 3, 3) is Region.SELF
        assert region_of(3, 3, 3, 6) is Region.SAME_COL_ABOVE
        assert region_of(3, 3, 1, 3) is Region.SAME_ROW_LEFT
        assert region_of(3, 3, 1, 6) is Region.OUTSIDE_ANC
        assert region_of(3, 3, 4, 4) is Region.UNRELATED

    def test_adjacent_cells_anchor(self):
        # Anchor (2, 3): no strict interior exists.
        assert region_of(2, 3, 2, 2) is Region.DIAG_LOW
        assert region_of(2, 3, 3, 3) is Region.DIAG_HIGH
        assert region_of(2, 3, 2, 3) is Region.SELF


class TestClassifyPair:
    def test_ancestor(self):
        u = IntervalLabel(1, 10, 1)
        v = IntervalLabel(3, 4, 2)
        assert classify_pair(u, v) == "ancestor"
        assert classify_pair(v, u) == "descendant"

    def test_disjoint(self):
        u = IntervalLabel(1, 2, 1)
        v = IntervalLabel(3, 4, 1)
        assert classify_pair(u, v) == "disjoint"

    def test_self(self):
        u = IntervalLabel(1, 2, 1)
        assert classify_pair(u, IntervalLabel(1, 2, 1)) == "self"


class TestRegionConsistencyWithExactRelation:
    """Guaranteed regions must agree with the exact pair relation.

    For every pair of positions drawn from cells classified INSIDE /
    SAME-COL / SAME-ROW (weight-1 regions), any valid node pair (one in
    the anchor cell, one in the region) must be ancestor/descendant *if
    both can coexist in one tree*.  We verify the geometric direction:
    a point strictly inside the anchor's bucket ranges is always a
    descendant.
    """

    def test_inside_cells_are_guaranteed_descendants(self):
        # Grid over [0, 79], g=8: bucket width 10.  Anchor cell (2, 5)
        # covers starts in [20,30), ends in [50,60).
        ancestor = IntervalLabel(20, 59, 1)   # extreme corners of anchor
        ancestor2 = IntervalLabel(29, 50, 1)
        for inside in [IntervalLabel(30, 49, 2), IntervalLabel(39, 40, 2)]:
            for anchor_point in (ancestor, ancestor2):
                assert classify_pair(anchor_point, inside) == "ancestor"
