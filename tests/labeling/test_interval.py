"""Interval labeling unit tests (paper Section 3.1 invariants)."""

import numpy as np
import pytest

from repro.labeling.interval import IntervalLabel, label_document, label_forest
from repro.xmltree.builder import element
from repro.xmltree.tree import Document


def doc_of(root) -> Document:
    doc = Document()
    doc.append(root)
    return doc


@pytest.fixture
def small_tree():
    return label_document(
        doc_of(element("a", element("b", element("c")), element("d")))
    )


class TestLabelInvariants:
    def test_start_strictly_less_than_end(self, small_tree):
        assert np.all(small_tree.start < small_tree.end)

    def test_preorder_start_labels(self, small_tree):
        assert list(small_tree.start) == sorted(small_tree.start)

    def test_ancestor_contains_descendant(self, small_tree):
        # a=0, b=1, c=2, d=3 in pre-order
        assert small_tree.is_ancestor(0, 1)
        assert small_tree.is_ancestor(0, 2)
        assert small_tree.is_ancestor(1, 2)
        assert small_tree.is_ancestor(0, 3)
        assert not small_tree.is_ancestor(1, 3)
        assert not small_tree.is_ancestor(3, 1)
        assert not small_tree.is_ancestor(2, 2)

    def test_levels(self, small_tree):
        assert list(small_tree.level) == [1, 2, 3, 2]

    def test_parent_index(self, small_tree):
        assert list(small_tree.parent_index) == [-1, 0, 1, 0]

    def test_validate_passes(self, small_tree):
        small_tree.validate()

    def test_labels_start_at_one(self, small_tree):
        assert int(small_tree.start[0]) == 1

    def test_max_label_bounds_all(self, small_tree):
        assert small_tree.max_label > int(small_tree.end.max())


class TestSiblingDisjointness:
    def test_sibling_intervals_disjoint(self, small_tree):
        b = small_tree.label_of(1)
        d = small_tree.label_of(3)
        assert b.disjoint(d)
        assert not b.contains(d)
        assert not d.contains(b)

    def test_nested_containment(self, small_tree):
        a = small_tree.label_of(0)
        c = small_tree.label_of(2)
        assert a.contains(c)
        assert not c.contains(a)


class TestForestLabeling:
    def test_two_documents_share_one_label_space(self):
        doc1 = doc_of(element("x", element("y")))
        doc2 = doc_of(element("z"))
        tree = label_forest([doc1, doc2])
        assert len(tree) == 3
        # Document roots are disjoint siblings under the dummy root.
        x, z = tree.label_of(0), tree.label_of(2)
        assert x.disjoint(z)
        assert list(tree.parent_index) == [-1, 0, -1]
        tree.validate()

    def test_forest_preserves_document_order(self):
        doc1 = doc_of(element("x"))
        doc2 = doc_of(element("z"))
        tree = label_forest([doc1, doc2])
        assert [e.tag for e in tree.elements] == ["x", "z"]
        assert tree.start[0] < tree.start[1]


class TestSubtreeSlice:
    def test_slice_covers_descendants(self, small_tree):
        assert small_tree.subtree_slice(0) == slice(0, 4)
        assert small_tree.subtree_slice(1) == slice(1, 3)
        assert small_tree.subtree_slice(2) == slice(2, 3)
        assert small_tree.subtree_slice(3) == slice(3, 4)


class TestIndexOf:
    def test_index_of_round_trips(self, small_tree):
        for i, el in enumerate(small_tree.elements):
            assert small_tree.index_of(el) == i


class TestIntervalLabel:
    def test_contains_is_strict(self):
        outer = IntervalLabel(1, 10, 1)
        same = IntervalLabel(1, 10, 1)
        inner = IntervalLabel(2, 9, 2)
        assert outer.contains(inner)
        assert not outer.contains(same)
        assert not inner.contains(outer)

    def test_disjoint(self):
        a = IntervalLabel(1, 3, 1)
        b = IntervalLabel(4, 6, 1)
        assert a.disjoint(b) and b.disjoint(a)
        assert not a.disjoint(IntervalLabel(2, 5, 1))


class TestDeepTree:
    def test_deep_chain_labels(self):
        root = element("n")
        node = root
        for _ in range(3000):
            child = element("n")
            node.append(child)
            node = child
        tree = label_document(doc_of(root))
        assert len(tree) == 3001
        # Innermost node nested inside everything.
        assert tree.is_ancestor(0, 3000)
        assert int(tree.level[-1]) == 3001
