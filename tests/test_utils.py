"""Utility module tests: timing and table rendering."""

import time

import pytest

from repro.utils.tables import format_table
from repro.utils.timing import Timer, median_time, time_call


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_time_call_returns_result(self):
        result, elapsed = time_call(lambda: 42)
        assert result == 42
        assert elapsed >= 0.0

    def test_median_time(self):
        result, elapsed = median_time(lambda: "x", repeats=3)
        assert result == "x"
        assert elapsed >= 0.0

    def test_median_time_validates_repeats(self):
        with pytest.raises(ValueError):
            median_time(lambda: 1, repeats=0)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["Name", "Count"],
            [["article", 7366], ["author", 41501]],
            title="Table 1",
        )
        assert "Table 1" in text
        assert "article" in text
        assert "7,366" in text
        assert "41,501" in text
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # aligned

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000344]])
        assert "0.000344" in text

    def test_inf_and_nan_render_na(self):
        text = format_table(["x", "y"], [[float("inf"), float("nan")]])
        assert text.count("N/A") == 2

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_numeric_right_alignment(self):
        text = format_table(["n"], [[1], [1000000]])
        rows = [l for l in text.splitlines() if l.startswith("|")][1:]
        assert rows[1].index("1,000,000") <= rows[0].index("1")
