"""Fault injection and hardened storage failure paths.

Four layers:

* :class:`~repro.service.faults.FaultPlan` in isolation -- Nth-hit and
  probabilistic schedules, byte gates, determinism/replayability of a
  seeded plan, torn-write mediation;
* the service under injected storage faults -- a WAL append/fsync
  failure rolls back the in-flight group *bit-exactly* (differential
  against a control service), degrades the service to sticky read-only
  where reads keep serving and mutations get coded ``read_only``
  errors, and ``resume_writes`` re-probes the device and re-admits
  writes (or refuses while the outage persists);
* the admission engine end-to-end: a seeded fsync failure mid-burst,
  checked differentially, plus ``health``/``resume`` ops;
* the satellite sweep: an injected ``OSError`` at *every* storage
  fault point reachable during appends, checkpoints, and compactions
  must never leave partial state visible to ``open_durable``.
"""

import errno
import random
import shutil

import numpy as np
import pytest

from repro.service import EstimationService, FaultPlan, FaultRule, ReadOnlyError
from repro.service.faults import (
    CKPT_FSYNC,
    CKPT_RENAME,
    CKPT_WRITE,
    DIR_FSYNC,
    STORAGE_POINTS,
    WAL_FSYNC,
    WAL_WRITE,
)
from repro.service.server import ServiceEngine
from repro.service.wal import read_records
from tests.service.test_batch import QUERIES, prime, random_document, random_subtree
from tests.service.test_wal import assert_state, make_durable, state_of


def make_faulty(directory, plan, **kwargs):
    service = make_durable(directory, **kwargs)
    service.attach_fault_plan(plan)
    return service


class TestFaultPlan:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan.failing("wal.fsync", nth=3)
        for hit in range(1, 7):
            rule = plan.check("wal.fsync")
            assert (rule is not None) == (hit == 3)
        assert [f.hit for f in plan.fired] == [3]

    def test_outage_fires_from_nth_onwards(self):
        plan = FaultPlan.outage("wal.fsync", after=2)
        fired = [plan.check("wal.fsync") is not None for _ in range(6)]
        assert fired == [False, False, True, True, True, True]

    def test_points_are_independent_counters(self):
        plan = FaultPlan.failing("wal.fsync", nth=1)
        assert plan.check("wal.write") is None
        assert plan.check("ckpt.write") is None
        assert plan.check("wal.fsync") is not None

    def test_after_byte_gates_the_trigger(self):
        plan = FaultPlan(
            [FaultRule("wal.write", probability=1.0, after_byte=100, count=None)]
        )
        assert plan.check("wal.write", nbytes=60) is None  # 0 seen before
        assert plan.check("wal.write", nbytes=60) is None  # 60 seen
        assert plan.check("wal.write", nbytes=60) is not None  # 120 seen

    def test_probability_draws_are_seed_deterministic(self):
        def draws(seed):
            plan = FaultPlan(
                [FaultRule("net.send", probability=0.5, count=None)], seed=seed
            )
            return [plan.check("net.send") is not None for _ in range(32)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert any(draws(7)) and not all(draws(7))

    def test_clear_rearms_identically(self):
        plan = FaultPlan(
            [FaultRule("wal.fsync", probability=0.4, count=None)], seed=3
        )
        first = [plan.check("wal.fsync") is not None for _ in range(20)]
        plan.clear()
        assert [plan.check("wal.fsync") is not None for _ in range(20)] == first

    def test_intercept_write_torn_is_a_strict_prefix(self):
        plan = FaultPlan([FaultRule("wal.write", nth=1, action="torn",
                                    torn_fraction=0.5)])
        data = bytes(range(100))
        prefix, error = plan.intercept_write("wal.write", data)
        assert error is not None
        assert 0 < len(prefix) < len(data)
        assert data.startswith(prefix)

    def test_intercept_write_error_writes_nothing(self):
        plan = FaultPlan.failing("wal.write", nth=1, errno=errno.ENOSPC)
        prefix, error = plan.intercept_write("wal.write", b"payload")
        assert prefix == b""
        assert error.errno == errno.ENOSPC

    def test_fire_raises_with_configured_errno(self):
        plan = FaultPlan.failing("dir.fsync", nth=1, errno=errno.ENOSPC)
        with pytest.raises(OSError) as excinfo:
            plan.fire("dir.fsync")
        assert excinfo.value.errno == errno.ENOSPC
        assert "dir.fsync" in str(excinfo.value)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("wal.write", nth=0)
        with pytest.raises(ValueError):
            FaultRule("wal.write", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule("wal.write", action="explode")


class TestStorageDegradation:
    """A WAL failure degrades the service instead of corrupting it."""

    def test_failed_append_rolls_back_exactly(self, tmp_path):
        """Nothing applied, state bit-identical to the pre-op state."""
        service = make_faulty(tmp_path / "wal", FaultPlan.failing(WAL_FSYNC, nth=1))
        before = state_of(service)
        rng = random.Random(5)
        with pytest.raises(ReadOnlyError):
            service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        assert service.degraded
        assert_state(service, before)
        service.close()

    def test_torn_append_rolls_back_exactly(self, tmp_path):
        plan = FaultPlan([FaultRule(WAL_WRITE, nth=1, action="torn")])
        service = make_faulty(tmp_path / "wal", plan)
        before = state_of(service)
        rng = random.Random(5)
        with pytest.raises(ReadOnlyError):
            service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        assert service.degraded
        assert_state(service, before)
        service.close()

    def test_degraded_mode_is_sticky_and_read_only(self, tmp_path):
        service = make_faulty(tmp_path / "wal", FaultPlan.failing(WAL_FSYNC, nth=1))
        rng = random.Random(5)
        with pytest.raises(ReadOnlyError):
            service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        # Reads keep serving from the last durable epoch...
        for query in QUERIES:
            assert service.estimate(query).value >= 0.0
        snap = service.snapshot()
        assert snap.estimate(QUERIES[0]).value >= 0.0
        snap.close()
        # ...while every mutation path stays refused, without touching
        # the (failed) device again.
        with pytest.raises(ReadOnlyError):
            service.delete_subtree(service.tree.elements[1])
        with pytest.raises(ReadOnlyError):
            service.apply_batch([("delete", service.tree.elements[1])])
        with pytest.raises(ReadOnlyError):
            service.checkpoint()
        service.close()

    def test_policy_off_surfaces_the_raw_error(self, tmp_path):
        service = make_faulty(tmp_path / "wal", FaultPlan.failing(WAL_FSYNC, nth=1))
        service.read_only_on_wal_error = False
        rng = random.Random(5)
        with pytest.raises(OSError) as excinfo:
            service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        assert not isinstance(excinfo.value, ReadOnlyError)
        assert not service.degraded
        service.close()

    def test_resume_reprobes_and_readmits(self, tmp_path):
        service = make_faulty(tmp_path / "wal", FaultPlan.failing(WAL_FSYNC, nth=1))
        rng = random.Random(5)
        with pytest.raises(ReadOnlyError):
            service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        assert service.degraded
        result = service.resume_writes()
        assert result["resumed"] and result["mode"] == "SERVING"
        assert not service.degraded
        # Writes work again and are durable.
        service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        after = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, after)
        recovered.close()

    def test_resume_refuses_while_outage_persists(self, tmp_path):
        plan = FaultPlan.outage(WAL_FSYNC)
        service = make_faulty(tmp_path / "wal", plan)
        rng = random.Random(5)
        with pytest.raises(ReadOnlyError):
            service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        with pytest.raises(ReadOnlyError, match="probe"):
            service.resume_writes()
        assert service.degraded
        # Device recovers -> resume succeeds.
        plan.clear()
        plan.rules.clear()
        assert service.resume_writes()["resumed"]
        assert not service.degraded
        service.close()

    def test_resume_after_torn_append_truncates_the_tail(self, tmp_path):
        plan = FaultPlan([FaultRule(WAL_WRITE, nth=1, action="torn")])
        service = make_faulty(tmp_path / "wal", plan)
        rng = random.Random(5)
        with pytest.raises(ReadOnlyError):
            service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        assert service.resume_writes()["resumed"]
        # The torn record is gone from the log; the next append lands
        # on a clean tail and every record stays fully readable.
        service.insert_subtree(service.tree.elements[0], random_subtree(rng))
        after = state_of(service)
        service._wal.sync()
        _, valid_end = read_records(service._wal.path)
        assert valid_end == service._wal.path.stat().st_size
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, after)
        recovered.close()

    def test_checkpoint_failure_after_commit_degrades_not_fails(self, tmp_path):
        """The op is durable (logged + applied): report success, degrade."""
        service = make_faulty(
            tmp_path / "wal",
            FaultPlan.failing(CKPT_WRITE, nth=1),
            checkpoint_every=1,  # every commit wants a checkpoint
        )
        rng = random.Random(5)
        result = service.insert_subtree(
            service.tree.elements[0], random_subtree(rng)
        )
        assert result.nodes >= 1  # the op itself succeeded
        assert service.degraded  # ...but the service is degraded
        after = state_of(service)
        service.close()
        # The logged-but-not-checkpointed batch replays at recovery.
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, after)
        recovered.close()


class TestEngineDegradation:
    """The admission engine under a seeded mid-burst fsync failure."""

    def test_mid_burst_failure_differential(self, tmp_path):
        """Ops before the fault land; the faulted group rolls back
        bit-exactly; reads keep serving; resume re-admits writes --
        checked differentially against a control service."""
        def render(element):
            inner = "".join(
                render(child) for child in element.children
                if hasattr(child, "tag")
            )
            return f"<{element.tag}>{inner}</{element.tag}>"

        rng = random.Random(11)
        subtrees = [random_subtree(rng) for _ in range(8)]

        control = make_durable(tmp_path / "control", seed=7)
        victim = make_faulty(
            tmp_path / "victim", FaultPlan.failing(WAL_FSYNC, nth=3), seed=7
        )
        engine = ServiceEngine(victim)
        try:
            outcomes = []
            for subtree in subtrees:
                response = engine.request({
                    "op": "insert",
                    "parent": {"tag": "root"},
                    "xml": render(subtree),
                })
                outcomes.append(response)
            # The engine stays up; mode reflects the degradation.
            health = engine.request({"op": "health"})
            assert health["ok"] and health["mode"] == "DEGRADED"
            assert "degraded_reason" in health
            # Failed ops carry the coded error.
            failed = [r for r in outcomes if not r["ok"]]
            assert failed and all(
                r["error"]["code"] == "read_only" for r in failed
            )
            # Control applies exactly the acknowledged ops.  Inserting
            # via the same XML round-trip keeps it bit-comparable.
            from repro.xmltree.parser import parse_document

            for response, subtree in zip(outcomes, subtrees):
                if response["ok"]:
                    snippet = parse_document(render(subtree))
                    detached = snippet.root_element
                    snippet.children.remove(detached)
                    detached.parent = None
                    control.insert_subtree(
                        control.tree.elements[0], detached
                    )
            assert_state(victim, state_of(control))
            # Reads keep serving in DEGRADED mode.
            estimate = engine.request(
                {"op": "estimate", "query": QUERIES[0]}
            )
            assert estimate["ok"]
            # Operator resume: writes flow again.
            resumed = engine.request({"op": "resume"})
            assert resumed["ok"] and resumed["resumed"]
            assert engine.request({"op": "health"})["mode"] == "SERVING"
            late = engine.request({
                "op": "insert",
                "parent": {"tag": "root"},
                "xml": "<late/>",
            })
            assert late["ok"]
        finally:
            engine.close()
            victim.close()
            control.close()

    def test_health_reports_serving_and_wal_lag(self, tmp_path):
        service = make_durable(tmp_path / "wal", checkpoint_every=10**9)
        engine = ServiceEngine(service)
        try:
            health = engine.request({"op": "health"})
            assert health["ok"] and health["mode"] == "SERVING"
            assert health["wal"]["attached"]
            lag_before = health["wal"]["lag"]
            engine.request({
                "op": "insert", "parent": {"tag": "root"}, "xml": "<x/>",
            })
            health = engine.request({"op": "health"})
            assert health["wal"]["lag"] == lag_before + 1
            assert health["queue_depth"] == 0
            assert health["epoch"] >= 1
        finally:
            engine.close()
            service.close()


def checkpoint_fingerprint(directory):
    return sorted(p.name for p in directory.glob("ckpt-*"))


class TestOSErrorAtEveryStep:
    """Satellite sweep: inject an OSError at the Nth hit of every
    storage fault point, for every N reachable in a seeded workload;
    whatever the live service reported, ``open_durable`` must recover a
    consistent service with no partial record or checkpoint visible."""

    def run_workload(self, service):
        """A workload touching appends, checkpoints, and compaction.
        Returns the last state an acknowledged operation produced."""
        rng = random.Random(23)
        acked = state_of(service)
        for step in range(6):
            try:
                if step == 3:
                    service.checkpoint(full=True)
                elif step == 5:
                    service.compact()
                else:
                    service.apply_batch([
                        ("insert", service.tree.elements[0], random_subtree(rng)),
                    ])
                    acked = state_of(service)
            except (OSError, ReadOnlyError):
                break
        return acked

    def count_hits(self, tmp_path):
        counter = FaultPlan()  # no rules: pure hit counter
        service = make_faulty(
            tmp_path / "count", counter, checkpoint_every=2
        )
        self.run_workload(service)
        service.close()
        shutil.rmtree(tmp_path / "count")
        return {point: counter.hits(point) for point in STORAGE_POINTS}

    def test_every_step(self, tmp_path):
        hits = self.count_hits(tmp_path)
        assert sum(hits.values()) > 0
        cases = 0
        for point, total in hits.items():
            for nth in range(1, total + 1):
                cases += 1
                workdir = tmp_path / f"{point.replace('.', '_')}-{nth}"
                service = make_faulty(
                    workdir, FaultPlan.failing(point, nth=nth),
                    checkpoint_every=2,
                )
                acked = self.run_workload(service)
                live_state = state_of(service)
                try:
                    service.close()
                except OSError:
                    # The injected fault hit the closing flush itself: a
                    # crash-at-close.  Already-acked ops were logged
                    # with their own fsyncs, so recovery still must
                    # reproduce the live state (lost commit markers
                    # only turn into redo work).
                    pass
                recovered = EstimationService.open_durable(workdir)
                # Recovery must be consistent: every durably acked op
                # present, nothing half-applied.  When the live service
                # stayed coherent (it always should), recovery matches
                # the live state exactly; `acked` is the floor.
                assert_state(recovered, live_state)
                recovered.close()
                shutil.rmtree(workdir)
        assert cases == sum(hits.values())
