"""Batch update application: batched == sequential, pinned differentially.

The contract: ``apply_batch(ops)`` leaves the database in exactly the
state sequential application of ``ops`` produces -- same element
structure always, bit-identical labels / statistics / estimates
whenever neither side performed a full rebuild (rebuild *timing* is the
one documented divergence: the batch evaluates the dirty threshold once
per batch, sequential application once per update, and rebuilds
re-bucket the label space).  On top of the equivalence property, both
sides must independently pass ``differential_check`` -- every
maintained structure bit-identical to a from-scratch build -- after
every sequence.

120 random sequences (3 configurations x 40 seeds) exercise mixed
inserts (at random child positions) and deletes, including inserts
under nodes inserted earlier in the same batch and deletes of nodes
inserted earlier in the same batch.
"""

import random

import numpy as np
import pytest

from repro.predicates.base import TagPredicate
from repro.service import BatchError, DeleteOp, EstimationService, InsertOp
from repro.xmltree.tree import Document, Element

TAGS = ["a", "b", "c", "d", "e"]
QUERIES = ["//a//b", "//b//c", "//root//d", "//a//a", "//c//e", "//e//b"]


def random_document(rng: random.Random, nodes: int) -> Document:
    document = Document()
    root = Element("root")
    document.append(root)
    spine = [root]
    for _ in range(nodes - 1):
        parent = rng.choice(spine[-8:])
        child = Element(rng.choice(TAGS))
        parent.append(child)
        spine.append(child)
    return document


def random_subtree(rng: random.Random) -> Element:
    size = rng.randrange(1, 6)
    root = Element(rng.choice(TAGS))
    spine = [root]
    for _ in range(size - 1):
        child = Element(rng.choice(TAGS))
        rng.choice(spine).append(child)
        spine.append(child)
    return root


def clone_subtree(element: Element) -> Element:
    clone = Element(element.tag, element.attributes)
    for child in element.children:
        if isinstance(child, Element):
            clone.append(clone_subtree(child))
    return clone


def prime(service: EstimationService) -> None:
    service.estimate_many(QUERIES)
    for tag in TAGS:
        predicate = TagPredicate(tag)
        service.position_histogram(predicate)
        service.coverage_histogram(predicate)
        service.estimator.level_histogram(predicate)
    _ = service.estimator.true_histogram


def make_pair(seed: int, grid_size: int, spacing: int, threshold: float):
    """Two identical primed services over independently built but equal
    documents."""
    services = []
    for _ in range(2):
        document = random_document(random.Random(seed), 50)
        service = EstimationService(
            document,
            grid_size=grid_size,
            spacing=spacing,
            rebuild_threshold=threshold,
        )
        prime(service)
        services.append(service)
    return services


def record_sequence(service: EstimationService, rng: random.Random, ops: int):
    """Apply a random valid sequence to ``service`` one op at a time,
    returning the recorded (replayable) operation descriptions."""
    recorded = []
    for _ in range(ops):
        if rng.random() < 0.7 or len(service) < 12:
            target = rng.randrange(len(service))
            subtree = random_subtree(rng)
            position = rng.choice([None, 0, 1, 2])
            recorded.append(("insert", target, subtree, position))
            service.insert_subtree(target, clone_subtree(subtree), position=position)
        else:
            target = rng.randrange(1, len(service))
            recorded.append(("delete", target))
            service.delete_subtree(target)
    return recorded


CONFIGS = [
    # (grid_size, spacing, rebuild_threshold, ops)
    (5, 64, 0.95, 8),
    (6, 256, 0.9, 12),
    (4, 16, 0.5, 8),  # small gaps + low threshold: mid-batch rebuilds
]


@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
@pytest.mark.parametrize("seed", range(40))
def test_batched_matches_sequential(config_index, seed):
    grid_size, spacing, threshold, ops = CONFIGS[config_index]
    sequential, batched = make_pair(seed, grid_size, spacing, threshold)
    recorded = record_sequence(
        sequential, random.Random(5000 * config_index + seed), ops
    )
    result = batched.apply_batch(
        [
            InsertOp(op[1], clone_subtree(op[2]), op[3])
            if op[0] == "insert"
            else DeleteOp(op[1])
            for op in recorded
        ]
    )
    # Structure is always identical, rebuilds or not.
    assert [e.tag for e in sequential.tree.elements] == [
        e.tag for e in batched.tree.elements
    ]
    assert np.array_equal(
        sequential.tree.parent_index, batched.tree.parent_index
    )
    # Both sides uphold the maintenance contract independently.
    sequential.differential_check(QUERIES)
    batched.differential_check(QUERIES)
    if sequential.stats.rebuilds == 0 and not result.rebuilt:
        # No re-bucketing anywhere: labels and estimates are bit-equal.
        assert np.array_equal(sequential.tree.start, batched.tree.start)
        assert np.array_equal(sequential.tree.end, batched.tree.end)
        for query in QUERIES:
            assert (
                sequential.estimate(query).value == batched.estimate(query).value
            )


def test_insert_under_node_inserted_in_same_batch():
    service, reference = make_pair(1, 5, 64, 0.95)
    parent = Element("a")
    child = Element("b")
    grandchild = Element("c")
    service.apply_batch(
        [
            InsertOp(0, parent),
            InsertOp(parent, child),
            InsertOp(child, grandchild, 0),
        ]
    )
    reference.insert_subtree(0, clone_subtree(parent))
    assert [e.tag for e in service.tree.elements] == [
        e.tag for e in reference.tree.elements
    ]
    service.differential_check(QUERIES)


def test_delete_of_node_inserted_in_same_batch_coalesces():
    service, _ = make_pair(2, 5, 64, 0.95)
    baseline = {q: service.estimate(q).value for q in QUERIES}
    doomed = random_subtree(random.Random(3))
    result = service.apply_batch([InsertOp(0, doomed), DeleteOp(doomed)])
    assert not result.rebuilt
    service.differential_check(QUERIES)
    for query, value in baseline.items():
        assert service.estimate(query).value == value


def test_delete_by_element_handle_after_shifting_inserts():
    """Element handles stay valid however earlier batch ops shift the
    numbering."""
    service, reference = make_pair(3, 5, 64, 0.95)
    victim = service.tree.elements[len(service) // 2]
    ref_victim = reference.tree.elements[len(reference) // 2]
    filler = [InsertOp(0, Element("e"), 0) for _ in range(3)]
    service.apply_batch(filler + [DeleteOp(victim)])
    for op in [InsertOp(0, Element("e"), 0) for _ in range(3)]:
        reference.insert_subtree(op.parent, op.subtree, position=op.position)
    reference.delete_subtree(ref_victim)
    assert [e.tag for e in service.tree.elements] == [
        e.tag for e in reference.tree.elements
    ]
    service.differential_check(QUERIES)


def test_batch_gap_exhaustion_relabels_and_stays_consistent():
    document = Document()
    root = Element("root")
    document.append(root)
    root.append(Element("a"))
    service = EstimationService(document, grid_size=4, spacing=2, rebuild_threshold=0.9)
    prime(service)
    # spacing 2 leaves 1-label gaps: the batch must relabel mid-flight.
    result = service.apply_batch(
        [InsertOp(0, Element("b")), InsertOp(0, Element("c"))]
    )
    assert result.rebuilt
    assert service.stats.rebuilds >= 1
    service.differential_check(["//root//a", "//root//b", "//root//c"])


def test_batch_dirty_threshold_triggers_one_rebuild_at_end():
    service, _ = make_pair(4, 5, 512, 0.05)
    rng = random.Random(11)
    result = service.apply_batch(
        [InsertOp(rng.randrange(len(service)), random_subtree(rng)) for _ in range(8)]
    )
    assert result.rebuilt
    assert service.stats.rebuilds == 1  # once per batch, not per op
    service.differential_check(QUERIES)


def capture_state(service):
    return (
        [e.tag for e in service.tree.elements],
        service.tree.start.copy(),
        service.tree.end.copy(),
        service.tree.parent_index.copy(),
        {q: service.estimate(q).value for q in QUERIES},
        {q: service.real_answer(q) for q in QUERIES},
    )


def assert_pre_batch_state(service, state):
    """The service is bit-identical to its pre-batch capture."""
    tags, start, end, parents, estimates, real = state
    assert [e.tag for e in service.tree.elements] == tags
    assert np.array_equal(service.tree.start, start)
    assert np.array_equal(service.tree.end, end)
    assert np.array_equal(service.tree.parent_index, parents)
    for query in QUERIES:
        assert service.estimate(query).value == estimates[query], query
        assert service.real_answer(query) == real[query], query
    service.differential_check(QUERIES)


def test_batch_error_mid_batch_rolls_back_whole_batch():
    service, _ = make_pair(5, 5, 64, 0.95)
    attached = Element("zz")
    service.tree.elements[0].append(attached)  # not via the service
    service.rebuild()  # resync after the out-of-band edit
    before = capture_state(service)
    with pytest.raises(BatchError) as excinfo:
        service.apply_batch(
            [InsertOp(0, Element("b")), InsertOp(0, attached)]  # not detached
        )
    assert excinfo.value.applied is False
    # The whole batch -- including the completed prefix -- was undone.
    assert service.catalog.stats(TagPredicate("zz")).count == 1  # pre-batch
    assert_pre_batch_state(service, before)


def test_batch_first_op_error_leaves_service_untouched():
    service, _ = make_pair(6, 5, 64, 0.95)
    before = capture_state(service)
    with pytest.raises(IndexError):
        service.apply_batch([DeleteOp(10**9)])
    assert_pre_batch_state(service, before)


class TestMidBatchFaultInjection:
    """Force a failure in every phase of ``BatchApplier.apply`` and pin
    the rollback contract: the service ends bit-identical to its
    pre-batch state, with every maintained summary untouched."""

    def make(self, seed=21):
        service, _ = make_pair(seed, 5, 64, 0.95)
        return service, capture_state(service)

    def prefix(self):
        """Two valid leading ops so the failure hits mid-batch."""
        return [
            InsertOp(0, Element("b")),
            InsertOp(0, Element("c"), 0),
        ]

    def test_resolve_phase_bad_index(self):
        service, before = self.make(21)
        with pytest.raises(BatchError) as excinfo:
            service.apply_batch(self.prefix() + [DeleteOp(10**9)])
        assert excinfo.value.applied is False
        assert_pre_batch_state(service, before)

    def test_resolve_phase_foreign_element(self):
        service, before = self.make(22)
        with pytest.raises(BatchError):
            service.apply_batch(self.prefix() + [DeleteOp(Element("nowhere"))])
        assert_pre_batch_state(service, before)

    def test_resolve_phase_target_deleted_earlier_in_batch(self):
        service, before = self.make(23)
        doomed = random_subtree(random.Random(9))
        with pytest.raises(BatchError, match="deleted earlier"):
            service.apply_batch(
                [InsertOp(0, doomed), DeleteOp(doomed), InsertOp(doomed, Element("e"))]
            )
        assert_pre_batch_state(service, before)

    def test_validation_phase_attached_subtree(self):
        service, before = self.make(24)
        attached = service.tree.elements[3]
        with pytest.raises(BatchError):
            service.apply_batch(self.prefix() + [InsertOp(0, attached)])
        assert_pre_batch_state(service, before)

    def test_plan_phase_negative_position(self):
        service, before = self.make(25)
        with pytest.raises(BatchError):
            service.apply_batch(
                self.prefix() + [InsertOp(0, Element("d"), -3)]
            )
        assert_pre_batch_state(service, before)

    def test_insert_splice_phase(self, monkeypatch):
        """A crash half-way through an insert op -- after the subtree is
        attached to the document but before the label splice -- still
        rolls back cleanly."""
        import repro.service.batch as batch_module

        service, before = self.make(26)
        calls = {"n": 0}
        real_apply_insert = batch_module.apply_insert

        def flaky(tree, plan):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("injected splice failure")
            return real_apply_insert(tree, plan)

        monkeypatch.setattr(batch_module, "apply_insert", flaky)
        with pytest.raises(BatchError, match="injected splice failure"):
            service.apply_batch(
                self.prefix() + [InsertOp(0, random_subtree(random.Random(3)))]
            )
        assert_pre_batch_state(service, before)

    def test_delete_splice_phase(self, monkeypatch):
        """A crash half-way through a delete op -- after the element is
        detached from its parent -- restores it at its original slot."""
        import repro.service.batch as batch_module

        service, before = self.make(27)

        def exploding(tree, index):
            raise RuntimeError("injected delete failure")

        monkeypatch.setattr(batch_module, "apply_delete", exploding)
        with pytest.raises(BatchError, match="injected delete failure"):
            service.apply_batch(self.prefix() + [DeleteOp(5)])
        assert_pre_batch_state(service, before)

    def test_failure_after_mid_batch_relabel_restores_original_labels(self):
        """Gap exhaustion relabels the whole forest mid-batch; a later
        failure must still roll back to the *pre-relabel* labels."""
        document = Document()
        root = Element("root")
        document.append(root)
        root.append(Element("a"))
        service = EstimationService(
            document, grid_size=4, spacing=2, rebuild_threshold=0.9
        )
        prime(service)
        before = capture_state(service)
        # spacing 2 leaves 1-label gaps: the second insert forces the
        # mid-batch relabel, the third op then fails.
        with pytest.raises(BatchError):
            service.apply_batch(
                [
                    InsertOp(0, Element("b")),
                    InsertOp(0, Element("c")),
                    DeleteOp(10**9),
                ]
            )
        assert_pre_batch_state(service, before)

    def test_flush_phase_failure_keeps_batch_and_rebuilds(self, monkeypatch):
        """A failure in summary maintenance (after every op applied)
        keeps the post-batch documents and repairs with a rebuild;
        ``BatchError.applied`` reports the difference."""
        from repro.service.batch import BatchApplier

        service, _ = self.make(28)
        rebuilds_before = service.stats.rebuilds

        def exploding_flush(self):
            raise AssertionError("injected flush failure")

        monkeypatch.setattr(BatchApplier, "_flush_deltas", exploding_flush)
        with pytest.raises(BatchError, match="injected flush failure") as excinfo:
            service.apply_batch(self.prefix())
        assert excinfo.value.applied is True
        assert service.stats.rebuilds == rebuilds_before + 1
        # The batch's ops stayed applied and the rebuild restored
        # consistency.
        assert service.catalog.stats(TagPredicate("b")).count >= 1
        service.differential_check(QUERIES)


def test_empty_batch_is_a_noop():
    service, _ = make_pair(7, 5, 64, 0.95)
    result = service.apply_batch([])
    assert result.ops == 0 and not result.rebuilt
    assert service.stats.batches == 0
    service.differential_check(QUERIES)


def test_batch_accepts_plain_tuples():
    service, reference = make_pair(8, 5, 64, 0.95)
    sub = random_subtree(random.Random(2))
    service.apply_batch(
        [("insert", 0, clone_subtree(sub), 1), ("delete", len(service) // 2)]
    )
    reference.insert_subtree(0, clone_subtree(sub), position=1)
    reference.delete_subtree(len(reference) // 2)
    assert [e.tag for e in service.tree.elements] == [
        e.tag for e in reference.tree.elements
    ]
    service.differential_check(QUERIES)


def test_batch_reports_net_and_gross_counts():
    service, _ = make_pair(9, 5, 64, 0.95)
    doomed = Element("a")
    result = service.apply_batch(
        [InsertOp(0, doomed), InsertOp(0, Element("b")), DeleteOp(doomed)]
    )
    assert result.ops == 3
    assert result.inserts == 2 and result.deletes == 1
    assert result.nodes_inserted == 2 and result.nodes_deleted == 1
    assert service.stats.batches == 1
    service.differential_check(QUERIES)
