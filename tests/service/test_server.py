"""Concurrent serve tier: admission batching + TCP front-end.

Three layers are exercised:

* :class:`~repro.service.server.ServiceEngine` directly -- the
  single-writer admission batcher: coalescing, per-op attribution when
  a grouped flush fails (state as if the failing ops were never
  admitted, checked differentially against a control service),
  session-disconnect cancellation, barrier semantics, pinned
  snapshots;
* :class:`~repro.service.server.EstimationServer` +
  :class:`~repro.service.client.ServiceClient` over real sockets --
  round trips for every op, pipelining order, the malformed-frame
  fuzz (one error frame per bad line, connection intact), concurrent
  clients coalescing into shared admission batches, mid-batch
  disconnect, graceful shutdown;
* the differential acceptance check: concurrent-client outcomes are
  bit-identical to a single-caller control service applying the same
  acknowledged operations.
"""

import json
import random
import socket
import threading
import time

import pytest

from repro.predicates.base import TagPredicate
from repro.service import (
    EstimationService,
    MAX_LINE_BYTES,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import decode_frame, encode_frame
from repro.service.server import (
    EstimationServer,
    ServiceEngine,
    parse_listen,
    serve_forever,
)
from repro.xmltree.tree import Document, Element
from tests.service.test_batch import QUERIES, prime, random_document, random_subtree

WAIT = 30.0  # generous per-request timeout; every test finishes in ms


def make_service(seed: int = 7, nodes: int = 60) -> EstimationService:
    service = EstimationService(
        random_document(random.Random(seed), nodes),
        grid_size=6,
        spacing=64,
        rebuild_threshold=0.95,
    )
    prime(service)
    return service


@pytest.fixture
def engine():
    service = make_service()
    eng = ServiceEngine(service)
    yield eng
    eng.close()
    service.close()


def subtree_xml(seed: int) -> str:
    """A deterministic insertable snippet (serialised random subtree)."""

    def render(element: Element) -> str:
        inner = "".join(
            render(child) for child in element.children if isinstance(child, Element)
        )
        return f"<{element.tag}>{inner}</{element.tag}>"

    return render(random_subtree(random.Random(seed)))


class TestServiceEngine:
    def test_ping_and_unknown_op(self, engine):
        assert engine.request({"op": "ping"}) == {"ok": True, "op": "ping"}
        response = engine.request({"op": "frobnicate"})
        assert response["ok"] is False and "unknown op" in response["error"]
        response = engine.request({"no-op": 1})
        assert response["ok"] is False

    def test_weak_and_strong_estimates_and_read_your_writes(self, engine):
        weak = engine.request({"op": "estimate", "query": QUERIES[0]})
        assert weak["ok"] and weak["value"] >= 0
        before = weak["value"]
        ok = engine.request(
            {"op": "insert", "parent": {"tag": "root"}, "xml": "<a><b/></a>"}
        )
        assert ok["ok"] and ok["nodes"] == 2
        # A strong estimate is a barrier: it must see the insert.
        strong = engine.request(
            {"op": "estimate", "query": "//a//b", "strong": True}
        )
        assert strong["ok"]
        # The writer refreshed the lock-free view after the flush, so
        # even weak reads see the write once the response arrived.
        weak_after = engine.request({"op": "estimate", "query": QUERIES[0]})
        assert weak_after["ok"]
        assert engine.stats.view_refreshes >= 1
        del before  # values may legitimately coincide; no assertion

    def test_estimate_many_and_exact_and_execute(self, engine):
        many = engine.request({"op": "estimate", "queries": QUERIES})
        assert many["ok"] and len(many["values"]) == len(QUERIES)
        exact = engine.request({"op": "exact", "query": QUERIES[0]})
        assert exact["ok"] and isinstance(exact["value"], int)
        executed = engine.request({"op": "execute", "query": QUERIES[0]})
        assert executed["ok"] and executed["rows"] == exact["value"]
        assert executed["cost"] > 0

    def test_update_responses_match_legacy_fields(self, engine):
        service = engine.service
        nodes = len(service)
        ok = engine.request(
            {"op": "insert", "parent": {"tag": "root"}, "xml": "<a><b/><c/></a>"}
        )
        assert ok == {
            "ok": True,
            "op": "insert",
            "nodes": 3,
            "rebuilt": ok["rebuilt"],
            "coalesced": 1,
        }
        assert len(service) == nodes + 3
        gone = engine.request({"op": "delete", "node": {"tag": "a", "ordinal": 1}})
        assert gone["ok"] and gone["nodes"] >= 1

    def test_target_errors_use_legacy_wording(self, engine):
        response = engine.request(
            {"op": "delete", "node": {"tag": "zzz", "ordinal": 2}}
        )
        assert response["ok"] is False
        assert response["error"] == "only 0 elements with tag 'zzz' (wanted #2)"
        response = engine.request({"op": "delete", "node": {"index": 10_000}})
        assert "outside the tree" in response["error"]
        response = engine.request(
            {"op": "insert", "parent": {"tag": "root"}, "xml": "<broken"}
        )
        assert response["ok"] is False  # admission-time XML validation

    def test_ids_echoed_on_success_and_error(self, engine):
        ok = engine.request({"op": "stats", "id": "abc"})
        assert ok["ok"] and ok["id"] == "abc"
        bad = engine.request({"op": "nope", "id": 9})
        assert bad["ok"] is False and bad["id"] == 9

    def test_stats_includes_server_counters(self, engine):
        engine.request({"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"})
        stats = engine.request({"op": "stats"})
        assert stats["ok"]
        assert stats["nodes"] == len(engine.service)
        assert stats["server"]["flushes"] >= 1
        assert stats["server"]["ops_admitted"] >= 1
        assert stats["epoch"] == engine.service.epoch

    def test_snapshot_pin_read_release(self, engine):
        pinned = engine.request({"op": "snapshot"})
        assert pinned["ok"]
        sid = pinned["snapshot"]
        before = engine.request({"op": "estimate", "query": "//a//b", "snapshot": sid})
        engine.request(
            {"op": "insert", "parent": {"tag": "root"}, "xml": "<a><b/></a>"}
        )
        after_pinned = engine.request(
            {"op": "estimate", "query": "//a//b", "snapshot": sid}
        )
        assert after_pinned["value"] == before["value"]  # bit-stable
        live = engine.request({"op": "estimate", "query": "//a//b", "strong": True})
        assert live["value"] != before["value"]
        released = engine.request({"op": "release", "snapshot": sid})
        assert released["ok"]
        gone = engine.request({"op": "estimate", "query": "//a//b", "snapshot": sid})
        assert gone["ok"] is False and "unknown snapshot" in gone["error"]
        # Releasing twice is an error response, not a crash.
        assert engine.request({"op": "release", "snapshot": sid})["ok"] is False

    def test_batch_request_is_atomic(self, engine):
        service = engine.service
        nodes = len(service)
        epoch = service.epoch
        response = engine.request(
            {
                "op": "batch",
                "ops": [
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"},
                    {"op": "delete", "node": {"tag": "zzz"}},
                ],
            }
        )
        assert response["ok"] is False
        assert "only 0 elements with tag 'zzz'" in response["error"]
        assert len(service) == nodes  # nothing admitted
        assert service.epoch == epoch  # no epoch published either
        ok = engine.request(
            {
                "op": "batch",
                "ops": [
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"},
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<b><c/></b>"},
                ],
            }
        )
        assert ok["ok"] and ok["ops"] == 2 and ok["nodes_inserted"] == 3
        assert len(service) == nodes + 3
        assert [r["nodes"] for r in ok["results"]] == [1, 2]

    def test_save_is_a_barrier(self, engine, tmp_path):
        path = tmp_path / "stats.npz"
        response = engine.request({"op": "save", "path": str(path)})
        assert response["ok"] and path.exists()
        assert response["predicates"] >= 1

    def test_shutdown_rejects_later_requests(self):
        service = make_service(seed=11)
        engine = ServiceEngine(service)
        try:
            assert engine.request({"op": "shutdown"}) == {
                "ok": True,
                "op": "shutdown",
            }
            assert engine.shutdown_event.is_set()
            late = engine.request({"op": "stats"})
            assert late["ok"] is False
            assert late["error"]["code"] == "shutting_down"
            assert "shutting down" in late["error"]["message"]
        finally:
            engine.close()
            service.close()


class TestAdmissionCoalescing:
    def test_concurrent_submits_coalesce_into_one_flush(self):
        service = make_service(seed=13)
        engine = ServiceEngine(service, max_ops=64, linger=0.25)
        try:
            nodes = len(service)
            tickets = [
                engine.submit(
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"}
                )
                for _ in range(12)
            ]
            responses = [t.wait(WAIT) for t in tickets]
            assert all(r["ok"] for r in responses)
            assert len(service) == nodes + 12
            # The linger window held the group open for all 12 ops, so
            # they applied as (nearly) one apply_batch: one WAL-unit
            # flush instead of twelve.
            assert engine.stats.flushes < 12
            assert engine.stats.largest_group >= 2
            assert max(r["coalesced"] for r in responses) >= 2
            assert engine.stats.ops_admitted == 12
        finally:
            engine.close()
            service.close()

    def test_max_ops_caps_group_size(self):
        service = make_service(seed=17)
        engine = ServiceEngine(service, max_ops=4, linger=0.25)
        try:
            tickets = [
                engine.submit(
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"}
                )
                for _ in range(10)
            ]
            for ticket in tickets:
                assert ticket.wait(WAIT)["ok"]
            assert engine.stats.largest_group <= 4
            assert engine.stats.flushes >= 3  # ceil(10 / 4)
        finally:
            engine.close()
            service.close()

    def test_control_op_is_a_barrier_between_groups(self):
        """A strong read queued between writes observes every earlier
        write and no later one, regardless of coalescing."""
        service = make_service(seed=19)
        engine = ServiceEngine(service, max_ops=64, linger=0.25)
        try:
            first = engine.submit(
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<a><b/></a>"}
            )
            barrier = engine.submit({"op": "exact", "query": "//root//a"})
            second = engine.submit(
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<a><b/></a>"}
            )
            count_mid = barrier.wait(WAIT)["value"]
            assert first.wait(WAIT)["ok"] and second.wait(WAIT)["ok"]
            count_end = engine.request({"op": "exact", "query": "//root//a"})["value"]
            assert count_end == count_mid + 1
            # The barrier split the stream: two separate flushes.
            assert engine.stats.flushes >= 2
        finally:
            engine.close()
            service.close()


class TestPerOpAttribution:
    """A grouped flush containing a poisoned op: every other client
    gets its own success, the poisoned client gets its own error, and
    the service ends bit-identical to a control service that never saw
    the failing op (the acceptance differential)."""

    def control_pair(self, seed=23):
        return make_service(seed=seed), make_service(seed=seed)

    def test_mid_group_failure_attributed_and_state_differential(self):
        import numpy as np

        service, control = self.control_pair()
        engine = ServiceEngine(service, max_ops=64, linger=0.3)
        try:
            # Two deletes of the same sole element: both resolve at
            # flush time against the group's starting state, the second
            # fails inside apply_batch, rolling the whole group back;
            # the retry pass then re-applies op-by-op.
            engine.request(
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<zz/>"}
            )
            control.insert_subtree(0, Element("zz"))
            requests = [
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<a><b/></a>"},
                {"op": "delete", "node": {"tag": "zz", "ordinal": 1}},
                {"op": "delete", "node": {"tag": "zz", "ordinal": 1}},
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<c/>"},
            ]
            tickets = [engine.submit(r) for r in requests]
            responses = [t.wait(WAIT) for t in tickets]
            assert responses[0]["ok"] and responses[0]["nodes"] == 2
            assert responses[1]["ok"] and responses[1]["nodes"] == 1
            assert responses[2]["ok"] is False  # the poisoned op
            assert "zz" in responses[2]["error"]
            assert responses[3]["ok"] and responses[3]["nodes"] == 1
            assert engine.stats.ops_failed == 1

            # Differential: the control service applies exactly the
            # acknowledged ops, one at a time, same targets.
            root = control.tree.elements[0]
            sub = Element("a")
            sub.append(Element("b"))
            control.insert_subtree(root, sub)
            zz = int(control.catalog.stats(TagPredicate("zz")).node_indices[0])
            control.delete_subtree(zz)
            control.insert_subtree(root, Element("c"))

            assert len(service) == len(control)
            assert np.array_equal(service.tree.start, control.tree.start)
            assert np.array_equal(service.tree.end, control.tree.end)
            for query in QUERIES:
                assert service.estimate(query).value == control.estimate(query).value
            service.differential_check(QUERIES)
        finally:
            engine.close()
            service.close()
            control.close()

    def test_resolution_failure_never_reaches_the_batch(self):
        service = make_service(seed=29)
        engine = ServiceEngine(service, max_ops=64, linger=0.3)
        try:
            nodes = len(service)
            tickets = [
                engine.submit(
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"}
                ),
                engine.submit({"op": "delete", "node": {"tag": "nosuch"}}),
                engine.submit(
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<b/>"}
                ),
            ]
            responses = [t.wait(WAIT) for t in tickets]
            assert responses[0]["ok"] and responses[2]["ok"]
            assert responses[1]["ok"] is False
            assert "only 0 elements with tag 'nosuch'" in responses[1]["error"]
            assert len(service) == nodes + 2
            service.differential_check(QUERIES)
        finally:
            engine.close()
            service.close()


class TestSessionCancellation:
    def test_closed_session_ops_dropped_at_flush(self):
        service = make_service(seed=31)
        engine = ServiceEngine(service, max_ops=64, linger=0.3)
        try:
            nodes = len(service)
            doomed = engine.session()
            survivor = engine.session()
            t1 = engine.submit(
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"},
                session=doomed,
            )
            t2 = engine.submit(
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<b/>"},
                session=survivor,
            )
            doomed.close()  # disconnect before the linger window ends
            r1, r2 = t1.wait(WAIT), t2.wait(WAIT)
            assert r1["ok"] is False and "disconnected" in r1["error"]
            assert r2["ok"] is True
            assert len(service) == nodes + 1  # the doomed op never admitted
            assert engine.stats.ops_cancelled == 1
            service.differential_check(QUERIES)
        finally:
            engine.close()
            service.close()

    def test_session_close_releases_pinned_snapshots(self):
        service = make_service(seed=37)
        engine = ServiceEngine(service)
        try:
            session = engine.session()
            pinned = engine.request({"op": "snapshot"}, session)
            sid = pinned["snapshot"]
            assert engine.request(
                {"op": "estimate", "query": "//a//b", "snapshot": sid}
            )["ok"]
            session.close()
            gone = engine.request({"op": "estimate", "query": "//a//b", "snapshot": sid})
            assert gone["ok"] is False and "unknown snapshot" in gone["error"]
            assert engine.request({"op": "stats"})["server"]["snapshots_pinned"] == 0
        finally:
            engine.close()
            service.close()


@pytest.fixture
def served():
    """A live TCP server over a fresh service; yields (service, engine,
    server)."""
    service = make_service(seed=41)
    engine, server = serve_forever(service, linger=0.05)
    yield service, engine, server
    server.stop()
    server.join(timeout=10)
    engine.close()
    service.close()


def raw_connection(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=WAIT)
    sock.settimeout(WAIT)
    return sock


def read_frame(fileobj) -> dict:
    line = fileobj.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line.decode("utf-8"))


class TestEstimationServer:
    def test_round_trip_every_op(self, served, tmp_path):
        service, engine, server = served
        with ServiceClient(server.host, server.port) as db:
            assert db.ping()
            weak = db.estimate(QUERIES[0])
            assert weak >= 0
            assert len(db.estimate_many(QUERIES)) == len(QUERIES)
            before_exact = db.exact("//root//a")
            result = db.insert("root", "<a><b/></a>")
            assert result["nodes"] == 2
            assert db.exact("//root//a") == before_exact + 1
            assert db.delete("a")["nodes"] >= 1
            executed = db.execute(QUERIES[0])
            assert executed["rows"] >= 0 and executed["cost"] > 0
            stats = db.stats()
            assert stats["nodes"] == len(service)
            saved = db.save(str(tmp_path / "net.npz"))
            assert saved["predicates"] >= 1 and (tmp_path / "net.npz").exists()
            batch = db.batch(
                [
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"},
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<b/>"},
                ]
            )
            assert batch["ops"] == 2
            with pytest.raises(ServiceError, match="only 0 elements"):
                db.delete("nosuchtag")

    def test_snapshot_reads_bit_identical_under_writes(self, served):
        service, engine, server = served
        with ServiceClient(server.host, server.port) as reader, ServiceClient(
            server.host, server.port
        ) as writer:
            # Pin after a strong barrier so the pinned values are
            # deterministic, then hammer writes from the other client.
            before = {q: reader.estimate(q, strong=True) for q in QUERIES}
            with reader.snapshot() as snap:
                pinned0 = {q: snap.estimate(q) for q in QUERIES}
                assert pinned0 == before
                for seed in range(6):
                    writer.insert("root", subtree_xml(seed))
                writer.delete("root", ordinal=1) if False else None
                pinned1 = {q: snap.estimate(q) for q in QUERIES}
                assert pinned1 == pinned0  # bit-stable under writes
            with pytest.raises(ServiceError, match="unknown snapshot"):
                reader.estimate(QUERIES[0], snapshot=snap.snapshot_id)

    def test_pipelined_requests_answered_in_order(self, served):
        service, engine, server = served
        sock = raw_connection(server)
        try:
            fileobj = sock.makefile("rb")
            frames = [
                {"op": "ping", "id": 1},
                {"op": "estimate", "query": QUERIES[0], "id": 2},
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>", "id": 3},
                {"op": "estimate", "query": QUERIES[1], "strong": True, "id": 4},
                {"op": "stats", "id": 5},
            ]
            sock.sendall(b"".join(encode_frame(f) for f in frames))
            responses = [read_frame(fileobj) for _ in frames]
            assert [r["id"] for r in responses] == [1, 2, 3, 4, 5]
            assert all(r["ok"] for r in responses)
        finally:
            sock.close()

    def test_malformed_frames_answered_and_connection_survives(self, served):
        service, engine, server = served
        sock = raw_connection(server)
        try:
            fileobj = sock.makefile("rb")
            bad_lines = [
                b"\xff\xfe not utf8\n",        # undecodable bytes
                b"{broken json\n",              # malformed JSON
                b"[1,2,3]\n",                   # non-object payload
                b'{"x": 1}\n',                  # missing op
                b"   \t \n",                    # bare whitespace
                b"x" * (MAX_LINE_BYTES + 64) + b"\n",  # oversized line
            ]
            for raw in bad_lines:
                sock.sendall(raw)
                response = read_frame(fileobj)
                assert response["ok"] is False, raw[:20]
                assert response["error"]
                # The connection is still serving after each bad line.
                sock.sendall(encode_frame({"op": "ping"}))
                assert read_frame(fileobj)["ok"] is True
            assert engine.stats.protocol_errors == len(bad_lines)
            # Truly blank lines are keep-alives: no response at all.
            sock.sendall(b"\n" + encode_frame({"op": "ping", "id": 99}))
            assert read_frame(fileobj)["id"] == 99
        finally:
            sock.close()

    def test_concurrent_clients_coalesce_and_match_control(self, served):
        import numpy as np

        service, engine, server = served
        control = make_service(seed=41)
        clients, ops_per_client = 8, 6
        errors = []

        def worker(k: int) -> None:
            try:
                with ServiceClient(server.host, server.port) as db:
                    for i in range(ops_per_client):
                        db.insert("root", f"<w{k}><x/></w{k}>")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        assert not errors
        total = clients * ops_per_client
        assert engine.stats.ops_admitted == total
        # Writers arrived concurrently, so the admission batcher did
        # strictly fewer apply_batch calls than ops.
        assert engine.stats.flushes < total
        assert engine.stats.largest_group >= 2

        # Differential: a single-caller control applying the same
        # multiset of inserts (order of same-parent appends does not
        # change any maintained statistic's *totals*).
        root = control.tree.elements[0]
        for k in range(clients):
            for _ in range(ops_per_client):
                sub = Element(f"w{k}")
                sub.append(Element("x"))
                control.insert_subtree(root, sub)
        assert len(service) == len(control)
        for k in range(clients):
            predicate = TagPredicate(f"w{k}")
            assert (
                service.catalog.stats(predicate).count
                == control.catalog.stats(predicate).count
            )
        assert np.isclose(
            service.estimate("//root//x").value,
            control.estimate("//root//x").value,
        )
        service.differential_check(QUERIES)

    def test_mid_batch_disconnect_drops_unflushed_ops(self, served):
        service, engine, server = served
        # Park the writer behind a long linger so the pipelined ops are
        # still queued when the client vanishes.
        engine.linger = 0.4
        nodes = len(service)
        sock = raw_connection(server)
        frames = [
            {"op": "insert", "parent": {"tag": "root"}, "xml": "<dd/>"}
            for _ in range(5)
        ]
        sock.sendall(b"".join(encode_frame(f) for f in frames))
        sock.close()  # vanish without reading a single response
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            if engine.stats.ops_cancelled or engine.stats.ops_admitted:
                if not engine._queue:
                    break
            time.sleep(0.02)
        # Barrier through a live client to drain whatever was admitted.
        with ServiceClient(server.host, server.port) as db:
            final = db.stats()
        cancelled = engine.stats.ops_cancelled
        admitted = engine.stats.ops_admitted
        assert cancelled + admitted == 5
        assert cancelled >= 1  # the close raced ahead of the linger
        assert final["nodes"] == nodes + admitted
        service.differential_check(QUERIES)

    def test_shutdown_stops_the_listener(self, served):
        service, engine, server = served
        with ServiceClient(server.host, server.port) as db:
            assert db.shutdown() == {"ok": True, "op": "shutdown"}
        assert engine.shutdown_event.wait(WAIT)
        server.join(timeout=WAIT)
        with pytest.raises(OSError):
            socket.create_connection((server.host, server.port), timeout=2.0)

    def test_eof_mid_line_answers_nothing_and_cleans_up(self, served):
        service, engine, server = served
        sock = raw_connection(server)
        sock.sendall(b'{"op": "ping"')  # no newline, then vanish
        sock.close()
        # The server must survive; a new connection still round-trips.
        with ServiceClient(server.host, server.port) as db:
            assert db.ping()


class TestParseListen:
    def test_port_only_defaults_host(self):
        assert parse_listen("9630") == ("127.0.0.1", 9630)

    def test_host_and_port(self):
        assert parse_listen("0.0.0.0:7") == ("0.0.0.0", 7)

    def test_malformed(self):
        with pytest.raises(ValueError, match="malformed --listen"):
            parse_listen("nope")
        with pytest.raises(ValueError, match="malformed --listen"):
            parse_listen("host:port")
