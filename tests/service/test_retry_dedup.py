"""Client retry, idempotency keys, and the server dedup window.

The exactly-once contract under test: a client that retries a mutation
after a lost acknowledgment -- a timeout, an admission rejection, or a
mid-frame disconnect injected by a seeded network fault plan -- never
double-applies it.  The idempotency key travels with the retry, the
engine's dedup window recognises the committed first delivery, and the
recorded reply is replayed (flagged ``deduped``).  Pinned
differentially: a control service applying each acknowledged op once
ends bit-identical to the served database.
"""

import random
import threading
import time

import pytest

from repro.service import (
    ClientTimeout,
    FaultPlan,
    FaultRule,
    OverloadedError,
    ServiceClient,
)
from repro.service.faults import NET_SEND
from repro.service.server import EstimationServer, ServiceEngine
from repro.xmltree.parser import parse_document
from tests.service.test_batch import QUERIES, random_subtree
from tests.service.test_server import make_service
from tests.service.test_wal import assert_state, state_of

WAIT = 30.0


def render(element) -> str:
    inner = "".join(
        render(child) for child in element.children if hasattr(child, "tag")
    )
    return f"<{element.tag}>{inner}</{element.tag}>"


def start_server(service, **server_options):
    engine = ServiceEngine(service, **server_options.pop("engine_options", {}))
    server = EstimationServer(engine, host="127.0.0.1", port=0, **server_options)
    server.start()
    return engine, server


def stop_server(engine, server, service):
    server.stop()
    server.join(timeout=10)
    engine.close()
    service.close()


class TestEngineDedup:
    def test_duplicate_key_applies_once_and_replays(self):
        service = make_service(seed=3)
        engine = ServiceEngine(service)
        try:
            nodes = len(service)
            request = {
                "op": "insert",
                "parent": {"tag": "root"},
                "xml": "<a><b/></a>",
                "idem": "k-1",
            }
            first = engine.request(dict(request))
            assert first["ok"] and "deduped" not in first
            second = engine.request(dict(request))
            assert second["ok"] and second["deduped"] is True
            # Identical substantive reply, exactly one application.
            assert second["nodes"] == first["nodes"] == 2
            assert len(service) == nodes + 2
            assert engine.stats.ops_deduped == 1
        finally:
            engine.close()
            service.close()

    def test_distinct_keys_apply_independently(self):
        service = make_service(seed=3)
        engine = ServiceEngine(service)
        try:
            nodes = len(service)
            for key in ("a", "b", "c"):
                response = engine.request({
                    "op": "insert", "parent": {"tag": "root"},
                    "xml": "<x/>", "idem": key,
                })
                assert response["ok"]
            assert len(service) == nodes + 3
            assert engine.stats.ops_deduped == 0
        finally:
            engine.close()
            service.close()

    def test_failed_op_is_not_recorded(self):
        service = make_service(seed=3)
        engine = ServiceEngine(service)
        try:
            request = {
                "op": "delete",
                "node": {"tag": "nosuchtag", "ordinal": 1},
                "idem": "retry-me",
            }
            first = engine.request(dict(request))
            assert not first["ok"]
            # The key was not burned: a corrected retry (same key, now
            # resolvable) really applies instead of replaying the error.
            engine.request({
                "op": "insert", "parent": {"tag": "root"},
                "xml": "<nosuchtag/>",
            })
            second = engine.request(dict(request))
            assert second["ok"] and "deduped" not in second
        finally:
            engine.close()
            service.close()

    def test_duplicate_keys_within_one_group_apply_once(self):
        """Duplicate keys racing into one admission group: the first
        instance applies, the duplicates defer and replay its reply."""
        service = make_service(seed=5)
        engine = ServiceEngine(service, max_ops=8, linger=0.2)
        try:
            nodes = len(service)
            request = {
                "op": "insert", "parent": {"tag": "root"},
                "xml": "<dup/>", "idem": "same-key",
            }
            tickets = [engine.submit(dict(request)) for _ in range(3)]
            responses = [ticket.wait(WAIT) for ticket in tickets]
            assert all(response["ok"] for response in responses)
            assert sum(1 for r in responses if r.get("deduped")) == 2
            assert len(service) == nodes + 1
        finally:
            engine.close()
            service.close()

    def test_window_eviction_is_lru(self):
        service = make_service(seed=3)
        engine = ServiceEngine(service, dedup_window=2)
        try:
            for key in ("k1", "k2", "k3"):  # k1 evicted by k3
                engine.request({
                    "op": "insert", "parent": {"tag": "root"},
                    "xml": "<x/>", "idem": key,
                })
            nodes = len(service)
            replay = engine.request({
                "op": "insert", "parent": {"tag": "root"},
                "xml": "<x/>", "idem": "k3",
            })
            assert replay["deduped"] is True and len(service) == nodes
            evicted = engine.request({
                "op": "insert", "parent": {"tag": "root"},
                "xml": "<x/>", "idem": "k1",
            })
            assert "deduped" not in evicted and len(service) == nodes + 1
        finally:
            engine.close()
            service.close()

    def test_batch_request_dedups_wholesale(self):
        service = make_service(seed=3)
        engine = ServiceEngine(service)
        try:
            nodes = len(service)
            request = {
                "op": "batch",
                "ops": [
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"},
                    {"op": "insert", "parent": {"tag": "root"}, "xml": "<b/>"},
                ],
                "idem": "batch-1",
            }
            first = engine.request(dict(request))
            assert first["ok"] and first["ops"] == 2
            second = engine.request(dict(request))
            assert second["deduped"] is True and second["ops"] == 2
            assert len(service) == nodes + 2
        finally:
            engine.close()
            service.close()

    def test_overloaded_fast_reject_is_coded_and_retryable(self):
        service = make_service(seed=3)
        engine = ServiceEngine(service)
        try:
            engine.max_queue = 0  # everything is past the high-water mark
            with pytest.raises(OverloadedError) as excinfo:
                engine.submit({"op": "stats"})
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retryable
            assert excinfo.value.retry_after_ms is not None
            assert engine.stats.ops_rejected == 1
            engine.max_queue = None
            assert engine.request({"op": "stats"})["ok"]
        finally:
            engine.close()
            service.close()


class TestClientRetry:
    def test_retry_after_midframe_disconnect_exactly_once(self):
        """The acceptance differential: the ack of an applied insert is
        torn mid-frame; the client retries with the same idempotency
        key; the op applies exactly once and the recorded reply is
        replayed."""
        service = make_service(seed=7)
        # Third response frame dies mid-write (ping, estimate, then the
        # insert's ack) -- after the op committed server-side.
        plan = FaultPlan([FaultRule(NET_SEND, nth=3, action="torn")])
        engine, server = start_server(service, faults=plan)
        try:
            nodes = len(service)
            with ServiceClient(
                server.host, server.port,
                timeout=WAIT, retries=3, backoff_ms=1.0, retry_seed=1,
            ) as db:
                assert db.ping()
                assert db.estimate(QUERIES[0]) >= 0.0
                result = db.insert("root", "<a><b/><c/></a>")
                assert result["ok"] and result["nodes"] == 3
                assert result.get("deduped") is True  # replayed reply
            assert len(service) == nodes + 3  # applied exactly once
            assert engine.stats.ops_deduped == 1
            assert [fired.point for fired in plan.fired] == [NET_SEND]
        finally:
            stop_server(engine, server, service)

    def test_retry_after_full_disconnect_exactly_once(self):
        service = make_service(seed=7)
        plan = FaultPlan([FaultRule(NET_SEND, nth=1, action="disconnect")])
        engine, server = start_server(service, faults=plan)
        try:
            nodes = len(service)
            with ServiceClient(
                server.host, server.port,
                timeout=WAIT, retries=3, backoff_ms=1.0, retry_seed=1,
            ) as db:
                result = db.insert("root", "<a/>")
                assert result["ok"]
                assert result.get("deduped") is True
            assert len(service) == nodes + 1
        finally:
            stop_server(engine, server, service)

    def test_no_retries_surfaces_the_disconnect(self):
        service = make_service(seed=7)
        plan = FaultPlan([FaultRule(NET_SEND, nth=1, action="torn")])
        engine, server = start_server(service, faults=plan)
        try:
            with ServiceClient(server.host, server.port, timeout=WAIT) as db:
                with pytest.raises(ConnectionError):
                    db.insert("root", "<a/>")
        finally:
            stop_server(engine, server, service)

    def test_client_timeout_is_typed(self):
        """A stalled server surfaces as ClientTimeout (a TimeoutError
        subclass), not a raw socket.timeout."""
        service = make_service(seed=7)
        plan = FaultPlan(
            [FaultRule(NET_SEND, nth=1, action="stall", delay=3.0)]
        )
        engine, server = start_server(service, faults=plan)
        try:
            with ServiceClient(server.host, server.port, timeout=0.3) as db:
                with pytest.raises(ClientTimeout):
                    db.ping()
        finally:
            stop_server(engine, server, service)

    def test_timeout_then_retry_recovers(self):
        service = make_service(seed=7)
        plan = FaultPlan(
            [FaultRule(NET_SEND, nth=1, action="stall", delay=2.0)]
        )
        engine, server = start_server(service, faults=plan)
        try:
            nodes = len(service)
            with ServiceClient(
                server.host, server.port,
                timeout=0.4, retries=3, backoff_ms=1.0, retry_seed=2,
            ) as db:
                result = db.insert("root", "<a/>")
                assert result["ok"]
            assert len(service) == nodes + 1
            assert engine.stats.ops_deduped >= 1  # first delivery applied
        finally:
            stop_server(engine, server, service)

    def test_retries_exhausted_raises(self):
        service = make_service(seed=7)
        plan = FaultPlan(
            [FaultRule(NET_SEND, probability=1.0, count=None,
                       action="disconnect")]
        )
        engine, server = start_server(service, faults=plan)
        try:
            with ServiceClient(
                server.host, server.port,
                timeout=WAIT, retries=2, backoff_ms=1.0, retry_seed=3,
            ) as db:
                with pytest.raises(ConnectionError):
                    db.ping()
        finally:
            stop_server(engine, server, service)

    def test_client_retries_overloaded_until_admitted(self):
        """An `overloaded` rejection carries retry metadata the client
        honours: back off, resend, succeed once the queue relents."""
        service = make_service(seed=7)
        engine, server = start_server(service)
        engine.max_queue = 0  # reject every admission for now
        relent = threading.Timer(0.3, setattr, (engine, "max_queue", None))
        relent.start()
        try:
            nodes = len(service)
            with ServiceClient(
                server.host, server.port,
                timeout=WAIT, retries=6, backoff_ms=50.0, retry_seed=5,
            ) as db:
                result = db.insert("root", "<a/>")
                assert result["ok"]
            assert len(service) == nodes + 1
            assert engine.stats.ops_rejected >= 1
        finally:
            relent.cancel()
            stop_server(engine, server, service)

    def test_differential_with_retry_storm(self):
        """Seeded probabilistic send faults + a retrying client: the
        served database ends bit-identical to a control applying each
        acknowledged op exactly once."""
        rng = random.Random(23)
        xmls = [render(random_subtree(rng)) for _ in range(12)]
        service = make_service(seed=19, nodes=50)
        control = make_service(seed=19, nodes=50)
        plan = FaultPlan(
            [FaultRule(NET_SEND, probability=0.25, count=None, action="torn")],
            seed=99,
        )
        engine, server = start_server(service, faults=plan)
        try:
            with ServiceClient(
                server.host, server.port,
                timeout=WAIT, retries=8, backoff_ms=1.0, retry_seed=4,
            ) as db:
                for xml in xmls:
                    assert db.insert("root", xml)["ok"]
            assert plan.fired, "the fault schedule never fired"
            # Mirror each acknowledged insert into the control via the
            # same XML round-trip, then compare bit-exactly.
            for xml in xmls:
                snippet = parse_document(xml)
                detached = snippet.root_element
                snippet.children.remove(detached)
                detached.parent = None
                control.insert_subtree(control.tree.elements[0], detached)
            assert_state(service, state_of(control))
        finally:
            stop_server(engine, server, service)
            control.close()

    def test_idempotency_keys_are_unique(self):
        service = make_service(seed=7)
        engine, server = start_server(service)
        try:
            with ServiceClient(server.host, server.port, timeout=WAIT) as db:
                keys = {db.next_idempotency_key() for _ in range(100)}
                assert len(keys) == 100
        finally:
            stop_server(engine, server, service)

    def test_request_retrying_respects_explicit_keys(self):
        """Auto-stamped keys are fresh per call (two calls = two
        applications); a caller-provided key pins the op (two calls =
        one application plus a replay)."""
        service = make_service(seed=7)
        engine, server = start_server(service)
        try:
            nodes = len(service)
            with ServiceClient(
                server.host, server.port,
                timeout=WAIT, retries=2, backoff_ms=1.0, retry_seed=6,
            ) as db:
                auto = {"op": "insert", "parent": {"tag": "root"},
                        "xml": "<a/>"}
                assert db.request_retrying(dict(auto))["ok"]
                assert db.request_retrying(dict(auto))["ok"]
                assert len(service) == nodes + 2  # distinct auto keys
                pinned = {**auto, "idem": "caller-key"}
                assert db.request_retrying(dict(pinned))["ok"]
                replay = db.request_retrying(dict(pinned))
                assert replay["ok"] and replay["deduped"] is True
                assert len(service) == nodes + 3  # pinned key dedups
        finally:
            stop_server(engine, server, service)
