"""Log-shipping replication: WAL tailing, bootstrap, follower apply, chaos.

Five layers are exercised:

* :class:`~repro.service.wal.WalTailer` in isolation -- committed batch
  records ship exactly once per cursor, torn tails and aborted batches
  never ship, the committed floor gates group-committed markers, and an
  inode swap (compaction) forces a safe full rescan;
* follower bootstrap -- checkpoint transfer over a shared directory and
  over chunked ``repl.fetch``, resume idempotence, path traversal and
  same-directory refusals;
* the live stream -- catch-up plus continuous apply, read-only refusal
  on followers, health/lag reporting on both roles, and the
  :class:`~repro.service.client.ReplicaSet` read-your-writes gate;
* the differential pin (the acceptance criterion): a follower paused at
  LSN N is bit-identical to ``open_durable`` recovery of the primary's
  log truncated at N -- across single ops, batches, aborted batches,
  rebuild-triggering churn, and a compaction -- and the columnar
  (vectorized) apply path is pinned bit-identical to the reference
  per-op dict decoder;
* chaos -- seeded ``net.send`` disconnect/torn sweeps over the stream,
  follower kill/restart (including a simulated torn tail), duplicate
  subscribe refusal, malformed-frame fuzz, the ``stale_lsn`` signal
  after compaction outruns a follower, and the promote-by-restart
  drill.
"""

import base64
import json
import random
import shutil
import socket
import time

import pytest

from repro.service import (
    DeleteOp,
    EstimationService,
    FaultPlan,
    FaultRule,
    ReadOnlyError,
    ServiceClient,
    ServiceError,
    WalTailer,
    compact,
)
from repro.service.client import ReplicaSet
from repro.service.faults import NET_SEND
from repro.service.protocol import (
    MAX_LINE_BYTES,
    encode_frame,
    format_text_response,
)
from repro.service.replica import (
    Follower,
    ReplicaError,
    ReplicationHub,
    bootstrap_follower,
)
from repro.service.server import ServiceEngine, serve_forever
from repro.service.wal import (
    _HEADER,
    _decode_payload_v2_reference,
    LOG_NAME,
    ColumnarOps,
    WalError,
    apply_logged_batch,
    checkpoint_paths,
    decode_payload,
    list_checkpoints,
    read_records,
)
from tests.service.test_batch import QUERIES, prime, random_document, random_subtree
from tests.service.test_wal import (
    assert_state,
    make_durable,
    run_batches,
    state_of,
)

WAIT = 30.0  # generous; every wait below resolves in well under a second


def wait_for(predicate, timeout=WAIT, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def wait_caught_up(follower_service, target, timeout=WAIT):
    ok = wait_for(lambda: int(follower_service._last_lsn) >= target, timeout)
    assert ok, (
        follower_service._last_lsn,
        target,
        follower_service.replica_status,
    )


class cluster:
    """One durable primary behind a TCP server, plus streaming followers.

    Context manager; tears everything down in dependency order.  Keeps
    the test bodies about replication, not plumbing.
    """

    def __init__(self, tmp_path, **durable_kwargs):
        self.root = tmp_path
        self.primary = make_durable(tmp_path / "primary", **durable_kwargs)
        self.engine, self.server = serve_forever(self.primary)
        self._followers = []

    @property
    def host(self):
        return self.server.host

    @property
    def port(self):
        return self.server.port

    def add_follower(self, name="follower", engine=False, **follower_kwargs):
        directory = self.root / name
        info = bootstrap_follower(directory, self.host, self.port)
        service = EstimationService.open_durable(directory)
        eng = ServiceEngine(service) if engine else None
        follower = Follower(
            service, eng, self.host, self.port,
            read_timeout=5.0, **follower_kwargs,
        )
        follower.start()
        self._followers.append((service, eng, follower))
        return service, eng, follower, info

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        for service, eng, follower in reversed(self._followers):
            follower.stop(WAIT)
            if eng is not None:
                eng.close()
            service.close()
        self.server.stop()
        self.server.join(WAIT)
        self.engine.close()
        self.primary.close()


def insert_some(service, rng, count):
    for _ in range(count):
        service.insert_subtree(rng.randrange(len(service)), random_subtree(rng))
    return int(service._last_lsn)


def raw_subscribe(host, port, from_lsn, timeout=5.0):
    """A bare-socket ``repl.subscribe``; returns (sock, stream, handshake)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    stream = sock.makefile("rb")
    sock.sendall(encode_frame({"op": "repl.subscribe", "from_lsn": from_lsn}))
    handshake = json.loads(stream.readline())
    return sock, stream, handshake


class TestWalTailer:
    def test_ships_committed_batches_incrementally(self, tmp_path):
        service = make_durable(tmp_path / "w")
        rng = random.Random(3)
        try:
            insert_some(service, rng, 3)
            service._wal.sync()
            tailer = WalTailer(tmp_path / "w" / LOG_NAME)
            batch = tailer.poll(0, committed_floor=int(service._last_lsn))
            assert [lsn for lsn, _ in batch.records] == [1, 2, 3]
            for lsn, payload in batch.records:
                obj = decode_payload(payload)
                assert obj["type"] == "batch" and obj["lsn"] == lsn
            # only the new suffix on the next poll
            insert_some(service, rng, 2)
            service._wal.sync()
            batch = tailer.poll(3, committed_floor=int(service._last_lsn))
            assert [lsn for lsn, _ in batch.records] == [4, 5]
            assert tailer.poll(
                5, committed_floor=int(service._last_lsn)
            ).records == []
        finally:
            service.close()

    def test_committed_floor_gates_delivery(self, tmp_path):
        service = make_durable(tmp_path / "w")
        try:
            insert_some(service, random.Random(4), 3)
            service._wal.sync()
            tailer = WalTailer(tmp_path / "w" / LOG_NAME)
            batch = tailer.poll(0, committed_floor=1)
            assert [lsn for lsn, _ in batch.records] == [1]
        finally:
            service.close()

    def test_offline_mode_needs_on_disk_markers(self, tmp_path):
        service = make_durable(tmp_path / "w")
        rng = random.Random(5)
        try:
            insert_some(service, rng, 3)
            service._wal.sync()
            # One more write: its commit marker is group-committed, i.e.
            # still buffered in memory.
            insert_some(service, rng, 1)
            tailer = WalTailer(tmp_path / "w" / LOG_NAME)
            batch = tailer.poll(0, committed_floor=None)
            assert [lsn for lsn, _ in batch.records] == [1, 2, 3]
            # The live floor (the primary's in-process LSN) ships it.
            live = tailer.poll(0, committed_floor=int(service._last_lsn))
            assert [lsn for lsn, _ in live.records] == [1, 2, 3, 4]
            # Once the marker lands on disk, offline mode ships it too.
            service._wal.sync()
            batch = tailer.poll(3, committed_floor=None)
            assert [lsn for lsn, _ in batch.records] == [4]
        finally:
            service.close()

    def test_torn_tail_is_not_shipped(self, tmp_path):
        service = make_durable(tmp_path / "w")
        try:
            insert_some(service, random.Random(6), 3)
            service._wal.sync()
            committed = int(service._last_lsn)
        finally:
            service.close()
        records, _ = read_records(tmp_path / "w" / LOG_NAME)
        last_batch = [r for r in records if r.type == "batch"][-1]
        assert last_batch.lsn == 3
        torn = tmp_path / "torn.log"
        data = (tmp_path / "w" / LOG_NAME).read_bytes()
        # cut mid-frame inside the last batch record: a subscriber must
        # see it only once the whole CRC-validated frame exists
        torn.write_bytes(data[:last_batch.offset + _HEADER.size + 2])
        tailer = WalTailer(torn)
        batch = tailer.poll(0, committed_floor=committed)
        assert [lsn for lsn, _ in batch.records] == [1, 2]
        for lsn, payload in batch.records:
            assert decode_payload(payload)["lsn"] == lsn
        # the completed frame ships once the full bytes arrive
        torn.write_bytes(data)
        batch = tailer.poll(2, committed_floor=committed)
        assert [lsn for lsn, _ in batch.records] == [3]

    def test_aborted_batches_never_ship(self, tmp_path):
        service = make_durable(tmp_path / "w")
        rng = random.Random(7)
        try:
            insert_some(service, rng, 2)
            # Logged, rolled back, abort-marked: the second delete's
            # index is outrun by the first (same shape run_batches
            # documents).
            last = len(service) - 1
            with pytest.raises(Exception):
                service.apply_batch([DeleteOp(last), DeleteOp(last)])
            aborted_lsn = 3
            insert_some(service, rng, 1)
            service._wal.sync()
            records, _ = read_records(tmp_path / "w" / LOG_NAME)
            assert any(
                r.type == "abort" and r.lsn == aborted_lsn for r in records
            ), "expected the failed batch to be abort-marked"
            tailer = WalTailer(tmp_path / "w" / LOG_NAME)
            batch = tailer.poll(0, committed_floor=int(service._last_lsn))
            lsns = [lsn for lsn, _ in batch.records]
            assert aborted_lsn not in lsns
            assert lsns == [1, 2, 4]
        finally:
            service.close()

    def test_compaction_swap_forces_clean_rescan(self, tmp_path):
        service = make_durable(tmp_path / "w")
        rng = random.Random(8)
        try:
            insert_some(service, rng, 4)
            service._wal.sync()
            tailer = WalTailer(tmp_path / "w" / LOG_NAME)
            first = tailer.poll(0, committed_floor=int(service._last_lsn))
            assert [lsn for lsn, _ in first.records] == [1, 2, 3, 4]
            service.checkpoint(full=True)
            compact(tmp_path / "w", keep_checkpoints=1, wal=service._wal)
            insert_some(service, rng, 2)
            service._wal.sync()
            # cursor at 4: exactly the post-compaction records, no
            # duplicates, base advanced to the surviving checkpoint
            batch = tailer.poll(4, committed_floor=int(service._last_lsn))
            assert [lsn for lsn, _ in batch.records] == [5, 6]
            assert batch.base_lsn == 4
            for lsn, payload in batch.records:
                assert decode_payload(payload)["lsn"] == lsn
            # a cursor below the watermark is told so, not fed garbage
            stale = tailer.poll(0, committed_floor=int(service._last_lsn))
            assert stale.base_lsn == 4 > 0
        finally:
            service.close()


class TestBootstrap:
    def test_shared_directory_copy(self, tmp_path):
        with cluster(tmp_path) as c:
            expected = state_of(c.primary)
            info = bootstrap_follower(tmp_path / "f", c.host, c.port)
            assert info["transfer"] == "copy"
            assert info["files"] >= 2
            service = EstimationService.open_durable(tmp_path / "f")
            try:
                assert_state(service, expected)
            finally:
                service.close()

    def test_chunked_fetch_transfer(self, tmp_path, monkeypatch):
        with cluster(tmp_path) as c:
            expected = state_of(c.primary)
            real = ReplicationHub.manifest

            def remote_manifest(self):
                out = real(self)
                out["directory"] = str(tmp_path / "not-on-this-host")
                return out

            monkeypatch.setattr(ReplicationHub, "manifest", remote_manifest)
            # small chunks force the multi-roundtrip path
            monkeypatch.setattr(
                "repro.service.replica.FETCH_CHUNK_BYTES", 1024
            )
            info = bootstrap_follower(tmp_path / "f", c.host, c.port)
            assert info["transfer"] == "fetch"
            service = EstimationService.open_durable(tmp_path / "f")
            try:
                assert_state(service, expected)
            finally:
                service.close()

    def test_resume_leaves_existing_checkpoints_alone(self, tmp_path):
        with cluster(tmp_path) as c:
            bootstrap_follower(tmp_path / "f", c.host, c.port)
            before = sorted(p.name for p in (tmp_path / "f").iterdir())
            info = bootstrap_follower(tmp_path / "f", c.host, c.port)
            assert info["transfer"] == "resume"
            assert sorted(p.name for p in (tmp_path / "f").iterdir()) == before

    def test_interrupted_transfer_is_not_resumable(self, tmp_path):
        """A bootstrap killed after copying checkpoint files but before
        the seed log must re-transfer on retry, never false-report
        ``resume`` over a directory recovery cannot load."""
        with cluster(tmp_path) as c:
            expected = state_of(c.primary)
            directory = tmp_path / "f"
            directory.mkdir()
            # fake the interruption: every checkpoint file landed, the
            # seed log never did, and the dead attempt left its scratch
            for lsn in list_checkpoints(tmp_path / "primary"):
                for path in checkpoint_paths(tmp_path / "primary", lsn):
                    if path.exists():
                        shutil.copy(path, directory / path.name)
            (directory / ".bootstrap.tmp").mkdir()
            info = bootstrap_follower(directory, c.host, c.port)
            assert info["transfer"] == "copy"  # re-transferred
            assert not (directory / ".bootstrap.tmp").exists()
            service = EstimationService.open_durable(directory)
            try:
                assert_state(service, expected)
            finally:
                service.close()

    def test_refuses_the_primary_directory(self, tmp_path):
        with cluster(tmp_path) as c:
            with pytest.raises(ReplicaError, match="must differ"):
                bootstrap_follower(tmp_path / "primary", c.host, c.port)

    def test_fetch_rejects_traversal_and_unknown_names(self, tmp_path):
        with cluster(tmp_path) as c:
            hub = c.engine.replication_hub
            for name in ("../wal.log", "wal.log", "ckpt-none.npz", None):
                with pytest.raises((ReplicaError, Exception)):
                    hub.read_chunk(name, 0, None)
            # over the wire the same refusals are error frames
            with ServiceClient(c.host, c.port) as client:
                for name in ("../wal.log", "wal.log", "ckpt-none.npz"):
                    response = client.request(
                        {"op": "repl.fetch", "name": name}
                    )
                    assert response["ok"] is False
                assert client.ping()


class TestReplicationStream:
    def test_catchup_live_stream_and_read_only(self, tmp_path):
        with cluster(tmp_path) as c:
            rng = random.Random(11)
            insert_some(c.primary, rng, 4)  # pre-bootstrap: catch-up replay
            fsvc, feng, follower, info = c.add_follower(engine=True)
            assert info["transfer"] == "copy"
            target = insert_some(c.primary, rng, 6)  # live stream
            wait_caught_up(fsvc, target)
            assert_state(fsvc, state_of(c.primary))
            # followers refuse external mutations, locally and over the
            # wire, with the coded read_only error
            with pytest.raises(ReadOnlyError, match="read replica"):
                fsvc.insert_subtree(0, random_subtree(rng))
            from repro.service.server import EstimationServer

            fserver = EstimationServer(feng)
            fserver.start()
            try:
                with ServiceClient(c.host, fserver.port) as client:
                    assert client.estimate(QUERIES[0]) == \
                        c.primary.estimate(QUERIES[0]).value
                    with pytest.raises(ServiceError) as err:
                        client.insert("root", "<a/>")
                    assert err.value.code == "read_only"
            finally:
                fserver.stop()
                fserver.join(WAIT)

    def test_health_reports_roles_and_lag(self, tmp_path):
        with cluster(tmp_path) as c:
            rng = random.Random(12)
            fsvc, feng, follower, _ = c.add_follower(engine=True)
            target = insert_some(c.primary, rng, 3)
            wait_caught_up(fsvc, target)
            with ServiceClient(c.host, c.port) as client:
                health = client.health()
            assert health["last_committed_lsn"] == target
            assert health["replication"]["role"] == "primary"
            assert health["replication"]["subscribers"] >= 1
            fh = feng.request({"op": "health"})
            assert fh["last_committed_lsn"] == target
            repl = fh["replication"]
            assert repl["role"] == "follower"
            assert repl["primary"] == f"{c.host}:{c.port}"
            assert repl["replica_lag_lsns"] == 0
            assert repl["replica_lag_seconds"] == 0.0
            assert repl["connected"] is True
            # the text protocol renders the same fields (satellite 2)
            line = format_text_response({"op": "health"}, fh)
            assert f"last_committed_lsn={target}" in line
            assert f"replica_of={c.host}:{c.port}" in line
            assert "replica_lag_lsns=0" in line
            pline = format_text_response({"op": "health"}, health)
            assert "subscribers=1" in pline

    def test_keepalives_and_record_frames_on_the_wire(self, tmp_path):
        with cluster(tmp_path) as c:
            rng = random.Random(13)
            base = insert_some(c.primary, rng, 2)
            sock, stream, handshake = raw_subscribe(c.host, c.port, base)
            try:
                assert handshake["ok"] and handshake["from_lsn"] == base
                assert handshake["committed"] == base
                lsn = insert_some(c.primary, rng, 1)
                frame = json.loads(stream.readline())
                assert frame["op"] == "repl.record" and frame["lsn"] == lsn
                payload = base64.b64decode(frame["raw"])
                obj = decode_payload(payload)
                assert obj["type"] == "batch" and obj["lsn"] == lsn
                # idle connection: a keepalive carries the lag signal
                frame = json.loads(stream.readline())
                assert frame["op"] == "repl.keepalive"
                assert frame["committed"] == lsn
                assert "base" in frame
            finally:
                sock.close()

    def test_oversized_record_ships_chunked(self, tmp_path):
        """A WAL record whose base64 payload would overflow one line
        (the v2 codec stores XML uncompressed, and admission batching
        coalesces many client ops into ONE record) ships as a chunk
        sequence of line-cap-respecting frames a follower reassembles
        -- not as one oversized frame it would refuse forever."""
        with cluster(tmp_path) as c:
            from repro.xmltree.tree import Element

            before = int(c.primary._last_lsn)
            blob = Element("blob")
            blob.append_text("x" * (900 * 1024))
            c.primary.insert_subtree(0, blob)
            target = int(c.primary._last_lsn)
            sock, stream, handshake = raw_subscribe(
                c.host, c.port, before, timeout=15.0
            )
            try:
                assert handshake["ok"]
                chunks, more_frames = [], 0
                while True:
                    raw = stream.readline()
                    assert raw.endswith(b"\n")
                    # what Follower._read_frame enforces per line
                    assert len(raw) <= MAX_LINE_BYTES
                    frame = json.loads(raw)
                    if frame.get("op") != "repl.record":
                        continue
                    assert frame["lsn"] == target
                    chunks.append(base64.b64decode(frame["raw"]))
                    if frame.get("more"):
                        more_frames += 1
                        continue
                    break
            finally:
                sock.close()
            assert more_frames >= 1  # genuinely chunked
            obj = decode_payload(b"".join(chunks))
            assert obj is not None
            assert obj["type"] == "batch" and obj["lsn"] == target
            # and a real follower reassembles and applies it
            fsvc, _feng, _follower, _ = c.add_follower()
            wait_caught_up(fsvc, target)
            assert_state(fsvc, state_of(c.primary))

    def test_read_your_writes_dirty_survives_concurrent_mutation(self):
        """A mutation landing while the read-your-writes health
        round-trip is in flight must stay pending -- the old
        clear-after-fetch wiped it, letting a later read be served from
        a replica that had not applied it."""
        rs = ReplicaSet("127.0.0.1:1", read_your_writes=True)

        class StubPrimary:
            def __init__(self):
                self.lsn = 5
                self.mutate_once = True

            def health(self):
                if self.mutate_once:
                    # a writer thread lands a mutation mid-round-trip
                    self.mutate_once = False
                    with rs._lock:
                        rs._rw_dirty = True
                self.lsn += 1
                return {"last_committed_lsn": self.lsn}

        stub = StubPrimary()
        rs._primary.client = lambda: stub
        with rs._lock:
            rs._rw_dirty = True
        assert rs._read_target_lsn() == 6
        # the mid-flight mutation is still pending, not silently lost
        assert rs._rw_dirty is True
        assert rs._read_target_lsn() == 7
        # quiescent now: no further health round-trips
        assert rs._read_target_lsn() == 7
        assert stub.lsn == 7

    def test_replica_set_routes_and_reads_its_writes(self, tmp_path):
        from repro.service.server import EstimationServer

        with cluster(tmp_path) as c:
            fsvc, feng, follower, _ = c.add_follower(engine=True)
            fserver = EstimationServer(feng)
            fserver.start()
            try:
                rs = ReplicaSet(
                    (c.host, c.port),
                    [(c.host, fserver.port)],
                    read_your_writes=True,
                )
                with rs:
                    rs.insert("root", "<a><b/></a>")
                    value = rs.estimate("//a//b")
                    assert value == c.primary.estimate("//a//b").value
                    health = rs.health()
                    assert "replicas" in health and len(health["replicas"]) == 1
                    (replica_health,) = health["replicas"].values()
                    assert replica_health["replication"]["role"] == "follower"
                # reads fall back to the primary when the replica is gone
                fserver.stop()
                fserver.join(WAIT)
                with ReplicaSet(
                    (c.host, c.port), [(c.host, fserver.port)], timeout=5.0
                ) as rs:
                    assert rs.estimate(QUERIES[0]) == pytest.approx(
                        c.primary.estimate(QUERIES[0]).value
                    )
            finally:
                fserver.stop()
                fserver.join(WAIT)


class TestFollowerDifferentialPin:
    def test_follower_equals_truncated_recovery_at_every_stage(self, tmp_path):
        """The acceptance pin: a follower paused at LSN N is bit-identical
        to ``open_durable`` recovery of the primary's log truncated at N --
        across single ops, mixed/aborted batches, and rebuild churn."""
        pdir = tmp_path / "primary"
        primary = make_durable(pdir, seed=21, threshold=0.25)
        engine, server = serve_forever(primary)
        rng = random.Random(21)
        log_path = pdir / LOG_NAME
        stages = []
        fsvc = follower = None
        try:
            insert_some(primary, rng, 3)  # pre-bootstrap catch-up replay
            bootstrap_follower(tmp_path / "f", server.host, server.port)
            fsvc = EstimationService.open_durable(tmp_path / "f")
            follower = Follower(
                fsvc, None, server.host, server.port, read_timeout=5.0
            )
            follower.start()

            def stage():
                target = int(primary._last_lsn)
                primary._wal.sync()
                size = log_path.stat().st_size
                wait_caught_up(fsvc, target)
                assert int(fsvc._last_lsn) == target
                snapshot = state_of(fsvc)
                # live bit-identity at the matched LSN
                assert_state(primary, snapshot)
                stages.append((target, size, snapshot))

            # stage 1: single-op inserts and deletes
            insert_some(primary, rng, 4)
            primary.delete_subtree(rng.randrange(1, len(primary)))
            stage()
            # stage 2: mixed batches -- chained inserts, deletes, and
            # the occasional logged-and-aborted batch
            run_batches(primary, rng, batches=4, ops_per_batch=5)
            stage()
            # stage 3: churn until the dirty threshold forces a rebuild
            # (the follower must reproduce the rebalance exactly)
            before = primary.stats.rebuilds
            guard = 0
            while primary.stats.rebuilds == before:
                insert_some(primary, rng, 1)
                guard += 1
                assert guard < 500, "rebuild threshold never crossed"
            stage()
        finally:
            if follower is not None:
                follower.stop(WAIT)
            if fsvc is not None:
                fsvc.close()
            server.stop()
            server.join(WAIT)
            engine.close()
            primary.close()

        assert len(stages) == 3
        for target, size, snapshot in stages:
            work = tmp_path / f"cut-{target}"
            shutil.copytree(pdir, work)
            with open(work / LOG_NAME, "r+b") as handle:
                handle.truncate(size)
            for lsn in list_checkpoints(work):
                if lsn > target:
                    for path in checkpoint_paths(work, lsn):
                        path.unlink(missing_ok=True)
            recovered = EstimationService.open_durable(work)
            try:
                assert int(recovered._last_lsn) == target
                assert_state(recovered, snapshot)
            finally:
                recovered.close()

    def test_follower_streams_through_a_compaction(self, tmp_path):
        """Satellite 3: compact() racing an active subscription ships
        every record exactly once and never tears a frame."""
        with cluster(tmp_path) as c:
            rng = random.Random(22)
            fsvc, _, follower, _ = c.add_follower()
            for _ in range(3):
                target = insert_some(c.primary, rng, 3)
                wait_caught_up(fsvc, target)
                c.primary.checkpoint(full=True)
                compact(
                    tmp_path / "primary",
                    keep_checkpoints=1,
                    wal=c.primary._wal,
                )
                target = insert_some(c.primary, rng, 2)
                wait_caught_up(fsvc, target)
            assert_state(fsvc, state_of(c.primary))
            # exactly-once: the follower's own log holds one batch
            # record per LSN, strictly increasing, and applied counts
            # match -- duplicates would have been skipped, not logged
            fsvc._wal.sync()
            records, _ = read_records(tmp_path / "follower" / LOG_NAME)
            batch_lsns = [r.lsn for r in records if r.type == "batch"]
            assert batch_lsns == sorted(set(batch_lsns))
            assert follower.records_applied == len(batch_lsns)

    def test_columnar_apply_pins_to_reference_decoder(self, tmp_path):
        """Satellite 1: the vectorized (ColumnarOps) replay path the
        follower uses is bit-identical to the reference per-op dict
        decoder applied to the same shipped payload bytes."""
        source = make_durable(tmp_path / "src", seed=13)
        rng = random.Random(13)
        insert_some(source, rng, 2)
        source.delete_subtree(rng.randrange(1, len(source)))
        run_batches(source, rng, batches=5, ops_per_batch=5)
        source.close()
        records, _ = read_records(tmp_path / "src" / LOG_NAME)
        committed = {r.lsn for r in records if r.type == "commit"}
        aborted = {r.lsn for r in records if r.type == "abort"}
        batches = [
            r for r in records
            if r.type == "batch" and r.lsn in committed and r.lsn not in aborted
        ]
        assert len(batches) >= 5
        raw = (tmp_path / "src" / LOG_NAME).read_bytes()

        def twin():
            service = EstimationService(
                random_document(random.Random(13), 50),
                grid_size=5,
                spacing=64,
                rebuild_threshold=0.95,
            )
            prime(service)
            return service

        fast, reference = twin(), twin()
        saw_columnar = False
        try:
            for record in batches:
                assert decode_payload(
                    raw[record.offset + _HEADER.size:record.end_offset]
                ) is not None
                if isinstance(record.payload.get("ops"), ColumnarOps):
                    saw_columnar = True
                obj_ref = _decode_payload_v2_reference(
                    raw[record.offset + _HEADER.size:record.end_offset]
                )
                assert obj_ref is not None, "log is not v2-encoded"
                assert apply_logged_batch(fast, record.payload, committed=True)
                assert apply_logged_batch(reference, obj_ref, committed=True)
            assert saw_columnar, "no batch took the columnar fast path"
            assert_state(reference, state_of(fast))
        finally:
            fast.close()
            reference.close()


class TestReplicationChaos:
    def test_malformed_subscribe_fuzz_keeps_connection(self, tmp_path):
        with cluster(tmp_path) as c:
            with ServiceClient(c.host, c.port) as client:
                for bad in (
                    {"op": "repl.subscribe"},
                    {"op": "repl.subscribe", "from_lsn": True},
                    {"op": "repl.subscribe", "from_lsn": -1},
                    {"op": "repl.subscribe", "from_lsn": "0"},
                    {"op": "repl.subscribe", "from_lsn": 1.5},
                    {"op": "repl.subscribe", "from_lsn": None},
                    {"op": "repl.nonsense"},
                    {"op": "repl.fetch"},
                    {"op": "repl.fetch", "name": 7},
                    {"op": "repl.fetch", "name": "ckpt-0.npz", "offset": -1},
                ):
                    response = client.request(bad)
                    assert response["ok"] is False, bad
                    # one error frame per bad request, connection intact
                    assert client.ping()

    def test_subscribe_needs_a_durable_service(self, tmp_path):
        service = EstimationService(
            random_document(random.Random(1), 40), grid_size=5, spacing=64
        )
        prime(service)
        engine, server = serve_forever(service)
        try:
            with ServiceClient(server.host, server.port) as client:
                response = client.request(
                    {"op": "repl.subscribe", "from_lsn": 0}
                )
                assert response["ok"] is False
                assert "durable" in str(response["error"])
        finally:
            server.stop()
            server.join(WAIT)
            engine.close()
            service.close()

    def test_duplicate_subscribe_is_refused(self, tmp_path):
        with cluster(tmp_path) as c:
            lsn = insert_some(c.primary, random.Random(2), 2)
            sock, stream, handshake = raw_subscribe(c.host, c.port, lsn)
            try:
                assert handshake["ok"]
                sock.sendall(
                    encode_frame({"op": "repl.subscribe", "from_lsn": 0})
                )
                # skip stream frames until the refusal arrives
                for _ in range(20):
                    frame = json.loads(stream.readline())
                    if frame.get("ok") is False:
                        break
                else:
                    pytest.fail("no refusal frame")
                assert "replication stream" in str(frame["error"])
                assert stream.readline() == b""  # then the stream closes
            finally:
                sock.close()

    def test_net_send_fault_sweep_resumes_from_lsn(self, tmp_path):
        """Disconnect or tear the stream at every frame position; the
        follower must reconnect, resume from its LSN, and converge."""
        with cluster(tmp_path) as c:
            rng = random.Random(23)
            fsvc, _, follower, _ = c.add_follower(
                reconnect_backoff=0.05, max_backoff=0.2
            )
            sweep = [
                (1, "disconnect"), (1, "torn"), (2, "disconnect"),
                (2, "torn"), (3, "disconnect"), (4, "torn"),
            ]
            for nth, action in sweep:
                c.server.faults = FaultPlan(
                    [FaultRule(NET_SEND, nth=nth, action=action)]
                )
                target = insert_some(c.primary, rng, 3)
                wait_caught_up(fsvc, target)
                c.server.faults = None
                assert_state(fsvc, state_of(c.primary))
            assert not follower.stopped

    def test_follower_restart_sweep_resumes(self, tmp_path):
        with cluster(tmp_path) as c:
            rng = random.Random(24)
            final = insert_some(c.primary, rng, 18)
            expected = state_of(c.primary)
            fdir = tmp_path / "f"
            bootstrap_follower(fdir, c.host, c.port)
            applied = 0
            for stop_at in (4, 9, 14, final):
                fsvc = EstimationService.open_durable(fdir)
                assert int(fsvc._last_lsn) >= applied
                follower = Follower(
                    fsvc, None, c.host, c.port,
                    read_timeout=5.0, reconnect_backoff=0.05,
                )
                follower.start()
                wait_caught_up(fsvc, stop_at)
                follower.stop(WAIT)
                applied = int(fsvc._last_lsn)
                fsvc.close()
                if stop_at == 9:
                    # simulated kill: a torn tail on the follower's own
                    # log must be truncated and re-shipped on restart
                    with open(fdir / LOG_NAME, "ab") as handle:
                        handle.write(b"\x03\x02\x01")
            fsvc = EstimationService.open_durable(fdir)
            try:
                assert int(fsvc._last_lsn) == final
                assert_state(fsvc, expected)
            finally:
                fsvc.close()

    def test_apply_failure_stops_the_follower_loudly(self, tmp_path, monkeypatch):
        """Divergence (``WalError``: a committed record fails to apply)
        must stop the apply thread AND say so in ``replica_status`` --
        not die silently while health keeps reporting a connected,
        healthy follower."""
        with cluster(tmp_path) as c:
            rng = random.Random(23)
            fsvc, _feng, follower, _ = c.add_follower()
            wait_caught_up(fsvc, insert_some(c.primary, rng, 1))

            def diverge(service, payload, committed=False):
                raise WalError("committed record failed to apply")

            import repro.service.replica as replica_mod

            monkeypatch.setattr(replica_mod, "apply_logged_batch", diverge)
            insert_some(c.primary, rng, 1)
            assert wait_for(lambda: follower.stopped)
            status = fsvc.replica_status
            assert status["connected"] is False
            assert "WalError" in status["error"]
            assert "failed to apply" in status["error"]

    def test_compaction_outrunning_a_follower_signals_stale(self, tmp_path):
        with cluster(tmp_path) as c:
            rng = random.Random(25)
            # bootstrap at the LSN-0 checkpoint, but do not stream yet
            fdir = tmp_path / "f"
            bootstrap_follower(fdir, c.host, c.port)
            insert_some(c.primary, rng, 4)
            c.primary.checkpoint(full=True)
            compact(tmp_path / "primary", keep_checkpoints=1,
                    wal=c.primary._wal)
            # the wire handshake refuses with the coded stale_lsn error
            with ServiceClient(c.host, c.port) as client:
                response = client.request(
                    {"op": "repl.subscribe", "from_lsn": 0}
                )
                assert response["ok"] is False
                assert response["error"]["code"] == "stale_lsn"
                assert client.ping()
            # a follower behind the watermark stops loudly, not silently
            fsvc = EstimationService.open_durable(fdir)
            follower = Follower(fsvc, None, c.host, c.port, read_timeout=5.0)
            follower.start()
            try:
                assert wait_for(lambda: follower.stopped)
                status = fsvc.replica_status
                assert status["connected"] is False
                assert "re-bootstrap" in status["error"]
            finally:
                follower.stop(WAIT)
                fsvc.close()
            # re-bootstrap from the fresh checkpoint is the repair path
            shutil.rmtree(fdir)
            info = bootstrap_follower(fdir, c.host, c.port)
            assert info["transfer"] in ("copy", "fetch")
            fsvc = EstimationService.open_durable(fdir)
            follower = Follower(fsvc, None, c.host, c.port, read_timeout=5.0)
            follower.start()
            try:
                wait_caught_up(fsvc, int(c.primary._last_lsn))
                assert_state(fsvc, state_of(c.primary))
            finally:
                follower.stop(WAIT)
                fsvc.close()

    def test_promote_follower_by_restart(self, tmp_path):
        """Primary-crash drill: restart the follower's directory without
        --replica-of and it serves writes from the replicated state."""
        rng = random.Random(26)
        fdir = tmp_path / "f"
        with cluster(tmp_path) as c:
            insert_some(c.primary, rng, 6)
            fsvc, _, follower, _ = c.add_follower(name="f")
            target = insert_some(c.primary, rng, 4)
            wait_caught_up(fsvc, target)
            expected = state_of(fsvc)
        # the whole cluster is gone; promote by plain open_durable
        promoted = EstimationService.open_durable(fdir)
        try:
            assert promoted.follower_of is None
            assert int(promoted._last_lsn) == target
            assert_state(promoted, expected)
            result = promoted.insert_subtree(0, random_subtree(rng))
            assert result.nodes >= 1
            assert int(promoted._last_lsn) == target + 1
        finally:
            promoted.close()
