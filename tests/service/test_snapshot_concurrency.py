"""Concurrent snapshot pin/release vs a live writer.

The serve tier reads lock-free against pinned epochs while one writer
thread mutates the service, so the epoch registry's refcounting must
be correct under real thread interleavings.  These tests hammer
``service.snapshot()`` open / estimate / close from reader threads
while a writer applies batches -- including an engineered
gap-exhaustion rebalance (``spacing=4`` leaves 3-label gaps, so
repeated inserts under one leaf force relabels and full rebuilds) --
then check the registry drained to baseline: every refcount returned
to zero, no epoch leaked, and no superseded page was freed while any
snapshot still pinned it.
"""

import gc
import random
import threading
import weakref

from repro.predicates.base import TagPredicate
from repro.service import DeleteOp, EstimationService, InsertOp
from repro.xmltree.tree import Document, Element
from tests.service.test_batch import (
    QUERIES,
    prime,
    random_document,
    random_subtree,
)


def make_service(seed: int = 7, nodes: int = 60, **overrides) -> EstimationService:
    settings = dict(grid_size=5, spacing=4, rebuild_threshold=0.99)
    settings.update(overrides)
    service = EstimationService(random_document(random.Random(seed), nodes), **settings)
    prime(service)
    return service


def run_threads(targets, timeout=60.0):
    threads = [threading.Thread(target=t) for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        assert not thread.is_alive(), "worker thread hung"


def test_readers_hammer_pin_release_against_batching_writer():
    """Readers open/read/close snapshots as fast as they can while the
    writer applies mixed batches; the tight spacing makes relabels and
    rebuilds routine, so epochs churn constantly under the readers."""
    service = make_service(seed=11)
    stop = threading.Event()
    errors = []

    def reader(seed: int):
        rng = random.Random(seed)
        try:
            while not stop.is_set():
                snapshot = service.snapshot()
                try:
                    query = rng.choice(QUERIES)
                    first = snapshot.estimate(query).value
                    # A pinned snapshot is immutable: re-asking mid-write
                    # must be bit-identical.
                    assert snapshot.estimate(query).value == first
                finally:
                    snapshot.close()
                if rng.random() < 0.3:
                    snapshot.close()  # racing double close: still one decref
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            stop.set()

    def writer():
        rng = random.Random(99)
        try:
            for round_ in range(30):
                if round_ % 3 == 2 and len(service) > 20:
                    # Deletes go one per batch: an in-batch delete shifts
                    # later integer targets, so mixing random indices
                    # into one batch is not structurally valid.
                    service.apply_batch([DeleteOp(rng.randrange(1, len(service)))])
                else:
                    service.apply_batch(
                        [
                            InsertOp(rng.randrange(len(service)), random_subtree(rng))
                            for _ in range(rng.randrange(1, 5))
                        ]
                    )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            stop.set()

    run_threads([lambda s=s: reader(s) for s in range(6)] + [writer])
    assert not errors, errors[0]
    # Every pin was released: the registry drained back to baseline.
    assert service.epoch_registry.live_epochs() == []
    service.differential_check(QUERIES)


def test_engineered_rebalance_under_pinned_readers():
    """The narrow-gap path: spacing=2 leaves 1-label gaps, so hammering
    inserts under a single leaf exhausts gaps and forces mid-batch
    relabels + rebuilds while readers hold pins across them."""
    document = Document()
    root = Element("root")
    document.append(root)
    for tag in ("a", "b", "c"):
        root.append(Element(tag))
    service = EstimationService(
        document, grid_size=4, spacing=2, rebuild_threshold=0.99
    )
    prime(service)
    queries = ["//root//a", "//root//b", "//a//b"]
    stop = threading.Event()
    errors = []
    pinned = []  # (snapshot, expected values) held across rebuilds

    def reader(seed: int):
        rng = random.Random(seed)
        try:
            while not stop.is_set():
                snapshot = service.snapshot()
                query = rng.choice(queries)
                value = snapshot.estimate(query).value
                assert snapshot.estimate(query).value == value
                snapshot.close()
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
            stop.set()

    def writer():
        try:
            rebuilds0 = service.stats.rebuilds
            for round_ in range(10):
                pinned.append(
                    (
                        service.snapshot(),
                        {q: service.estimate(q).value for q in queries},
                    )
                )
                # Consecutive inserts under the same (deep) leaf cannot
                # fit the 1-label gaps: relabel + rebuild in flight.
                target = service.tree.elements[len(service) - 1]
                service.apply_batch(
                    [InsertOp(target, Element("b")), InsertOp(target, Element("c"))]
                )
            assert service.stats.rebuilds > rebuilds0
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            stop.set()

    run_threads([lambda s=s: reader(s) for s in range(4)] + [writer])
    assert not errors, errors[0]
    # Long-held pins stayed bit-stable across every forced rebuild.
    for snapshot, expected in pinned:
        for query, value in expected.items():
            assert snapshot.estimate(query).value == value
        snapshot.close()
    assert service.epoch_registry.live_epochs() == []


def test_racing_closes_decrement_exactly_once():
    """N threads all close the same snapshot at once: the pin drops
    exactly once, never stealing a sibling snapshot's refcount."""
    service = make_service(seed=13, spacing=64)
    for _ in range(20):
        victim = service.snapshot()
        keeper = service.snapshot()
        epoch = victim.epoch
        assert service.epoch_registry.refcount(epoch) == 2
        barrier = threading.Barrier(8)

        def close_it():
            barrier.wait()
            victim.close()

        run_threads([close_it] * 8)
        assert service.epoch_registry.refcount(epoch) == 1  # keeper survives
        keeper.close()
        assert service.epoch_registry.refcount(epoch) == 0
    assert service.epoch_registry.live_epochs() == []


def test_superseded_page_pinned_by_racing_readers_freed_only_after_last_close():
    """A page superseded mid-churn stays alive while any concurrent
    reader still pins its epoch, and dies once the last pin drops."""
    service = make_service(seed=17, spacing=64)
    service.estimate("//a//b")
    predicate = next(iter(service.estimator._position_cache))
    page_ref = weakref.ref(service.estimator._position_cache[predicate].page)

    holders = [service.snapshot() for _ in range(4)]
    rng = random.Random(19)
    for _ in range(8):  # push the live histograms onto fresh pages
        service.snapshot().close()
        service.insert_subtree(rng.randrange(len(service)), random_subtree(rng))

    errors = []

    def close_some(snapshots):
        try:
            for snapshot in snapshots:
                snapshot.close()
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    # Close all but one concurrently; the survivor must keep the page.
    run_threads(
        [lambda: close_some(holders[:2]), lambda: close_some(holders[2:3])]
    )
    assert not errors
    gc.collect()
    assert page_ref() is not None, "page freed while still pinned"
    holders[3].close()
    del holders
    gc.collect()
    assert page_ref() is None
    assert service.epoch_registry.live_epochs() == []


def test_snapshot_open_during_writer_publish_never_pins_torn_state():
    """Opening snapshots concurrently with single-update publishes:
    every snapshot observes some complete epoch (its estimates are
    internally consistent and repeatable)."""
    service = make_service(seed=23, spacing=64, nodes=40)
    stop = threading.Event()
    errors = []
    count_pred = TagPredicate("a")

    def opener():
        try:
            while not stop.is_set():
                with service.snapshot() as snapshot:
                    # Catalog and label table must agree inside a pin.
                    count = snapshot.catalog.stats(count_pred).count
                    total = snapshot.position_histogram(count_pred).total()
                    assert total == float(count)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
            stop.set()

    def writer():
        rng = random.Random(29)
        try:
            for _ in range(40):
                service.insert_subtree(
                    rng.randrange(len(service)), Element("a")
                )
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            stop.set()

    run_threads([opener, opener, writer])
    assert not errors, errors[0]
    assert service.epoch_registry.live_epochs() == []
