"""Page-file checkpoints: containers, lazy warm start, retention, faults.

This suite covers the out-of-core storage engine end to end at the
service layer:

* container duality -- the default page-file checkpoint pair, the
  legacy ``.npz`` spelling, and reference chains that cross formats;
* lazy warm start -- ``open_durable(lazy=True)`` serves estimates
  straight from the mapping without decoding the forest, forces on the
  first structural touch, and degrades to an eager load whenever the
  checkpoint cannot be mapped (legacy ``.npz``) or a WAL suffix must
  replay;
* mapping-aware retention -- ``prune_checkpoints`` defers a checkpoint
  any file of which is still mmap'd, and reclaims it once the mapping
  drops;
* failure paths -- a truncated/bit-flipped/footer-corrupted page-file
  checkpoint falls back to the older checkpoint plus log replay, at
  every truncation offset;
* the vectorised WAL v2 decoder pinned against the per-op reference
  decoder over a mixed v1/v2 log containing every record type.
"""

import random
import shutil
import struct
import zlib

import numpy as np
import pytest

from repro.service import EstimationService
from repro.service.wal import (
    _HEADER,
    _V2_MARKER,
    ColumnarOps,
    LOG_NAME,
    PAGED_STATE_SUFFIX,
    PAGED_SUMMARY_SUFFIX,
    STATE_SUFFIX,
    SUMMARY_SUFFIX,
    _decode_payload_v2,
    _decode_payload_v2_reference,
    checkpoint_paths,
    list_checkpoints,
    prune_checkpoints,
    read_records,
)
from repro.storage.pagefile import PageFile, is_page_file, mapped_paths
from tests.service.test_wal import (
    QUERIES,
    assert_state,
    make_durable,
    run_batches,
    state_of,
)


def estimates_of(service):
    return {q: service.estimate(q).value for q in QUERIES}


def durable_with_history(directory, batches=3, ops=4, seed=7, nodes=50):
    """A durable service with two full checkpoints and a replayable
    log between and after them; returns (service, states)."""
    service = make_durable(directory, seed=seed, nodes=nodes)
    rng = random.Random(3)
    states = run_batches(service, rng, batches, ops)
    service.checkpoint(full=True)
    states += run_batches(service, rng, 1, ops)
    return service, states


class TestCheckpointContainers:
    def test_default_checkpoint_is_a_pagefile_pair(self, tmp_path):
        service = make_durable(tmp_path / "wal")
        service.checkpoint(full=True)
        lsn = list_checkpoints(tmp_path / "wal")[0]
        state_path, summary_path = checkpoint_paths(tmp_path / "wal", lsn)
        assert state_path.name.endswith(PAGED_STATE_SUFFIX)
        assert summary_path.name.endswith(PAGED_SUMMARY_SUFFIX)
        assert is_page_file(state_path) and is_page_file(summary_path)
        service.close()

    def test_pagefile_recovery_is_bit_identical(self, tmp_path):
        service, states = durable_with_history(tmp_path / "wal")
        live = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, live)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_legacy_npz_container_still_round_trips(self, tmp_path):
        service = make_durable(tmp_path / "wal")
        service._ckpt_container = "npz"
        rng = random.Random(5)
        run_batches(service, rng, 2, 3)
        service.checkpoint(full=True)
        live = state_of(service)
        lsn = list_checkpoints(tmp_path / "wal")[0]
        state_path, summary_path = checkpoint_paths(tmp_path / "wal", lsn)
        assert state_path.name.endswith(STATE_SUFFIX)
        assert summary_path.name.endswith(SUMMARY_SUFFIX)
        assert not is_page_file(state_path)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, live)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_reference_chain_crosses_container_formats(self, tmp_path):
        # Full checkpoint in the legacy spelling, then an incremental
        # checkpoint in the page-file spelling whose manifest references
        # the npz base: resolution must sniff each file by magic.
        service = make_durable(tmp_path / "wal")
        service._ckpt_container = "npz"
        rng = random.Random(11)
        run_batches(service, rng, 1, 3)
        service.checkpoint(full=True)
        service._ckpt_container = "pagefile"
        run_batches(service, rng, 1, 3)
        service.checkpoint()
        live = state_of(service)
        service.close()
        suffixes = sorted(
            "".join(p.suffixes) for p in (tmp_path / "wal").glob("ckpt-*")
        )
        assert any(s.endswith(".npz") for s in suffixes)
        assert any(s.endswith(".pgf") for s in suffixes)
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, live)
        recovered.close()


class TestLazyWarmStart:
    def test_estimates_serve_from_the_mapping_without_forcing(self, tmp_path):
        service = make_durable(tmp_path / "wal")
        states = run_batches(service, random.Random(3), 3, 4)
        service.checkpoint(full=True)
        live = estimates_of(service)
        service.close()

        lazy = EstimationService.open_durable(tmp_path / "wal", lazy=True)
        elements = lazy.tree.elements
        assert type(elements).__name__ == "LazyElements"
        assert not elements.materialized
        # len()/truthiness answer from metadata without decoding.
        assert len(lazy.tree) == len(states[-1]["start"])
        assert bool(elements)
        assert estimates_of(lazy) == live
        assert not elements.materialized, "estimation forced the forest"
        lsn = list_checkpoints(tmp_path / "wal")[0]
        state_path, _ = checkpoint_paths(tmp_path / "wal", lsn)
        assert state_path.resolve() in mapped_paths()

        # First structural touch decodes the forest; everything after
        # that is the plain eager service.
        _ = elements[0]
        assert elements.materialized
        assert_state(lazy, states[-1])
        lazy.differential_check(QUERIES)
        lazy.close()

    def test_updates_force_then_apply_normally(self, tmp_path):
        from tests.service.test_batch import random_subtree

        service = make_durable(tmp_path / "wal")
        service.checkpoint(full=True)
        service.close()
        lazy = EstimationService.open_durable(tmp_path / "wal", lazy=True)
        proxy = lazy.tree.elements
        assert not proxy.materialized
        rng = random.Random(13)
        run_batches(lazy, rng, 1, 3)
        # Applying the batch forced the proxy (an update may then swap
        # in a plain relabelled list; either way nothing stays lazy).
        assert proxy.materialized
        assert getattr(lazy.tree.elements, "materialized", True)
        lazy.differential_check(QUERIES)
        live = state_of(lazy)
        lazy.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, live)
        recovered.close()

    def test_wal_suffix_replay_forces_the_forest(self, tmp_path):
        service = make_durable(tmp_path / "wal")
        rng = random.Random(3)
        run_batches(service, rng, 1, 3)
        service.checkpoint(full=True)
        states = run_batches(service, rng, 1, 3)  # suffix past the ckpt
        service.close()
        lazy = EstimationService.open_durable(tmp_path / "wal", lazy=True)
        assert lazy.recovery_info.batches_replayed >= 1
        # Replay touches the tree: nothing is left unforced (a relabel
        # during replay may replace the proxy with a plain list).
        assert getattr(lazy.tree.elements, "materialized", True)
        assert_state(lazy, states[-1])
        lazy.close()

    def test_lazy_over_legacy_npz_degrades_to_eager(self, tmp_path):
        service = make_durable(tmp_path / "wal")
        service._ckpt_container = "npz"
        run_batches(service, random.Random(5), 1, 3)
        service.checkpoint(full=True)
        live = state_of(service)
        service.close()
        lazy = EstimationService.open_durable(tmp_path / "wal", lazy=True)
        # An npz cannot be mapped: the open is silently eager.
        assert not hasattr(lazy.tree.elements, "materialized")
        assert_state(lazy, live)
        lazy.close()

    def test_parallel_mapped_build_is_bit_identical_without_forcing(
        self, tmp_path
    ):
        from repro.histograms.parallel import build_statistics_parallel

        service = make_durable(tmp_path / "wal")
        run_batches(service, random.Random(3), 2, 4)
        service.checkpoint(full=True)
        service.close()

        eager = EstimationService.open_durable(tmp_path / "wal")
        built_eager = build_statistics_parallel(
            eager.tree, eager.estimator.grid, n_workers=2
        )
        lazy = EstimationService.open_durable(tmp_path / "wal", lazy=True)
        built_mapped = build_statistics_parallel(
            lazy.tree,
            lazy.estimator.grid,
            n_workers=2,
            tag_indices=lazy.catalog._tag_indices,
        )
        assert not lazy.tree.elements.materialized, "workers forced the forest"
        assert set(built_mapped.tag_indices) == set(built_eager.tag_indices)
        for tag in built_eager.tag_indices:
            assert np.array_equal(
                built_mapped.tag_indices[tag], built_eager.tag_indices[tag]
            ), tag
            assert np.array_equal(
                built_mapped.position[tag]._page.codes,
                built_eager.position[tag]._page.codes,
            ), tag
            assert np.array_equal(
                built_mapped.position[tag]._page.counts,
                built_eager.position[tag]._page.counts,
            ), tag
        lazy.close()
        eager.close()


class TestMappedRetention:
    def test_prune_defers_a_mapped_checkpoint_then_reclaims_it(self, tmp_path):
        directory = tmp_path / "wal"
        service, _ = durable_with_history(directory)
        service.checkpoint(full=True)
        lsns = list_checkpoints(directory)
        assert len(lsns) >= 3
        victim = lsns[-2]  # superseded, outside keep=1 retention
        state_path, _ = checkpoint_paths(directory, victim)
        backing = PageFile(state_path)
        view = backing["start"]  # live zero-copy view into the mapping

        pruned = prune_checkpoints(directory, 1)
        assert victim not in pruned
        assert state_path.exists(), "pruned a checkpoint under a live mapping"
        assert np.array_equal(view, backing["start"])

        del view
        backing.close()
        assert backing.closed
        pruned = prune_checkpoints(directory, 1)
        assert victim in pruned
        assert not state_path.exists()
        service.close()

    def test_lazy_service_protects_its_own_checkpoint(self, tmp_path):
        directory = tmp_path / "wal"
        service = make_durable(directory)
        run_batches(service, random.Random(3), 1, 3)
        service.checkpoint(full=True)
        service.close()
        mapped_lsn = list_checkpoints(directory)[0]
        lazy = EstimationService.open_durable(directory, lazy=True)
        # A newer checkpoint pushes the mapped one out of retention.
        run_batches(lazy, random.Random(4), 1, 3)
        lazy.checkpoint(full=True)
        state_path, _ = checkpoint_paths(directory, mapped_lsn)
        # The service holds its backing mapping strongly even after the
        # forest materialised, so retention keeps deferring.
        prune_checkpoints(directory, 1)
        assert state_path.exists()
        lazy.close()


class TestCorruptionFallback:
    def corrupt_and_recover(self, tmp_path, corrupt):
        directory = tmp_path / "wal"
        service, _ = durable_with_history(directory)
        live = state_of(service)
        service.close()
        newest = list_checkpoints(directory)[0]
        older = list_checkpoints(directory)[1]
        state_path, _ = checkpoint_paths(directory, newest)
        corrupt(state_path)
        recovered = EstimationService.open_durable(directory)
        assert recovered.recovery_info.checkpoint_lsn == older
        assert_state(recovered, live)
        recovered.close()

    def test_truncated_state_file_falls_back(self, tmp_path):
        def corrupt(path):
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])

        self.corrupt_and_recover(tmp_path, corrupt)

    def test_bit_flipped_segment_falls_back(self, tmp_path):
        def corrupt(path):
            data = bytearray(path.read_bytes())
            data[128] ^= 0x01  # inside the first segment
            path.write_bytes(bytes(data))

        self.corrupt_and_recover(tmp_path, corrupt)

    def test_corrupted_footer_directory_falls_back(self, tmp_path):
        def corrupt(path):
            data = bytearray(path.read_bytes())
            # Smash the 8-byte tail struct: the footer can no longer be
            # located, the whole directory is untrusted.
            data[-16:-8] = b"\xff" * 8
            path.write_bytes(bytes(data))

        self.corrupt_and_recover(tmp_path, corrupt)

    def test_lazy_open_of_corrupt_checkpoint_falls_back(self, tmp_path):
        directory = tmp_path / "wal"
        service, _ = durable_with_history(directory)
        live = state_of(service)
        service.close()
        newest, older = list_checkpoints(directory)[:2]
        state_path, _ = checkpoint_paths(directory, newest)
        data = bytearray(state_path.read_bytes())
        data[128] ^= 0x01
        state_path.write_bytes(bytes(data))
        lazy = EstimationService.open_durable(directory, lazy=True)
        assert lazy.recovery_info.checkpoint_lsn == older
        assert_state(lazy, live)
        lazy.close()

    def test_kill_at_every_offset_of_the_checkpoint_write(self, tmp_path):
        """A page-file checkpoint torn at ANY byte offset must never be
        trusted: recovery falls back to the older checkpoint and log
        replay reproduces the exact live state."""
        directory = tmp_path / "wal"
        service, _ = durable_with_history(directory, nodes=30)
        live = state_of(service)
        service.close()
        newest = list_checkpoints(directory)[0]
        older = list_checkpoints(directory)[1]
        state_path, _ = checkpoint_paths(directory, newest)
        intact = state_path.read_bytes()
        # Stride keeps the sweep tractable while still crossing every
        # region (magic, each segment, padding, footer, tail); the
        # per-prefix exhaustive sweep lives in the format-layer tests.
        step = max(1, len(intact) // 64)
        offsets = list(range(0, len(intact), step)) + [len(intact) - 1]
        for cut in offsets:
            state_path.write_bytes(intact[:cut])
            recovered = EstimationService.open_durable(directory)
            assert recovered.recovery_info.checkpoint_lsn == older, cut
            assert_state(recovered, live)
            recovered.close()
        # Restore the intact bytes: the newest checkpoint loads again.
        state_path.write_bytes(intact)
        recovered = EstimationService.open_durable(directory)
        assert recovered.recovery_info.checkpoint_lsn == newest
        assert_state(recovered, live)
        recovered.close()


class TestVectorizedV2Decode:
    """Differential pin: the vectorised ``_decode_payload_v2`` against
    the retained per-op reference decoder, over a mixed v1/v2 log that
    contains every record type."""

    def mixed_log(self, directory):
        service = make_durable(directory, seed=7, nodes=40)
        rng = random.Random(3)
        run_batches(service, rng, 2, 4)
        service.checkpoint(full=True)
        # Compaction with retention drops the dead prefix and leads the
        # rewritten log with a "base" watermark record.
        service._keep_checkpoints = 1
        service.compact()
        service._wal.codec = "json"  # legacy v1 writer for a stretch
        run_batches(service, rng, 2, 4)
        service._wal.codec = "binary"
        run_batches(service, rng, 3, 5)
        live = state_of(service)
        service.close()
        return live

    def payloads(self, log_path):
        records, _ = read_records(log_path)
        data = log_path.read_bytes()
        return [
            (r, data[r.offset + _HEADER.size : r.end_offset]) for r in records
        ]

    def test_columnar_decode_matches_reference_on_every_record(self, tmp_path):
        self.mixed_log(tmp_path / "wal")
        payloads = self.payloads(tmp_path / "wal" / LOG_NAME)
        assert payloads, "workload produced an empty log"
        types_seen = set()
        v1 = v2 = 0
        for record, raw in payloads:
            types_seen.add(record.type)
            if raw[:1] != bytes([_V2_MARKER]):
                v1 += 1
                continue
            v2 += 1
            got = _decode_payload_v2(raw)
            ref = _decode_payload_v2_reference(raw)
            assert got is not None and ref is not None
            assert set(got) == set(ref)
            for key in ref:
                if key == "ops":
                    assert isinstance(got["ops"], ColumnarOps)
                    assert list(got["ops"]) == ref["ops"]
                    assert got["ops"] == ref["ops"]  # C-level __eq__
                    assert len(got["ops"]) == len(ref["ops"])
                    for k, entry in enumerate(ref["ops"]):
                        assert got["ops"][k] == entry
                else:
                    assert got[key] == ref[key], key
        assert v1 > 0 and v2 > 0, "log is not actually mixed"
        # Every record type crosses the decoder at least once; aborts
        # are workload-dependent, so synthesise coverage if the seed
        # produced none rather than assert on luck.
        assert {"batch", "commit", "base"} <= types_seen

    def test_columnar_ops_slicing_and_iteration(self, tmp_path):
        self.mixed_log(tmp_path / "wal")
        for record, raw in self.payloads(tmp_path / "wal" / LOG_NAME):
            if record.type != "batch" or raw[:1] != bytes([_V2_MARKER]):
                continue
            cols = _decode_payload_v2(raw)["ops"]
            ref = _decode_payload_v2_reference(raw)["ops"]
            if len(cols) < 2:
                continue
            assert cols[1:] == ref[1:]
            assert cols[:-1] == ref[:-1]
            assert [op for op in cols] == ref
            return
        pytest.skip("no multi-op v2 batch in the seeded workload")

    def test_replay_of_mixed_log_recovers_live_state(self, tmp_path):
        live = self.mixed_log(tmp_path / "wal")
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, live)
        recovered.differential_check(QUERIES)
        recovered.close()
