"""Admission backpressure: queue bounds, per-connection in-flight
caps, stalled-client eviction, drain bounds, and the `health` op.

These are the overload paths: the server must refuse work it cannot
queue (fast, with a retryable coded error) rather than buffer without
bound, must not let one stalled or flooding connection starve the
rest, and must keep answering `health` throughout.
"""

import time

import pytest

from repro.service import OverloadedError, ServiceClient
from repro.service.protocol import encode_frame
from repro.service.server import EstimationServer, ServiceEngine
from tests.service.test_server import make_service, raw_connection, read_frame

WAIT = 30.0


def start_server(service, *, engine_options=None, **server_options):
    engine = ServiceEngine(service, **(engine_options or {}))
    server = EstimationServer(engine, host="127.0.0.1", port=0, **server_options)
    server.start()
    return engine, server


def stop_server(engine, server, service):
    server.stop()
    server.join(timeout=10)
    engine.close()
    service.close()


class TestQueueBound:
    def test_overloaded_frame_over_the_wire(self):
        """A queue past its high-water mark answers mutations with a
        retryable `overloaded` frame without touching the writer."""
        service = make_service(seed=7)
        engine, server = start_server(service)
        sock = raw_connection(server)
        try:
            fileobj = sock.makefile("rb")
            engine.max_queue = 0  # everything is past the mark
            sock.sendall(encode_frame(
                {"op": "insert", "parent": {"tag": "root"},
                 "xml": "<a/>", "id": 1}
            ))
            rejected = read_frame(fileobj)
            assert rejected["ok"] is False and rejected["id"] == 1
            assert rejected["error"]["code"] == "overloaded"
            assert rejected["error"]["retryable"] is True
            assert rejected["error"]["retry_after_ms"] > 0
            assert engine.stats.ops_rejected == 1
            # The connection survives the rejection; once the queue
            # relents the same connection's mutations flow again.
            engine.max_queue = None
            sock.sendall(encode_frame(
                {"op": "insert", "parent": {"tag": "root"},
                 "xml": "<a/>", "id": 2}
            ))
            accepted = read_frame(fileobj)
            assert accepted["ok"] and accepted["id"] == 2
        finally:
            sock.close()
            stop_server(engine, server, service)

    def test_immediate_ops_bypass_the_queue_bound(self):
        service = make_service(seed=7)
        engine, server = start_server(service)
        try:
            engine.max_queue = 0
            with ServiceClient(server.host, server.port, timeout=WAIT) as db:
                assert db.ping()
                assert db.health()["mode"] == "SERVING"
        finally:
            stop_server(engine, server, service)

    def test_constructor_validates_max_queue(self):
        service = make_service(seed=7)
        try:
            with pytest.raises(ValueError, match="max_queue"):
                ServiceEngine(service, max_queue=0)
        finally:
            service.close()

    def test_engine_level_reject_shape(self):
        service = make_service(seed=7)
        engine = ServiceEngine(service, max_queue=1)
        try:
            engine.max_queue = 0
            with pytest.raises(OverloadedError) as excinfo:
                engine.submit({"op": "stats"})
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retryable
        finally:
            engine.close()
            service.close()


class TestInflightCap:
    def test_per_connection_cap_fast_rejects(self):
        """With the writer lingering, a second pipelined mutation on the
        same connection breaches max_inflight=1 and is fast-rejected;
        the first completes and the connection stays usable."""
        service = make_service(seed=7)
        engine, server = start_server(
            service,
            engine_options={"max_ops": 64, "linger": 0.5},
            max_inflight=1,
        )
        sock = raw_connection(server)
        try:
            fileobj = sock.makefile("rb")
            sock.sendall(encode_frame(
                {"op": "insert", "parent": {"tag": "root"},
                 "xml": "<a/>", "id": 1}
            ) + encode_frame(
                {"op": "insert", "parent": {"tag": "root"},
                 "xml": "<b/>", "id": 2}
            ))
            # Responses are written strictly in request order: the
            # lingering insert's ack first, then the fast-reject that
            # was actually decided long before it.
            first = read_frame(fileobj)
            assert first["ok"] and first["id"] == 1
            second = read_frame(fileobj)
            assert second["ok"] is False and second["id"] == 2
            assert second["error"]["code"] == "overloaded"
            assert second["error"]["retryable"] is True
            assert "in flight" in second["error"]["message"]
            assert engine.stats.ops_rejected == 1
            # Un-pipelined traffic on the same connection still flows.
            sock.sendall(encode_frame(
                {"op": "insert", "parent": {"tag": "root"},
                 "xml": "<c/>", "id": 3}
            ))
            assert read_frame(fileobj)["ok"]
        finally:
            sock.close()
            stop_server(engine, server, service)

    def test_separate_connections_have_separate_caps(self):
        service = make_service(seed=7)
        engine, server = start_server(service, max_inflight=1)
        one = raw_connection(server)
        two = raw_connection(server)
        try:
            frame = encode_frame(
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"}
            )
            one.sendall(frame)
            two.sendall(frame)
            assert read_frame(one.makefile("rb"))["ok"]
            assert read_frame(two.makefile("rb"))["ok"]
            assert engine.stats.ops_rejected == 0
        finally:
            one.close()
            two.close()
            stop_server(engine, server, service)

    def test_constructor_validates_options(self):
        service = make_service(seed=7)
        engine = ServiceEngine(service)
        try:
            with pytest.raises(ValueError, match="max_inflight"):
                EstimationServer(engine, max_inflight=0)
            with pytest.raises(ValueError, match="drain_timeout"):
                EstimationServer(engine, drain_timeout=0)
            with pytest.raises(ValueError, match="client_timeout"):
                EstimationServer(engine, client_timeout=-1.0)
        finally:
            engine.close()
            service.close()


class TestStalledClients:
    def test_silent_connection_is_evicted(self):
        service = make_service(seed=7)
        engine, server = start_server(service, client_timeout=0.2)
        sock = raw_connection(server)
        try:
            # Send nothing: the read deadline passes and the server
            # hangs up (EOF on our side).
            assert sock.makefile("rb").readline() == b""
            deadline = time.monotonic() + WAIT
            while (engine.stats.sessions_evicted == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert engine.stats.sessions_evicted == 1
        finally:
            sock.close()
            stop_server(engine, server, service)

    def test_active_connection_is_not_evicted(self):
        service = make_service(seed=7)
        engine, server = start_server(service, client_timeout=0.5)
        try:
            with ServiceClient(server.host, server.port, timeout=WAIT) as db:
                for _ in range(4):
                    time.sleep(0.2)  # each request resets the deadline
                    assert db.ping()
            assert engine.stats.sessions_evicted == 0
        finally:
            stop_server(engine, server, service)

    def test_drain_timeout_bounds_teardown(self):
        """Teardown with an unflushed response pending completes within
        the configured drain bound instead of waiting out the writer."""
        service = make_service(seed=7)
        engine, server = start_server(
            service,
            engine_options={"max_ops": 64, "linger": 5.0},
            drain_timeout=0.1,
        )
        sock = raw_connection(server)
        try:
            sock.sendall(encode_frame(
                {"op": "insert", "parent": {"tag": "root"}, "xml": "<a/>"}
            ))
            time.sleep(0.05)  # let the loop admit it
            started = time.monotonic()
            server.stop()
            server.join(timeout=10)
            assert time.monotonic() - started < 3.0
        finally:
            sock.close()
            engine.close()
            service.close()


class TestHealthOp:
    def test_health_over_the_wire(self):
        service = make_service(seed=7)
        engine, server = start_server(service)
        try:
            with ServiceClient(server.host, server.port, timeout=WAIT) as db:
                health = db.health()
                assert health["ok"] and health["op"] == "health"
                assert health["mode"] == "SERVING"
                assert health["queue_depth"] == 0
                assert health["epoch"] >= 0
                assert health["wal"] == {"attached": False, "lag": 0}
        finally:
            stop_server(engine, server, service)

    def test_health_answers_while_queue_is_full(self):
        """`health` is an immediate op: it reports even when admissions
        are being rejected, which is exactly when operators need it."""
        service = make_service(seed=7)
        engine, server = start_server(service)
        try:
            engine.max_queue = 0
            with ServiceClient(server.host, server.port, timeout=WAIT) as db:
                refused = db.request({"op": "insert", "parent": {"tag": "root"},
                                      "xml": "<a/>"})  # raw: no retry
                assert refused["ok"] is False
                assert refused["error"]["code"] == "overloaded"
                assert db.health()["mode"] == "SERVING"
        finally:
            stop_server(engine, server, service)
