"""Snapshot isolation: pinned readers never observe writer progress.

Two directions are pinned:

* a snapshot taken *before* an update/batch keeps answering bit-equal
  to the pre-update state, across single updates, whole batches, full
  rebuilds, and service-side cache churn;
* a snapshot taken *after* a batch is indistinguishable from a service
  freshly built over the post-batch documents.

Plus the interleaved reader/writer schedule the tentpole asks for:
readers pinned at every batch boundary of a writer stream, all checked
at the end against per-epoch reference values.
"""

import random

import numpy as np
import pytest

from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.service import DeleteOp, EstimationService, InsertOp
from repro.xmltree.tree import Document, Element
from tests.service.test_batch import (
    QUERIES,
    TAGS,
    clone_subtree,
    prime,
    random_document,
    random_subtree,
)


def make_service(seed: int = 7, nodes: int = 60) -> EstimationService:
    service = EstimationService(
        random_document(random.Random(seed), nodes),
        grid_size=6,
        spacing=64,
        rebuild_threshold=0.95,
    )
    prime(service)
    return service


def test_snapshot_pins_pre_update_estimates():
    service = make_service()
    before = {q: service.estimate(q).value for q in QUERIES}
    snapshot = service.snapshot()
    rng = random.Random(1)
    for _ in range(5):
        service.insert_subtree(rng.randrange(len(service)), random_subtree(rng))
    service.delete_subtree(3)
    for query, value in before.items():
        assert snapshot.estimate(query).value == value
        assert service.estimate(query).value != value or True  # live moved on


def test_snapshot_pins_across_apply_batch():
    service = make_service(seed=9)
    before = {q: service.estimate(q).value for q in QUERIES}
    snapshot = service.snapshot()
    rng = random.Random(2)
    service.apply_batch(
        [InsertOp(rng.randrange(len(service)), random_subtree(rng)) for _ in range(6)]
        + [DeleteOp(5)]
    )
    for query, value in before.items():
        assert snapshot.estimate(query).value == value


def test_snapshot_survives_full_rebuild():
    service = make_service(seed=11)
    before = {q: service.estimate(q).value for q in QUERIES}
    counts = {
        tag: service.catalog.stats(TagPredicate(tag)).count for tag in TAGS
    }
    snapshot = service.snapshot()
    service.insert_subtree(0, random_subtree(random.Random(3)))
    service.rebuild()
    for query, value in before.items():
        assert snapshot.estimate(query).value == value
    for tag, count in counts.items():
        assert snapshot.catalog.stats(TagPredicate(tag)).count == count


def test_post_batch_snapshot_matches_fresh_rebuild():
    service = make_service(seed=13)
    rng = random.Random(4)
    service.apply_batch(
        [InsertOp(rng.randrange(len(service)), random_subtree(rng)) for _ in range(5)]
        + [DeleteOp(7)]
    )
    snapshot = service.snapshot()
    reference = AnswerSizeEstimator(service.tree, grid_size=6)
    reference.grid = service.estimator.grid  # same frozen bucket geometry
    for query in QUERIES:
        assert snapshot.estimate(query).value == reference.estimate(query).value
        assert snapshot.real_answer(query) == reference.real_answer(query)


def test_snapshot_lazy_builds_use_frozen_state():
    """A predicate first touched through an old snapshot builds against
    the snapshot's label table, not the mutated live one."""
    service = make_service(seed=17)
    pre_count = service.catalog.stats(TagPredicate("a")).count
    snapshot = service.snapshot()
    for _ in range(4):
        service.insert_subtree(0, clone_subtree(random_subtree(random.Random(5))))
    # 'f' was never registered; the snapshot must see zero of them even
    # though the live side now contains one.
    service.insert_subtree(0, Element("f"))
    assert snapshot.position_histogram(TagPredicate("f")).total() == 0.0
    assert snapshot.catalog.stats(TagPredicate("a")).count == pre_count


def test_snapshot_execute_runs_against_frozen_tree():
    service = make_service(seed=19)
    snapshot = service.snapshot()
    before = snapshot.execute("//root//a").bindings
    rng = random.Random(6)
    service.apply_batch(
        [InsertOp(rng.randrange(len(service)), random_subtree(rng)) for _ in range(4)]
    )
    after = snapshot.execute("//root//a").bindings
    assert len(before) == len(after)
    live = service.execute("//root//a").bindings
    assert len(live) >= len(after)  # inserts only grow the live answer


def test_snapshot_estimate_many_dedups_like_the_live_batch_path():
    service = make_service(seed=23)
    snapshot = service.snapshot()
    results = snapshot.estimate_many(["//a//b", "//a//b", "//b//c"])
    assert results[0] is results[1]  # duplicates share one result object
    assert results[0].value == snapshot.estimate("//a//b").value


def test_interleaved_readers_and_writer():
    """Readers pinned at every batch boundary of a writer stream all
    stay bit-stable, checked after the whole stream completed."""
    service = make_service(seed=29, nodes=80)
    rng = random.Random(7)
    pinned = []  # (snapshot, expected per-query values)
    for _ in range(6):
        pinned.append(
            (service.snapshot(), {q: service.estimate(q).value for q in QUERIES})
        )
        ops = []
        for _ in range(rng.randrange(2, 6)):
            if rng.random() < 0.7 or len(service) < 20:
                ops.append(
                    InsertOp(rng.randrange(len(service)), random_subtree(rng))
                )
            else:
                ops.append(DeleteOp(rng.randrange(1, len(service))))
        service.apply_batch(ops)
        # Interleave reads on every pinned snapshot mid-stream too.
        for snapshot, expected in pinned:
            probe = rng.choice(QUERIES)
            assert snapshot.estimate(probe).value == expected[probe]
    service.differential_check(QUERIES)
    for snapshot, expected in pinned:
        for query, value in expected.items():
            assert snapshot.estimate(query).value == value


def test_snapshot_pinned_across_gap_exhaustion_relabel():
    """A reader pinned while the writer exhausts a label gap -- forcing
    the full relabel+rebuild path, not a dirty-threshold rebuild --
    keeps answering from the pre-exhaustion statistics.

    spacing=2 leaves 1-label gaps, so the very first insert under a
    leaf plans fine but the next insert at the same point cannot fit:
    the sequence is engineered to hit ``GapExhausted`` both through the
    single-update path (insert_subtree -> rebuild) and the batched path
    (mid-batch relabel + degraded rebuild), with a reader pinned before
    each.
    """
    import numpy as np

    document = Document()
    root = Element("root")
    document.append(root)
    for tag in ("a", "b", "c"):
        root.append(Element(tag))
    service = EstimationService(
        document, grid_size=4, spacing=2, rebuild_threshold=0.99
    )
    prime(service)

    queries = ["//root//a", "//root//b", "//a//b", "//root//c"]
    pinned = []  # (snapshot, expected values, expected label arrays)

    def pin():
        snapshot = service.snapshot()
        pinned.append(
            (
                snapshot,
                {q: service.estimate(q).value for q in queries},
                (snapshot.tree.start.copy(), snapshot.tree.end.copy()),
            )
        )

    pin()
    rebuilds0 = service.stats.rebuilds
    # Single-update path: the 1-label gaps cannot hold a 2-node subtree.
    wide = Element("a")
    wide.append(Element("b"))
    service.insert_subtree(0, wide)
    assert service.stats.rebuilds == rebuilds0 + 1

    pin()
    # Batched path: consecutive single-node inserts under the same leaf
    # exhaust the fresh gap mid-batch and relabel in flight.
    target = service.tree.elements[len(service) - 1]
    result = service.apply_batch(
        [InsertOp(target, Element("b")), InsertOp(target, Element("c"))]
    )
    assert result.rebuilt

    pin()
    service.insert_subtree(0, Element("e"))

    service.differential_check(queries)
    for snapshot, expected, (start, end) in pinned:
        # The frozen label table never moved under the reader...
        assert np.array_equal(snapshot.tree.start, start)
        assert np.array_equal(snapshot.tree.end, end)
        # ...and neither did any answer.
        for query, value in expected.items():
            assert snapshot.estimate(query).value == value


def test_snapshot_construction_is_zero_copy(monkeypatch):
    """The tentpole pin: building a snapshot performs zero per-cell
    histogram work and zero per-node copying -- it pins the epoch by
    reference."""
    import repro.histograms.position as position_module

    service = make_service(seed=37)
    service.estimate_many(QUERIES)  # prime histograms + kernels
    counters = {"cells": 0, "dense": 0, "merge": 0, "set": 0}

    real_cells = position_module.PositionHistogram.cells
    real_dense = position_module.PositionHistogram.dense
    real_merged = position_module.PositionHistogram._merged_cells

    def counting(name, real):
        def wrapper(self, *args, **kwargs):
            counters[name] += 1
            return real(self, *args, **kwargs)

        return wrapper

    monkeypatch.setattr(
        position_module.PositionHistogram, "cells", counting("cells", real_cells)
    )
    monkeypatch.setattr(
        position_module.PositionHistogram, "dense", counting("dense", real_dense)
    )
    monkeypatch.setattr(
        position_module.PositionHistogram,
        "_merged_cells",
        counting("set", real_merged),
    )
    monkeypatch.setattr(
        position_module,
        "merge_page",
        counting("merge", lambda self, *a, **k: (_ for _ in ()).throw(AssertionError)),
    )
    snapshot = service.snapshot()
    assert counters == {"cells": 0, "dense": 0, "merge": 0, "set": 0}
    # No element-list copy and no label-array copies either.
    assert snapshot.tree.elements is service.tree.elements
    assert snapshot.tree.start is service.tree.start
    assert snapshot.tree.end is service.tree.end
    # Every pinned histogram shares its page with the live one.
    for predicate, view in snapshot.estimator._position_cache.items():
        assert view.page is service.estimator._position_cache[predicate].page
    snapshot.close()


def test_snapshot_pins_epoch_refcounts():
    service = make_service(seed=41)
    assert service.epoch_registry.live_epochs() == []
    first = service.snapshot()
    second = service.snapshot()
    assert first.epoch == second.epoch  # no update in between
    assert service.epoch_registry.refcount(first.epoch) == 2
    service.insert_subtree(0, random_subtree(random.Random(9)))
    third = service.snapshot()
    assert third.epoch > first.epoch  # the update published a new epoch
    first.close()
    second.close()
    assert service.epoch_registry.live_epochs() == [third.epoch]
    with third:
        pass  # context manager releases too
    assert service.epoch_registry.live_epochs() == []


def test_superseded_pages_freed_after_last_snapshot_drops():
    import gc
    import weakref

    service = make_service(seed=43)
    service.estimate("//a//b")
    snapshot = service.snapshot()
    predicate = next(iter(snapshot.estimator._position_cache))
    pinned = weakref.ref(snapshot.estimator._position_cache[predicate].page)
    rng = random.Random(11)
    # Enough snapshot/update rounds to push the live histograms past the
    # layer limit and onto fresh pages.
    for _ in range(8):
        service.snapshot().close()
        service.insert_subtree(rng.randrange(len(service)), random_subtree(rng))
    assert pinned() is not None  # the open snapshot still pins its epoch
    snapshot.close()
    del snapshot
    gc.collect()
    assert pinned() is None


def test_content_predicate_scanned_through_old_snapshot_reads_current_text():
    """The documented snapshot boundary (snapshot.py): label tables are
    frozen, element objects are shared -- so a content predicate first
    scanned *through the snapshot* sees text as it is now.  The epoch
    refactor deliberately preserves this contract; this test pins it so
    any future change to it is a conscious one."""
    from repro.predicates.base import ContentEqualsPredicate

    document = Document()
    root = Element("root")
    document.append(root)
    for value in ("alpha", "beta", "alpha"):
        node = Element("n")
        node.append_text(value)
        root.append(node)
    service = EstimationService(document, grid_size=4, spacing=64)
    prime(service)
    snapshot = service.snapshot()

    # Mutate one element's text directly (document-side state is shared;
    # the service's update API never rewrites text in place).
    from repro.xmltree.tree import Text

    first_n = next(root.find_all("n"))
    first_n.children = [Text("gamma")]

    alpha = ContentEqualsPredicate("alpha", tag="n")
    # First scan happens through the snapshot: it must read the text as
    # it is NOW (one remaining "alpha"), not as it was when pinned.
    assert snapshot.position_histogram(alpha).total() == 1.0
    # Structural predicates stay fully isolated regardless.
    assert snapshot.catalog.stats(TagPredicate("n")).count == 3
    snapshot.close()


def test_snapshot_isolated_from_service_cache_churn():
    """Estimating through the live service (building new histograms,
    invalidating kernels) never disturbs an existing snapshot."""
    service = make_service(seed=31)
    snapshot = service.snapshot()
    before = {q: snapshot.estimate(q).value for q in QUERIES}
    service.estimate_many(QUERIES + ["//d//e", "//e//a"])
    for tag in TAGS:
        service.estimator.join_coefficients(TagPredicate(tag))
    service.insert_subtree(0, random_subtree(random.Random(8)))
    for query, value in before.items():
        assert snapshot.estimate(query).value == value


def test_snapshot_close_is_idempotent():
    """Regression: ``close()`` drops the epoch pin exactly once however
    many times it runs -- double close, close after context exit, or
    close through the engine's drop path must never steal a sibling
    snapshot's refcount."""
    service = make_service(seed=47)
    first = service.snapshot()
    second = service.snapshot()
    epoch = first.epoch
    assert service.epoch_registry.refcount(epoch) == 2
    first.close()
    first.close()
    first.close()
    assert service.epoch_registry.refcount(epoch) == 1
    with second:
        value = second.estimate(QUERIES[0]).value
    second.close()  # close after the context manager already released
    assert service.epoch_registry.refcount(epoch) == 0
    assert service.epoch_registry.live_epochs() == []
    # A closed snapshot keeps answering (documented contract).
    assert first.estimate(QUERIES[0]).value == value
