"""Differential property tests: incremental maintenance == full rebuild.

The contract pinned here is the service's whole reason to exist: after
ANY sequence of subtree inserts and deletes, every maintained structure
-- catalog membership and overlap flags, position / TRUE / coverage /
level histograms, and the estimates computed from them -- is
*bit-identical* to a from-scratch build over the final document state.

Coverage: 240 seeded random update sequences (4 configurations x 60
seeds), with hot caches primed *before* the updates so the delta paths
(not lazy rebuilds) are what is being verified, plus mid-sequence checks
and dedicated rebuild-trigger cases.
"""

import random

import numpy as np
import pytest

from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.service import EstimationService
from repro.xmltree.tree import Document, Element

TAGS = ["a", "b", "c", "d", "e"]


def random_document(rng: random.Random, nodes: int) -> Document:
    """A random tree over a small tag alphabet (recursive nesting)."""
    document = Document()
    root = Element("root")
    document.append(root)
    spine = [root]
    for _ in range(nodes - 1):
        parent = rng.choice(spine[-8:])  # bias toward recent nodes: depth
        child = Element(rng.choice(TAGS))
        parent.append(child)
        spine.append(child)
    return document


def random_subtree(rng: random.Random) -> Element:
    size = rng.randrange(1, 6)
    root = Element(rng.choice(TAGS))
    spine = [root]
    for _ in range(size - 1):
        child = Element(rng.choice(TAGS))
        rng.choice(spine).append(child)
        spine.append(child)
    return root


def prime(service: EstimationService, queries) -> None:
    """Build every summary kind up front so updates exercise deltas."""
    service.estimate_many(queries)
    for tag in TAGS:
        predicate = TagPredicate(tag)
        service.position_histogram(predicate)
        service.coverage_histogram(predicate)
        service.estimator.level_histogram(predicate)
    _ = service.estimator.true_histogram


def apply_random_op(service: EstimationService, rng: random.Random) -> None:
    if rng.random() < 0.6 or len(service) < 20:
        parent = rng.randrange(len(service))
        # Cover the whole child-position surface: append (None), front,
        # and arbitrary mid-list ranks (clamped past-the-end included).
        position = rng.choice([None, None, 0, 1, 2, 5])
        service.insert_subtree(parent, random_subtree(rng), position=position)
    else:
        victim = rng.randrange(1, len(service))  # keep the root
        service.delete_subtree(victim)


QUERIES = ["//a//b", "//b//c", "//root//d", "//a//a", "//c//e", "//e//b"]

# 4 configurations x 60 seeds = 240 independent random update sequences.
CONFIGS = [
    # (grid_size, grid_kind, spacing, rebuild_threshold, ops)
    (5, "uniform", 16, 0.9, 8),
    (7, "uniform", 8, 0.9, 10),   # small gaps: exercises mid-sequence rebuilds
    (4, "equi-depth", 16, 0.9, 8),
    (6, "uniform", 16, 0.15, 10),  # low threshold: dirty-fraction rebuilds
]


@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
@pytest.mark.parametrize("seed", range(60))
def test_random_sequence_matches_full_rebuild(config_index, seed):
    grid_size, grid_kind, spacing, threshold, ops = CONFIGS[config_index]
    rng = random.Random(1000 * config_index + seed)
    document = random_document(rng, nodes=rng.randrange(30, 70))
    service = EstimationService(
        document,
        grid_size=grid_size,
        grid=grid_kind,
        spacing=spacing,
        rebuild_threshold=threshold,
    )
    prime(service, QUERIES)
    for step in range(ops):
        apply_random_op(service, rng)
        if step % 4 == 3:
            service.differential_check()
    service.differential_check(QUERIES)


def test_coverage_fractions_bit_identical_after_updates():
    """Coverage fractions come from integer numerators over TRUE counts;
    after updates the floats must be *equal*, not merely close.

    The document keeps a dedicated ``sect`` layer that is never nested,
    so its no-overlap coverage histogram survives (and is maintained
    through) every update.
    """
    rng = random.Random(7)
    document = Document()
    root = Element("root")
    document.append(root)
    sections = []
    for _ in range(8):
        section = Element("sect")
        root.append(section)
        sections.append(section)
    for _ in range(40):
        rng.choice(sections).append(Element(rng.choice(TAGS)))
    service = EstimationService(document, grid_size=5, spacing=16, rebuild_threshold=0.9)
    prime(service, QUERIES)
    sect = TagPredicate("sect")
    assert service.coverage_histogram(sect) is not None
    for _ in range(12):
        # Insert below (or delete from) the sect layer only, keeping
        # the no-overlap property alive while its coverage changes.
        sect_indices = service.catalog.stats(sect).node_indices
        if rng.random() < 0.7:
            parent = int(rng.choice(sect_indices))
            service.insert_subtree(parent, random_subtree(rng))
        else:
            parent = int(rng.choice(sect_indices))
            children = list(service.tree.elements[parent].child_elements())
            if children:
                service.delete_subtree(rng.choice(children))
    assert service.catalog.stats(sect).no_overlap
    reference = AnswerSizeEstimator(service.tree, grid_size=5)
    reference.grid = service.estimator.grid
    ours_entries = dict(service.estimator._coverage_cache[sect].entries())
    theirs_entries = dict(reference.coverage_histogram(sect).entries())
    assert set(ours_entries) == set(theirs_entries)
    assert len(ours_entries) > 0
    for key, fraction in ours_entries.items():
        assert fraction == theirs_entries[key]  # bitwise float equality
    service.differential_check(QUERIES + ["//sect//a", "//root//sect"])


def test_estimates_after_updates_equal_rebuild_estimates():
    rng = random.Random(21)
    document = random_document(rng, 60)
    service = EstimationService(document, grid_size=6, spacing=16, rebuild_threshold=0.9)
    prime(service, QUERIES)
    for _ in range(10):
        apply_random_op(service, rng)
    reference = AnswerSizeEstimator(service.tree, grid_size=6)
    reference.grid = service.estimator.grid
    for query in QUERIES + ["//root//a", "//d//c"]:
        assert service.estimate(query).value == reference.estimate(query).value


def test_catalog_membership_tracks_tree_exactly():
    rng = random.Random(33)
    document = random_document(rng, 40)
    service = EstimationService(document, grid_size=5, spacing=16, rebuild_threshold=0.9)
    prime(service, QUERIES)
    for _ in range(15):
        apply_random_op(service, rng)
    for tag in TAGS:
        stats = service.catalog.stats(TagPredicate(tag))
        expected = np.asarray(
            [i for i, e in enumerate(service.tree.elements) if e.tag == tag],
            dtype=np.int64,
        )
        assert np.array_equal(stats.node_indices, expected)
        assert stats.count == len(expected)


def test_gap_exhaustion_triggers_rebuild_and_stays_consistent():
    document = Document()
    root = Element("root")
    document.append(root)
    root.append(Element("a"))
    service = EstimationService(document, grid_size=4, spacing=2, rebuild_threshold=0.9)
    prime(service, ["//root//a"])
    rebuilds_before = service.stats.rebuilds
    # spacing 2 leaves a 1-label gap: any insert must relabel.
    result = service.insert_subtree(0, Element("b"))
    assert result.rebuilt
    assert service.stats.rebuilds == rebuilds_before + 1
    service.differential_check(["//root//a", "//root//b"])


def test_dirty_threshold_triggers_rebuild():
    rng = random.Random(5)
    document = random_document(rng, 40)
    service = EstimationService(
        document, grid_size=5, spacing=512, rebuild_threshold=0.05
    )
    prime(service, QUERIES)
    results = [
        service.insert_subtree(rng.randrange(len(service)), random_subtree(rng))
        for _ in range(6)
    ]
    assert any(r.rebuilt for r in results)
    assert service.stats.rebuilds >= 1
    assert service.dirty_fraction <= 0.05 + 1e-9 or service.stats.rebuilds > 0
    service.differential_check(QUERIES)


def test_positional_inserts_match_full_rebuild():
    """Dedicated positional-insert differential: every child rank of a
    wide node, interleaved with deletes, stays bit-identical."""
    rng = random.Random(77)
    document = Document()
    root = Element("root")
    document.append(root)
    for _ in range(6):
        root.append(Element(rng.choice(TAGS)))
    service = EstimationService(document, grid_size=5, spacing=64, rebuild_threshold=0.9)
    prime(service, QUERIES)
    for step in range(12):
        kids = sum(1 for _ in service.tree.elements[0].child_elements())
        position = rng.randrange(0, kids + 2)
        service.insert_subtree(0, random_subtree(rng), position=position)
        if step % 3 == 2 and kids > 2:
            service.delete_subtree(rng.randrange(1, len(service)))
        service.differential_check()
    service.differential_check(QUERIES)


def test_estimate_many_routes_through_batched_estimator_path():
    """The service facade must hand workloads to the estimator's batch
    API (dedup + shared coefficient kernels), not loop over estimate."""
    rng = random.Random(55)
    document = random_document(rng, 50)
    service = EstimationService(document, grid_size=5, spacing=32, rebuild_threshold=0.9)
    results = service.estimate_many(["//a//b", "//a//b", "//b//c"])
    assert results[0] is results[1]  # dedup only happens on the batch path
    for query, result in zip(["//a//b", "//a//b", "//b//c"], results):
        assert result.value == service.estimate(query).value
    # And the snapshot read path shares the same batched machinery.
    snapshot = service.snapshot()
    snap_results = snapshot.estimate_many(["//a//b", "//a//b"])
    assert snap_results[0] is snap_results[1]


def test_updates_only_invalidate_changed_coefficients():
    """The pH-join coefficient cache survives updates that do not touch
    its descendant operand (the Section 3.3 reuse under maintenance)."""
    rng = random.Random(9)
    document = random_document(rng, 50)
    service = EstimationService(document, grid_size=5, spacing=32, rebuild_threshold=0.9)
    prime(service, QUERIES)
    for tag in TAGS:
        service.estimator.join_coefficients(TagPredicate(tag))
    kernels_before = dict(service.estimator._coefficient_cache)
    subtree = Element("a")  # touches only tag 'a'
    result = service.insert_subtree(0, subtree)
    assert result.coefficients_invalidated == 1  # reported per kernel dropped
    cache = service.estimator._coefficient_cache
    assert TagPredicate("a") not in cache  # invalidated
    assert TagPredicate("a") not in service.estimator._level_cache
    for tag in TAGS[1:]:
        assert cache[TagPredicate(tag)] is kernels_before[TagPredicate(tag)]
    service.differential_check(QUERIES)
