"""Durability: write-ahead logging, checkpoints, and crash recovery.

The contract under test (the acceptance bar of the durability tier):
for a seeded batched workload, truncating the write-ahead log at *any*
byte boundary and recovering with ``open_durable`` yields a service
whose ``estimate`` / ``real_answer`` results -- and label arrays -- are
bit-identical to the uninterrupted run observed right after its last
durably-logged batch (the committed prefix).  A torn or bit-flipped
tail is checksum-detected and cleanly truncated; a record is never
partially replayed.

The kill-offset harness simulates a crash at byte offset ``t`` by
rewriting the log truncated to ``t`` and deleting every checkpoint the
live run had not yet written by the time offset ``t`` was durable
(checkpoints are cut right after their batch's commit marker, so a
checkpoint at LSN ``c`` exists on disk iff the commit record of ``c``
is within the first ``t`` bytes).
"""

import random
import shutil

import numpy as np
import pytest

from repro.histograms.store import SummaryFormatError
from repro.service import (
    BatchError,
    DeleteOp,
    EstimationService,
    InsertOp,
    WalError,
)
from repro.service.wal import (
    LOG_NAME,
    WAL_MAGIC,
    checkpoint_paths,
    list_checkpoints,
    read_records,
)
from repro.xmltree.tree import Element
from tests.service.test_batch import (
    QUERIES,
    prime,
    random_document,
    random_subtree,
)


def make_durable(
    directory,
    seed=7,
    nodes=50,
    grid_size=5,
    spacing=64,
    threshold=0.95,
    checkpoint_every=10**9,
):
    document = random_document(random.Random(seed), nodes)
    service = EstimationService.open_durable(
        directory,
        document,
        grid_size=grid_size,
        spacing=spacing,
        rebuild_threshold=threshold,
        checkpoint_every=checkpoint_every,
    )
    prime(service)
    # Re-cut the initial checkpoint with the primed summaries so a
    # recovered service maintains the same structures the live one does
    # (differential_check then actually checks something).
    service.checkpoint()
    return service


def state_of(service):
    return {
        "tags": [e.tag for e in service.tree.elements],
        "start": service.tree.start.copy(),
        "end": service.tree.end.copy(),
        "estimates": {q: service.estimate(q).value for q in QUERIES},
        "real": {q: service.real_answer(q) for q in QUERIES},
    }


def assert_state(service, expected):
    assert [e.tag for e in service.tree.elements] == expected["tags"]
    assert np.array_equal(service.tree.start, expected["start"])
    assert np.array_equal(service.tree.end, expected["end"])
    for query in QUERIES:
        assert service.estimate(query).value == expected["estimates"][query], query
        assert service.real_answer(query) == expected["real"][query], query


def run_batches(service, rng, batches, ops_per_batch):
    """Drive a mixed workload; returns the state after every batch
    (``states[k]`` = state once ``k`` batches committed)."""
    states = [state_of(service)]
    for _ in range(batches):
        ops = []
        for k in range(ops_per_batch):
            roll = rng.random()
            if roll < 0.55 or len(service) < 15:
                ops.append(
                    InsertOp(rng.randrange(len(service)), random_subtree(rng))
                )
            elif roll < 0.7 and ops and isinstance(ops[-1], InsertOp):
                # Chain under a node inserted earlier in the same batch:
                # exercises the ["op", j, k] target encoding.
                ops.append(InsertOp(ops[-1].subtree, random_subtree(rng)))
            elif roll < 0.8:
                # Element-handle target: exercises ["node", i] encoding.
                ops.append(
                    DeleteOp(service.tree.elements[rng.randrange(1, len(service))])
                )
            else:
                ops.append(DeleteOp(rng.randrange(1, len(service))))
        try:
            service.apply_batch(ops)
        except Exception:
            # A randomly-built batch may turn out invalid (e.g. an index
            # outrun by earlier deletes): it is logged, rolled back, and
            # marked aborted -- the state after the attempt equals the
            # state before it, which is exactly what recovery must
            # reproduce whether or not the abort marker survived.
            pass
        states.append(state_of(service))
    return states


def commit_end_offsets(log_path):
    """lsn -> end offset of its commit/abort marker, from a clean log."""
    records, _ = read_records(log_path)
    return {
        r.lsn: r.end_offset for r in records if r.type in ("commit", "abort")
    }


def simulate_crash(directory, sim, log_bytes, marker_ends):
    """Materialise the on-disk state a crash at ``len(log_bytes)``
    leaves behind: the truncated log plus exactly the checkpoints that
    had been written by then."""
    if sim.exists():
        shutil.rmtree(sim)
    sim.mkdir()
    t = len(log_bytes)
    for lsn in list_checkpoints(directory):
        written_at = marker_ends.get(lsn, 0)  # lsn 0: the initial checkpoint
        if written_at <= t:
            for path in checkpoint_paths(directory, lsn):
                shutil.copy(path, sim / path.name)
    (sim / LOG_NAME).write_bytes(log_bytes)
    return sim


def expected_batches(log_bytes_len, batch_ends):
    return sum(1 for end in batch_ends if end <= log_bytes_len)


class TestLogFormat:
    def test_missing_and_empty_and_foreign_files(self, tmp_path):
        assert read_records(tmp_path / "absent.log") == ([], 0)
        empty = tmp_path / "empty.log"
        empty.write_bytes(b"")
        assert read_records(empty) == ([], 0)
        foreign = tmp_path / "foreign.log"
        foreign.write_bytes(b"this is not a WAL at all, sorry")
        assert read_records(foreign) == ([], 0)

    def test_round_trip_and_torn_tail(self, tmp_path):
        from repro.service.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path / "t.log")
        first = wal.log_batch([{"kind": "delete", "node": ["index", 3]}])
        wal.mark_committed(first)
        second = wal.log_batch([{"kind": "delete", "node": ["index", 4]}])
        wal.close()
        records, valid_end = read_records(tmp_path / "t.log")
        assert [r.type for r in records] == ["batch", "commit", "batch"]
        assert [r.lsn for r in records] == [first, first, second]
        data = (tmp_path / "t.log").read_bytes()
        assert valid_end == len(data)
        # Chop the last record anywhere inside it: it must vanish whole.
        for cut in (records[-1].offset + 1, len(data) - 1):
            (tmp_path / "t.log").write_bytes(data[:cut])
            survivors, end = read_records(tmp_path / "t.log")
            assert [r.lsn for r in survivors] == [first, first]
            assert end == records[-1].offset

    def test_reopen_truncates_torn_tail_and_continues(self, tmp_path):
        from repro.service.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path / "t.log")
        lsn = wal.log_batch([{"kind": "delete", "node": ["index", 1]}])
        wal.close()
        with open(tmp_path / "t.log", "ab") as handle:
            handle.write(b"\x99\x99partial garbage record")
        reopened = WriteAheadLog(tmp_path / "t.log")
        assert reopened.next_lsn == lsn + 1
        follow_up = reopened.log_batch([{"kind": "delete", "node": ["index", 2]}])
        reopened.close()
        records, _ = read_records(tmp_path / "t.log")
        assert [r.lsn for r in records if r.type == "batch"] == [lsn, follow_up]

    def test_bit_flip_invalidates_record(self, tmp_path):
        from repro.service.wal import WriteAheadLog

        wal = WriteAheadLog(tmp_path / "t.log")
        wal.log_batch([{"kind": "delete", "node": ["index", 1]}])
        wal.close()
        data = bytearray((tmp_path / "t.log").read_bytes())
        data[len(WAL_MAGIC) + 12] ^= 0xFF  # inside the payload
        (tmp_path / "t.log").write_bytes(bytes(data))
        assert read_records(tmp_path / "t.log")[0] == []


class TestDurableLifecycle:
    def test_fresh_directory_requires_documents(self, tmp_path):
        with pytest.raises(WalError, match="no documents"):
            EstimationService.open_durable(tmp_path / "wal")

    def test_clean_reopen_is_bit_identical(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=11)
        rng = random.Random(2)
        run_batches(service, rng, batches=4, ops_per_batch=5)
        service.insert_subtree(0, random_subtree(rng))
        service.delete_subtree(3)
        expected = state_of(service)
        service.close()

        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert recovered.recovery_info is not None
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_recover_without_close_like_a_crash(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=13)
        states = run_batches(service, random.Random(3), 3, 4)
        # No close(): the open handle still has every batch record
        # fsync'd; copy the directory as a crash image.
        sim = tmp_path / "sim"
        shutil.copytree(tmp_path / "wal", sim)
        recovered = EstimationService.open_durable(sim)
        assert_state(recovered, states[-1])
        recovered.differential_check(QUERIES)
        recovered.close()
        service.close()

    def test_recovered_service_keeps_accepting_updates(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=17)
        run_batches(service, random.Random(4), 2, 4)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        states = run_batches(recovered, random.Random(5), 2, 4)
        recovered.close()
        second = EstimationService.open_durable(tmp_path / "wal")
        assert_state(second, states[-1])
        second.differential_check(QUERIES)
        second.close()

    def test_aborted_batch_is_not_replayed(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=19)
        states = run_batches(service, random.Random(6), 2, 4)
        with pytest.raises(BatchError):
            service.apply_batch(
                [InsertOp(0, Element("zz")), DeleteOp(10**9)]
            )
        assert_state(service, states[-1])  # rolled back live
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert recovered.recovery_info.batches_skipped >= 1
        assert_state(recovered, states[-1])
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_periodic_checkpoints_shorten_replay(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=23, checkpoint_every=2)
        states = run_batches(service, random.Random(7), 7, 3)
        service.close()
        assert len(list_checkpoints(tmp_path / "wal")) > 1
        recovered = EstimationService.open_durable(tmp_path / "wal")
        info = recovered.recovery_info
        assert info.checkpoint_lsn > 0
        assert info.batches_replayed <= 2
        assert_state(recovered, states[-1])
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=29, checkpoint_every=3)
        states = run_batches(service, random.Random(8), 6, 3)
        service.close()
        lsns = list_checkpoints(tmp_path / "wal")
        assert len(lsns) >= 2
        newest_state, newest_summaries = checkpoint_paths(tmp_path / "wal", lsns[0])
        data = bytearray(newest_summaries.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest_summaries.write_bytes(bytes(data))
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert recovered.recovery_info.checkpoint_lsn == lsns[1]
        assert_state(recovered, states[-1])
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_mismatched_checkpoint_pair_falls_back_to_older(self, tmp_path):
        """A newest checkpoint whose two files each load but disagree
        (summaries from a different state than the label arrays) must
        fall back like a corrupt one, not abort recovery."""
        service = make_durable(tmp_path / "wal", seed=61, checkpoint_every=3)
        states = run_batches(service, random.Random(12), 6, 3)
        service.close()
        lsns = list_checkpoints(tmp_path / "wal")
        assert len(lsns) >= 2
        _, newest_summaries = checkpoint_paths(tmp_path / "wal", lsns[0])
        _, older_summaries = checkpoint_paths(tmp_path / "wal", lsns[1])
        shutil.copy(older_summaries, newest_summaries)  # fingerprint mismatch
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert recovered.recovery_info.checkpoint_lsn == lsns[1]
        assert_state(recovered, states[-1])
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_all_checkpoints_corrupt_raises_wal_error(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=31)
        run_batches(service, random.Random(9), 1, 3)
        service.close()
        for lsn in list_checkpoints(tmp_path / "wal"):
            for path in checkpoint_paths(tmp_path / "wal", lsn):
                path.write_bytes(b"gone")
        with pytest.raises(WalError, match="no loadable checkpoint"):
            EstimationService.open_durable(tmp_path / "wal")

    def test_single_op_updates_are_durable(self, tmp_path):
        service = make_durable(tmp_path / "wal", seed=37)
        rng = random.Random(10)
        for _ in range(5):
            service.insert_subtree(rng.randrange(len(service)), random_subtree(rng))
        service.delete_subtree(rng.randrange(1, len(service)))
        parent = Element("a")
        service.insert_subtree(0, parent, position=0)
        service.insert_subtree(parent, Element("b"))
        expected = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()


class TestCheckpointForestFidelity:
    def test_text_and_attributes_survive_checkpoint_recovery(self, tmp_path):
        """The numpy-native forest encoding must round-trip text nodes
        (at their exact child slots) and attributes, not just tags."""
        from repro.xmltree.tree import Document, Text
        from repro.xmltree.writer import write_document

        document = Document()
        root = Element("root", {"version": "1", "b": "two words"})
        document.append(root)
        root.append_text("  leading ")
        child = Element("a", {"x": "<&>\""})
        root.append(child)
        child.append_text("inner")
        root.append_text("between")
        tail = Element("b")
        tail.append_text("t1")
        tail.append(Element("c"))
        tail.append_text("t2")
        root.append(tail)
        before_xml = write_document(document)

        service = EstimationService.open_durable(
            tmp_path / "wal", document, grid_size=4, spacing=64
        )
        service.insert_subtree(0, Element("d"))
        service.checkpoint()
        service.close()

        recovered = EstimationService.open_durable(tmp_path / "wal")
        after = recovered.documents[0]
        # Structure, attributes, and every text node at its exact slot.
        root2 = after.root_element
        assert root2.attributes == {"version": "1", "b": "two words"}
        texts = [
            c.value for c in root2.children if isinstance(c, Text)
        ]
        assert texts == ["  leading ", "between"]
        a2 = next(root2.find_all("a"))
        assert a2.attributes == {"x": "<&>\""}
        assert a2.text_content() == "inner"
        b2 = next(root2.find_all("b"))
        assert [
            c.value if isinstance(c, Text) else c.tag for c in b2.children
        ] == ["t1", "c", "t2"]
        # Another checkpoint from the recovered forest serialises the
        # original content plus the replayed insert.
        recovered.delete_subtree(recovered.tree.index_of(next(root2.find_all("d"))))
        assert write_document(recovered.documents[0]) == before_xml
        recovered.close()

    def test_document_level_text_round_trips_through_fast_encoding(
        self, tmp_path
    ):
        """Document-level text (XML cannot even round-trip it) survives
        via the negative-owner encoding."""
        from repro.service.wal import load_checkpoint
        from repro.xmltree.tree import Document, Text

        document = Document()
        comment = Text("top-level note")
        comment.parent = document
        document.children.append(comment)
        root = Element("root")
        document.append(root)
        root.append(Element("a"))

        service = EstimationService.open_durable(
            tmp_path / "wal", document, grid_size=4, spacing=64
        )
        service.insert_subtree(0, Element("b"))
        expected = state_of(service)
        service.checkpoint()
        service.close()

        lsn = max(list_checkpoints(tmp_path / "wal"))
        checkpoint = load_checkpoint(tmp_path / "wal", lsn)
        assert checkpoint.elements is not None  # fast path covers it
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, expected)
        children = recovered.documents[0].children
        assert isinstance(children[0], Text)
        assert children[0].value == "top-level note"
        recovered.close()


    def test_checkpoint_without_fast_encoding_parses_xml_members(
        self, tmp_path
    ):
        """Forward compatibility with state archives that predate the
        numpy-native forest: the XML members still recover the service."""
        import numpy as np

        from repro.service.wal import checkpoint_paths, load_checkpoint

        service = make_durable(tmp_path / "wal", seed=53, nodes=30)
        states = run_batches(service, random.Random(11), 2, 3)
        # The strip-the-fast-members surgery below only makes sense on
        # a self-contained (full) state archive.
        service.checkpoint(full=True)
        service.close()
        lsn = max(list_checkpoints(tmp_path / "wal"))
        state_path, _ = checkpoint_paths(tmp_path / "wal", lsn)
        from repro.storage.pagefile import encode_page_file, open_array_container

        with open_array_container(state_path) as archive:
            arrays = {
                name: np.asarray(archive[name]).copy()
                for name in archive.files
                if not name.startswith("fast.")
            }
        import json as json_module

        meta = json_module.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta.pop("fast")
        arrays["meta"] = np.frombuffer(
            json_module.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        if state_path.suffix == ".pgf":
            state_path.write_bytes(encode_page_file(arrays))
        else:
            with open(state_path, "wb") as handle:
                np.savez_compressed(handle, **arrays)
        assert load_checkpoint(tmp_path / "wal", lsn).elements is None
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, states[-1])
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_multi_document_forest_round_trips(self, tmp_path):
        rng = random.Random(59)
        forest = [random_document(rng, 20), random_document(rng, 15)]
        service = EstimationService.open_durable(
            tmp_path / "wal", forest, grid_size=4, spacing=64
        )
        prime(service)
        service.apply_batch(
            [InsertOp(0, random_subtree(rng)), DeleteOp(len(service) - 3)]
        )
        expected = state_of(service)
        document_count = len(service.documents)
        service.checkpoint()
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert len(recovered.documents) == document_count
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_checkpoint_requires_attached_wal(self, tmp_path):
        service = EstimationService(
            random_document(random.Random(3), 20), grid_size=4
        )
        with pytest.raises(ValueError, match="no write-ahead log"):
            service.checkpoint()
        service.close()


class TestKillAtEveryOffset:
    """The tentpole pin: recovery from any crash point replays exactly
    the committed prefix, bit-identically, never a partial record."""

    def _workload(self, tmp_path, seed, nodes, batches, ops_per_batch):
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=seed, nodes=nodes)
        states = run_batches(service, random.Random(seed + 1), batches, ops_per_batch)
        service.close()
        log_path = directory / LOG_NAME
        data = log_path.read_bytes()
        records, valid_end = read_records(log_path)
        assert valid_end == len(data)
        batch_ends = [r.end_offset for r in records if r.type == "batch"]
        assert len(batch_ends) == batches
        return directory, data, states, batch_ends, commit_end_offsets(log_path)

    def _check_offsets(self, tmp_path, directory, data, states, batch_ends,
                       marker_ends, offsets):
        sim = tmp_path / "sim"
        for offset in offsets:
            simulate_crash(directory, sim, data[:offset], marker_ends)
            recovered = EstimationService.open_durable(sim)
            k = expected_batches(offset, batch_ends)
            try:
                assert_state(recovered, states[k])
            except AssertionError as exc:  # pragma: no cover - diagnostics
                raise AssertionError(
                    f"recovery at offset {offset} (expected {k} batches) "
                    f"diverged: {exc}"
                ) from exc
            finally:
                recovered.close()

    def test_every_byte_offset_small_workload(self, tmp_path):
        directory, data, states, batch_ends, marker_ends = self._workload(
            tmp_path, seed=41, nodes=30, batches=2, ops_per_batch=3
        )
        self._check_offsets(
            tmp_path, directory, data, states, batch_ends, marker_ends,
            offsets=range(len(data) + 1),
        )

    def test_200_op_workload_at_boundaries_and_sampled_offsets(self, tmp_path):
        directory, data, states, batch_ends, marker_ends = self._workload(
            tmp_path, seed=43, nodes=90, batches=10, ops_per_batch=20
        )
        records, _ = read_records(directory / LOG_NAME)
        offsets = {0, len(data)}
        for record in records:
            for delta in (-2, -1, 0, 1, 2, 3):
                offsets.add(min(len(data), max(0, record.end_offset + delta)))
        rng = random.Random(97)
        offsets.update(rng.randrange(len(data) + 1) for _ in range(120))
        self._check_offsets(
            tmp_path, directory, data, states, batch_ends, marker_ends,
            offsets=sorted(offsets),
        )

    def test_random_bit_flips_never_partially_replay(self, tmp_path):
        directory, data, states, batch_ends, marker_ends = self._workload(
            tmp_path, seed=47, nodes=40, batches=4, ops_per_batch=4
        )
        records, _ = read_records(directory / LOG_NAME)
        rng = random.Random(101)
        sim = tmp_path / "sim"
        for _ in range(40):
            flips = sorted(
                rng.randrange(len(data)) for _ in range(rng.randrange(1, 4))
            )
            corrupt = bytearray(data)
            for position in flips:
                corrupt[position] ^= 1 << rng.randrange(8)
            # Everything from the first record touched by a flip on is
            # discarded; the intact prefix replays whole.  Checkpoints
            # are untouched here, so recovery starts from the newest one
            # even when the corruption lands before it in the log.
            if flips[0] < len(WAL_MAGIC):
                k = 0
            else:
                k = 0
                for record in records:
                    if any(record.offset <= p < record.end_offset for p in flips):
                        break
                    if record.type == "batch":
                        k += 1
            newest_checkpoint = max(list_checkpoints(directory))
            expected = states[max(k, newest_checkpoint)]
            simulate_crash(directory, sim, bytes(corrupt), marker_ends)
            recovered = EstimationService.open_durable(sim)
            try:
                assert_state(recovered, expected)
            finally:
                recovered.close()
