"""Unit tests of :class:`EstimationService` behavior (non-differential):
update semantics, persistence/warm start, engine integration, guards."""

import numpy as np
import pytest

from repro.datasets import generate_orgchart, paper_example_document
from repro.histograms.store import SummaryFormatError
from repro.predicates.base import TagPredicate
from repro.service import EstimationService
from repro.xmltree.tree import Document, Element


def small_service(**kwargs) -> EstimationService:
    kwargs.setdefault("grid_size", 6)
    kwargs.setdefault("spacing", 32)
    kwargs.setdefault("rebuild_threshold", 0.9)
    return EstimationService(paper_example_document(), **kwargs)


class TestConstruction:
    def test_counts_match_document(self):
        service = small_service()
        assert len(service) == 31  # the paper's Fig. 1 document

    def test_accepts_a_forest(self):
        service = EstimationService(
            [paper_example_document(), paper_example_document()], spacing=16
        )
        assert len(service) == 62

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            small_service(spacing=1)
        with pytest.raises(ValueError):
            small_service(rebuild_threshold=0.0)
        with pytest.raises(ValueError):
            small_service(rebuild_threshold=1.5)

    def test_estimates_match_plain_estimator_semantics(self):
        """With spacing, buckets differ from the dense labeling, but the
        service still estimates sensibly and exactly answers reality."""
        service = small_service()
        assert service.real_answer("//faculty//name") > 0
        assert service.estimate("//faculty//name").value > 0


class TestInsert:
    def test_insert_grows_document_and_answers(self):
        service = small_service()
        before = service.real_answer("//faculty//RA")
        faculty = int(service.catalog.stats(TagPredicate("faculty")).node_indices[0])
        result = service.insert_subtree(faculty, Element("RA"))
        assert result.kind == "insert" and result.nodes == 1
        assert service.real_answer("//faculty//RA") == before + 1

    def test_insert_requires_detached_subtree(self):
        service = small_service()
        attached = service.tree.elements[3]
        with pytest.raises(ValueError):
            service.insert_subtree(0, attached)

    def test_insert_by_element_reference(self):
        service = small_service()
        parent = service.tree.elements[0]
        result = service.insert_subtree(parent, Element("appendix"))
        assert result.nodes == 1
        assert service.catalog.stats(TagPredicate("appendix")).count == 1

    def test_labels_keep_invariants_after_inserts(self):
        service = small_service()
        for k in range(5):
            service.insert_subtree(k, Element("note"))
        service.tree.validate()

    def test_insert_updates_cached_position_histogram_total(self):
        service = small_service()
        predicate = TagPredicate("TA")
        before = service.position_histogram(predicate).total()
        faculty = int(service.catalog.stats(TagPredicate("faculty")).node_indices[0])
        service.insert_subtree(faculty, Element("TA"))
        assert service.position_histogram(predicate).total() == before + 1


class TestDelete:
    def test_delete_removes_subtree_everywhere(self):
        service = small_service()
        predicate = TagPredicate("faculty")
        victim = int(service.catalog.stats(predicate).node_indices[0])
        size = service.tree.subtree_slice(victim)
        expected_removed = size.stop - size.start
        nodes_before = len(service)
        result = service.delete_subtree(victim)
        assert result.nodes == expected_removed
        assert len(service) == nodes_before - expected_removed
        service.tree.validate()

    def test_delete_by_element_reference(self):
        service = small_service()
        element = service.tree.elements[5]
        count_before = len(service)
        service.delete_subtree(element)
        assert len(service) < count_before
        assert element.parent is None

    def test_delete_can_restore_no_overlap(self):
        document = Document()
        root = Element("root")
        document.append(root)
        outer = Element("x")
        inner = Element("x")
        outer.append(inner)
        root.append(outer)
        root.append(Element("x"))
        service = EstimationService(document, grid_size=4, spacing=16)
        predicate = TagPredicate("x")
        assert not service.catalog.stats(predicate).no_overlap
        service.delete_subtree(inner)
        assert service.catalog.stats(predicate).no_overlap
        assert service.coverage_histogram(predicate) is not None

    def test_out_of_range_index_rejected(self):
        service = small_service()
        with pytest.raises(IndexError):
            service.delete_subtree(len(service) + 5)


class TestEngineIntegration:
    def test_execute_returns_exact_bindings_after_updates(self):
        service = EstimationService(generate_orgchart(seed=2), spacing=32)
        query = "//manager//employee"
        outcome = service.execute(query)
        assert len(outcome.bindings) == service.real_answer(query)
        manager = int(service.catalog.stats(TagPredicate("manager")).node_indices[0])
        service.insert_subtree(manager, Element("employee"))
        outcome_after = service.execute(query)
        assert len(outcome_after.bindings) == service.real_answer(query)
        assert len(outcome_after.bindings) == len(outcome.bindings) + 1

    def test_optimizer_is_reset_by_updates(self):
        service = EstimationService(generate_orgchart(seed=2), spacing=32)
        service.execute("//manager[.//email]//employee")
        optimizer_before = service._optimizer
        assert optimizer_before is not None
        service.insert_subtree(0, Element("employee"))
        assert service._optimizer is None  # stale size cache dropped


class TestPersistence:
    def test_save_and_warm_start_round_trip(self, tmp_path):
        path = tmp_path / "stats.npz"
        service = EstimationService(generate_orgchart(seed=5), grid_size=8, spacing=32)
        for tag in ("manager", "employee", "department"):
            service.position_histogram(TagPredicate(tag))
        service.coverage_histogram(TagPredicate("department"))
        written = service.save_statistics(path)
        assert written == 3

        warm = EstimationService.warm_start(
            generate_orgchart(seed=5), path, spacing=32
        )
        # Histograms were installed, not rebuilt: cache is pre-populated.
        assert TagPredicate("manager") in warm.estimator._position_cache
        assert (
            warm.estimate("//manager//employee").value
            == service.estimate("//manager//employee").value
        )
        warm.differential_check(["//manager//employee"])

    def test_warm_start_rejects_stale_statistics(self, tmp_path):
        path = tmp_path / "stats.npz"
        service = EstimationService(generate_orgchart(seed=5), spacing=32)
        service.position_histogram(TagPredicate("manager"))
        service.save_statistics(path)
        with pytest.raises(SummaryFormatError, match="stale"):
            EstimationService.warm_start(generate_orgchart(seed=6), path, spacing=32)
        with pytest.raises(SummaryFormatError, match="stale"):
            EstimationService.warm_start(generate_orgchart(seed=5), path, spacing=16)

    def test_warm_start_rejects_same_size_different_content(self, tmp_path):
        """Same element count => same label space; the fingerprint
        (labels + tag sequence) must still catch the content change."""

        def doc(tags):
            document = Document()
            root = Element("r")
            document.append(root)
            for tag in tags:
                root.append(Element(tag))
            return document

        path = tmp_path / "stats.npz"
        service = EstimationService(doc(["x", "x", "x", "y"]), spacing=16)
        service.position_histogram(TagPredicate("y"))
        service.save_statistics(path)
        with pytest.raises(SummaryFormatError, match="fingerprint"):
            EstimationService.warm_start(doc(["y", "y", "y", "x"]), path, spacing=16)

    def test_warm_started_service_absorbs_updates(self, tmp_path):
        path = tmp_path / "stats.npz"
        service = EstimationService(generate_orgchart(seed=5), spacing=32)
        service.position_histogram(TagPredicate("employee"))
        service.save_statistics(path)
        warm = EstimationService.warm_start(generate_orgchart(seed=5), path, spacing=32)
        manager = int(warm.catalog.stats(TagPredicate("manager")).node_indices[0])
        warm.insert_subtree(manager, Element("employee"))
        warm.differential_check(["//manager//employee"])


class TestRebuild:
    def test_explicit_rebuild_reprimes_hot_summaries(self):
        service = EstimationService(generate_orgchart(seed=4), spacing=32)
        predicate = TagPredicate("employee")
        service.position_histogram(predicate)
        service.coverage_histogram(TagPredicate("email"))
        service.rebuild()
        assert predicate in service.estimator._position_cache
        assert service.estimator._coverage_cache.get(TagPredicate("email"))
        assert service.stats.rebuilds == 1
        service.differential_check(["//department//employee", "//department//email"])

    def test_rebuild_resets_dirty_fraction(self):
        service = small_service()
        service.insert_subtree(0, Element("note"))
        assert service.dirty_fraction > 0
        service.rebuild()
        assert service.dirty_fraction == 0.0
