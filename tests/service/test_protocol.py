"""Wire-protocol codec tests: the single defensive decode path.

Every entry point into the serve tier -- the network frame decoder,
the stdin command loop, and the ``client`` subcommand -- funnels raw
input through :mod:`repro.service.protocol`.  These tests pin the
grammar both ways: every malformed-input category yields exactly one
:class:`ProtocolError` with a shippable message (never a raw
``UnicodeDecodeError``/``JSONDecodeError``), and the text command
language round-trips to the same request objects the JSON protocol
carries.
"""

import io
import json

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_frame,
    decode_line,
    encode_frame,
    error_response,
    format_flush_response,
    format_text_response,
    iter_raw_lines,
    parse_text_command,
)


class TestDecodeLine:
    def test_strips_bytes_and_text(self):
        assert decode_line(b"  estimate //a//b \n") == "estimate //a//b"
        assert decode_line("  estimate //a//b \n") == "estimate //a//b"
        assert decode_line(b"\n") == ""
        assert decode_line(b"") == ""

    def test_non_utf8_bytes_refused(self):
        with pytest.raises(ProtocolError, match="not valid UTF-8"):
            decode_line(b"estimate \xff\xfe//a\n")

    def test_oversized_line_refused_before_decoding(self):
        # The size check runs before the UTF-8 decode: an oversized line
        # of garbage bytes reports its length, not a decode error.
        raw = b"\xff" * (MAX_LINE_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds the"):
            decode_line(raw)

    def test_custom_limit(self):
        with pytest.raises(ProtocolError, match="exceeds the 8-byte limit"):
            decode_line(b"123456789", max_bytes=8)
        assert decode_line(b"12345678", max_bytes=8) == "12345678"

    def test_surrogate_escapes_in_text_refused(self):
        # A permissive stdin decoder smuggles undecodable bytes through
        # as surrogates; the defensive path still refuses them.
        smuggled = b"estimate \xff".decode("utf-8", errors="surrogateescape")
        with pytest.raises(ProtocolError, match="not valid UTF-8"):
            decode_line(smuggled)


class TestIterRawLines:
    def test_yields_lines_and_stops_at_eof(self):
        stream = io.BytesIO(b"one\ntwo\nthree")
        assert list(iter_raw_lines(stream)) == [b"one\n", b"two\n", b"three"]

    def test_overlong_line_surfaces_once_and_stream_recovers(self):
        # A line past the limit is drained to its newline and yielded as
        # a single over-limit chunk; the next line parses normally.
        blob = b"x" * 40 + b"\nok\n"
        lines = list(iter_raw_lines(io.BytesIO(blob), max_bytes=16))
        assert len(lines) == 2
        with pytest.raises(ProtocolError):
            decode_line(lines[0], max_bytes=16)
        assert decode_line(lines[1], max_bytes=16) == "ok"

    def test_overlong_unterminated_tail(self):
        lines = list(iter_raw_lines(io.BytesIO(b"y" * 64), max_bytes=16))
        assert len(lines) == 1
        with pytest.raises(ProtocolError):
            decode_line(lines[0], max_bytes=16)


class TestDecodeFrame:
    def test_round_trip(self):
        request = {"op": "estimate", "query": "//a//b", "id": 7}
        assert decode_frame(encode_frame(request)) == request

    @pytest.mark.parametrize(
        "raw, fragment",
        [
            (b"\n", "empty frame"),
            (b"   \t  \n", "empty frame"),  # bare whitespace
            (b"{not json\n", "malformed JSON frame"),
            (b"[1, 2, 3]\n", "frame must be a JSON object, got list"),
            (b'"estimate"\n', "frame must be a JSON object, got str"),
            (b"{}\n", 'missing a string "op"'),
            (b'{"op": 3}\n', 'missing a string "op"'),
            (b'{"op": ""}\n', 'missing a string "op"'),
            (b"\xff\xfe{}\n", "not valid UTF-8"),
        ],
    )
    def test_malformed_frames(self, raw, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            decode_frame(raw)

    def test_oversized_frame(self):
        payload = json.dumps({"op": "insert", "xml": "x" * (MAX_LINE_BYTES)})
        with pytest.raises(ProtocolError, match="exceeds the"):
            decode_frame(payload.encode() + b"\n")

    def test_encode_frame_is_one_line(self):
        frame = encode_frame({"op": "estimate", "query": "//a//b\n//c"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # newlines inside strings escaped


class TestErrorResponse:
    def test_plain(self):
        assert error_response("boom") == {"ok": False, "error": "boom"}

    def test_echoes_request_id(self):
        response = error_response("boom", {"op": "estimate", "id": 42})
        assert response == {"ok": False, "error": "boom", "id": 42}

    def test_no_id_key_when_request_has_none(self):
        assert "id" not in error_response("boom", {"op": "estimate"})


class TestParseTextCommand:
    def test_estimate_is_strong(self):
        assert parse_text_command("estimate //a//b") == {
            "op": "estimate",
            "query": "//a//b",
            "strong": True,
        }

    def test_exact_and_execute(self):
        assert parse_text_command("exact //a//b") == {"op": "exact", "query": "//a//b"}
        assert parse_text_command("execute //a//b") == {
            "op": "execute",
            "query": "//a//b",
        }

    def test_insert(self):
        request = parse_text_command("insert root <a><b/></a>")
        assert request == {
            "op": "insert",
            "parent": {"tag": "root", "ordinal": 1},
            "xml": "<a><b/></a>",
        }

    def test_insert_validates_xml_eagerly(self):
        with pytest.raises(Exception):
            parse_text_command("insert root <a><unclosed>")

    def test_delete_with_and_without_ordinal(self):
        assert parse_text_command("delete a") == {
            "op": "delete",
            "node": {"tag": "a", "ordinal": 1},
        }
        assert parse_text_command("delete a 3") == {
            "op": "delete",
            "node": {"tag": "a", "ordinal": 3},
        }

    def test_nullary_commands(self):
        assert parse_text_command("stats") == {"op": "stats"}
        assert parse_text_command("shutdown") == {"op": "shutdown"}
        assert parse_text_command("save /tmp/x.npz") == {
            "op": "save",
            "path": "/tmp/x.npz",
        }

    @pytest.mark.parametrize(
        "line, message",
        [
            ("estimate", "usage: estimate <query>"),
            ("exact", "usage: exact <query>"),
            ("execute", "usage: execute <query>"),
            ("insert root", "usage: insert <parent-tag> <xml-snippet>"),
            ("insert", "usage: insert <parent-tag> <xml-snippet>"),
            ("delete", "usage: delete <tag> [ordinal]"),
            ("save", "usage: save <path.npz>"),
            ("frobnicate //a", "unknown command 'frobnicate'"),
        ],
    )
    def test_usage_errors_keep_historical_wording(self, line, message):
        with pytest.raises(ValueError) as excinfo:
            parse_text_command(line)
        assert str(excinfo.value) == message


class TestFormatTextResponse:
    def test_error_formatting(self):
        assert (
            format_text_response({"op": "stats"}, {"ok": False, "error": "boom"})
            == "error: boom"
        )

    def test_estimate_exact_execute(self):
        assert (
            format_text_response(
                {"op": "estimate"}, {"ok": True, "value": 6.004, "epoch": 3}
            )
            == "estimate 6.00"
        )
        assert (
            format_text_response({"op": "exact"}, {"ok": True, "value": 7}) == "exact 7"
        )
        # The server returns rows + chosen-plan cost for execute.
        assert (
            format_text_response(
                {"op": "execute"}, {"ok": True, "rows": 3, "cost": 1.5}
            )
            == "execute 3 rows cost=1.50"
        )

    def test_update_and_flush_lines(self):
        ok_insert = {"ok": True, "nodes": 4, "rebuilt": False, "coalesced": 1}
        assert (
            format_text_response({"op": "insert"}, ok_insert)
            == "ok insert 4 nodes (incremental)"
        )
        ok_delete = {"ok": True, "nodes": 2, "rebuilt": True, "coalesced": 1}
        assert (
            format_text_response({"op": "delete"}, ok_delete)
            == "ok delete 2 nodes (rebuild)"
        )
        flush = {"ops": 3, "nodes_inserted": 5, "nodes_deleted": 2, "rebuilt": False}
        assert format_flush_response(flush) == "ok batch 3 ops +5/-2 nodes (incremental)"

    def test_stats_save_shutdown(self):
        stats = {
            "ok": True,
            "nodes": 32,
            "predicates": 2,
            "dirty": 0.03125,
            "rebuilds": 0,
        }
        assert (
            format_text_response({"op": "stats"}, stats)
            == "stats nodes=32 predicates=2 dirty=0.0312 rebuilds=0"
        )
        assert (
            format_text_response(
                {"op": "save"}, {"ok": True, "predicates": 5, "path": "x.npz"}
            )
            == "ok save 5 predicates -> x.npz"
        )
        assert (
            format_text_response({"op": "shutdown"}, {"ok": True, "op": "shutdown"})
            == "ok shutdown"
        )
