"""Incremental checkpoints: epoch-addressed pages + state deltas.

Pins the durability half of the epoch tentpole:

* a checkpoint cut after a small batch is *incremental* -- its state
  archive is a splice delta against the last full checkpoint and its
  summary archive re-writes only histogram pages whose epoch changed --
  and it is dramatically smaller than a full one;
* recovery through delta checkpoints (including chains of them over one
  base) is bit-identical: labels, tags, estimates, text slots, and the
  exported XML all match the live run;
* corruption anywhere in the reference chain falls back exactly like a
  corrupt self-contained checkpoint;
* retention (``keep_checkpoints``) never prunes a base that a kept
  delta still references, and fsyncs the directory after pruning;
* ``list_checkpoints`` requires both canonical paired files, so stray
  or partial files are never offered to recovery.
"""

import random
import shutil

import numpy as np
import pytest

from repro.service import DeleteOp, EstimationService, InsertOp, WalError
from repro.service.wal import (
    checkpoint_paths,
    checkpoint_refs,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
)
from repro.xmltree.tree import Element
from repro.xmltree.writer import write_document
from tests.service.test_batch import (
    QUERIES,
    prime,
    random_document,
    random_subtree,
)
from tests.service.test_wal import assert_state, state_of


def make_large_durable(directory, seed=7, nodes=400, checkpoint_every=10**9):
    """A durable service big enough that small batches stay far below
    the incremental-checkpoint size heuristic."""
    document = random_document(random.Random(seed), nodes)
    service = EstimationService.open_durable(
        directory,
        document,
        grid_size=6,
        spacing=64,
        rebuild_threshold=0.95,
        checkpoint_every=checkpoint_every,
    )
    prime(service)
    service.checkpoint()  # re-cut the full base with primed summaries
    return service


def small_batch(service, rng, ops=3):
    batch = [
        InsertOp(rng.randrange(len(service)), random_subtree(rng))
        for _ in range(ops)
    ]
    leaf = len(service) - 1  # a late node roots a small subtree
    batch.append(DeleteOp(leaf))
    service.apply_batch(batch)


def checkpoint_bytes(directory, lsn):
    return sum(path.stat().st_size for path in checkpoint_paths(directory, lsn))


class TestIncrementalCheckpoints:
    def test_small_batch_checkpoint_is_incremental_and_smaller(self, tmp_path):
        service = make_large_durable(tmp_path / "wal")
        full_bytes = checkpoint_bytes(tmp_path / "wal", 0)
        rng = random.Random(2)
        small_batch(service, rng)
        lsn = service.checkpoint()
        loaded = load_checkpoint(tmp_path / "wal", lsn)
        assert "incremental" in loaded.meta
        assert loaded.meta["incremental"]["base_lsn"] == 0
        assert 0 in loaded.meta["refs"]
        assert checkpoint_bytes(tmp_path / "wal", lsn) < full_bytes
        service.close()

    def test_recovery_through_delta_is_bit_identical(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=11)
        rng = random.Random(3)
        small_batch(service, rng)
        service.insert_subtree(10, random_subtree(rng))
        service.checkpoint()
        expected = state_of(service)
        xml = write_document(service.documents[0])
        service.close()

        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert recovered.recovery_info.batches_replayed == 0  # delta covers all
        assert_state(recovered, expected)
        # Text slots and attributes reconstruct exactly: the re-exported
        # XML matches the live run byte for byte.
        assert write_document(recovered.documents[0]) == xml
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_chained_deltas_share_one_base(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=13)
        rng = random.Random(5)
        lsns = []
        for _ in range(3):
            small_batch(service, rng, ops=2)
            lsns.append(service.checkpoint())
        for lsn in lsns:
            meta = load_checkpoint(tmp_path / "wal", lsn).meta
            assert meta["incremental"]["base_lsn"] == 0
        # Later deltas reference unchanged summary pages archived by
        # earlier checkpoints, not only the base.
        assert any(
            max(checkpoint_refs(tmp_path / "wal", lsn), default=0) > 0
            for lsn in lsns[1:]
        )
        expected = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_unchanged_summary_pages_are_referenced_not_rewritten(self, tmp_path):
        from repro.histograms.store import read_summary_manifest

        service = make_large_durable(tmp_path / "wal", seed=17)
        rng = random.Random(7)
        # Touch one tag only: insert a bare leaf under the root.
        service.insert_subtree(0, Element("zz"))
        lsn = service.checkpoint()
        manifest = read_summary_manifest(checkpoint_paths(tmp_path / "wal", lsn)[1])
        refs = [e for e in manifest["predicates"] if e.get("ref") is not None]
        rewritten = [e for e in manifest["predicates"] if e.get("ref") is None]
        # Most pages are untouched references; only the TRUE-dependent /
        # touched ones are re-archived.
        assert refs, "expected unchanged pages to be referenced"
        assert all(e["ref"] == 0 for e in refs)
        assert len(rewritten) < len(manifest["predicates"])
        service.close()

    def test_rebuild_forces_next_checkpoint_full(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=19)
        rng = random.Random(8)
        small_batch(service, rng)
        service.rebuild()
        service.insert_subtree(0, Element("qq"))
        lsn = service.checkpoint()
        assert "incremental" not in load_checkpoint(tmp_path / "wal", lsn).meta
        expected = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, expected)
        recovered.close()

    def test_force_full_flag(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=23)
        small_batch(service, random.Random(9))
        lsn = service.checkpoint(full=True)
        assert "incremental" not in load_checkpoint(tmp_path / "wal", lsn).meta
        service.close()

    def test_corrupt_base_disables_its_deltas(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=29)
        small_batch(service, random.Random(10))
        service.checkpoint()
        service.close()
        base_state = checkpoint_paths(tmp_path / "wal", 0)[0]
        data = bytearray(base_state.read_bytes())
        data[len(data) // 2] ^= 0xFF
        base_state.write_bytes(bytes(data))
        # The delta cannot reconstruct without its base, and the base
        # itself is corrupt: nothing recoverable remains.
        with pytest.raises(WalError, match="no loadable checkpoint"):
            EstimationService.open_durable(tmp_path / "wal")

    def test_corrupt_delta_falls_back_to_base_plus_replay(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=31)
        states = [state_of(service)]
        rng = random.Random(11)
        small_batch(service, rng)
        lsn = service.checkpoint()
        expected = state_of(service)
        service.close()
        delta_state = checkpoint_paths(tmp_path / "wal", lsn)[0]
        data = bytearray(delta_state.read_bytes())
        data[len(data) // 2] ^= 0xFF
        delta_state.write_bytes(bytes(data))
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert recovered.recovery_info.checkpoint_lsn == 0
        assert recovered.recovery_info.batches_replayed == 1
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()
        del states

    def test_delta_checkpoint_of_multi_document_forest(self, tmp_path):
        rng = random.Random(59)
        forest = [random_document(rng, 200), random_document(rng, 150)]
        service = EstimationService.open_durable(
            tmp_path / "wal", forest, grid_size=4, spacing=64,
            rebuild_threshold=0.95, checkpoint_every=10**9,
        )
        prime(service)
        service.checkpoint()
        service.apply_batch(
            [InsertOp(0, random_subtree(rng)), DeleteOp(len(service) - 2)]
        )
        lsn = service.checkpoint()
        assert "incremental" in load_checkpoint(tmp_path / "wal", lsn).meta
        expected = state_of(service)
        document_count = len(service.documents)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert len(recovered.documents) == document_count
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()


class TestCheckpointListing:
    def test_partial_checkpoint_needs_both_paired_files(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=37, nodes=60)
        service.insert_subtree(0, Element("x"))
        lsn = service.checkpoint()
        assert sorted(list_checkpoints(tmp_path / "wal")) == [0, lsn]
        # Drop one half: the checkpoint must disappear from the listing.
        checkpoint_paths(tmp_path / "wal", lsn)[1].unlink()
        assert list_checkpoints(tmp_path / "wal") == [0]
        service.close()

    def test_stray_noncanonical_state_file_is_ignored(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=41, nodes=60)
        service.close()
        # A stray state file whose name parses to an LSN that has a
        # canonical summaries twin but no canonical state file.
        lsn = 5
        stray = tmp_path / "wal" / "ckpt-5.state.npz"
        stray.write_bytes(b"junk")
        shutil.copy(
            checkpoint_paths(tmp_path / "wal", 0)[1],
            checkpoint_paths(tmp_path / "wal", lsn)[1],
        )
        assert list_checkpoints(tmp_path / "wal") == [0]

    def test_tmp_and_foreign_files_never_listed(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=43, nodes=60)
        service.close()
        (tmp_path / "wal" / "ckpt-0000000000000009.state.npz.tmp").write_bytes(b"x")
        (tmp_path / "wal" / "ckpt-abc.state.npz").write_bytes(b"x")
        assert list_checkpoints(tmp_path / "wal") == [0]


class TestRetention:
    def test_prune_keeps_referenced_base(self, tmp_path):
        service = make_large_durable(tmp_path / "wal", seed=47)
        rng = random.Random(13)
        for _ in range(4):
            small_batch(service, rng, ops=2)
            service.checkpoint()
        lsns = list_checkpoints(tmp_path / "wal")
        assert len(lsns) == 5  # base + 4 deltas
        pruned = prune_checkpoints(tmp_path / "wal", 2)
        remaining = list_checkpoints(tmp_path / "wal")
        # The two newest survive, plus the full base they reference.
        assert lsns[0] in remaining and lsns[1] in remaining
        assert 0 in remaining
        assert set(pruned) == set(lsns) - set(remaining)
        expected = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, expected)
        recovered.close()

    def test_service_retention_prunes_after_each_checkpoint(self, tmp_path):
        document = random_document(random.Random(51), 300)
        service = EstimationService.open_durable(
            tmp_path / "wal", document, grid_size=5, spacing=64,
            rebuild_threshold=0.95, checkpoint_every=1, keep_checkpoints=2,
        )
        prime(service)
        rng = random.Random(14)
        for _ in range(5):
            service.insert_subtree(rng.randrange(len(service)), Element("k"))
        listed = list_checkpoints(tmp_path / "wal")
        # Retention pruned at least one checkpoint (6 were cut), kept
        # the newest pair, and every survivor outside the pair is still
        # referenced (transitively) by a kept one -- never garbage.
        assert len(listed) < 6
        closure = set(listed[:2])
        queue = list(closure)
        while queue:
            for ref in checkpoint_refs(tmp_path / "wal", queue.pop()):
                if ref not in closure:
                    closure.add(ref)
                    queue.append(ref)
        assert set(listed) <= closure
        expected = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(tmp_path / "wal")
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_retention_validates_bound(self, tmp_path):
        document = random_document(random.Random(53), 40)
        with pytest.raises(ValueError, match="retention"):
            EstimationService.open_durable(
                tmp_path / "wal", document, keep_checkpoints=0
            )
