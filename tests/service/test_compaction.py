"""WAL compaction: dead-prefix truncation, pruning, crash safety.

The compaction invariants under test:

* ``compact()`` drops exactly the log records at or below the oldest
  live checkpoint and rewrites the survivors byte-for-byte behind a
  ``base`` watermark record; recovery after compaction is bit-identical
  to recovery before it;
* the watermark makes a *stale* checkpoint (stranded by a crash mid-
  prune, or resurrected by an operator) unusable instead of silently
  recovering divergent state;
* killing the process at any point during compaction -- while the new
  log is a partial temp file, right after the atomic rename, or at any
  prefix of the checkpoint pruning -- leaves a directory that recovers
  bit-identically (the kill-at-every-step fuzz);
* truncating the *compacted* log at every byte offset recovers exactly
  the committed prefix, as the pre-compaction log always did;
* a live service with ``auto_compact`` keeps serving and recovering
  while its directory stays bounded.
"""

import random
import shutil

import pytest

from repro.service import EstimationService, WalError, compact
from repro.service.wal import (
    LOG_NAME,
    checkpoint_paths,
    list_checkpoints,
    live_checkpoint_lsns,
    read_records,
)
from repro.xmltree.tree import Element
from tests.service.test_batch import QUERIES, prime, random_document
from tests.service.test_wal import (
    assert_state,
    commit_end_offsets,
    run_batches,
    simulate_crash,
    state_of,
)


def make_durable(directory, seed=7, nodes=60, checkpoint_every=10**9):
    document = random_document(random.Random(seed), nodes)
    service = EstimationService.open_durable(
        directory,
        document,
        grid_size=5,
        spacing=64,
        rebuild_threshold=0.95,
        checkpoint_every=checkpoint_every,
    )
    prime(service)
    service.checkpoint()
    return service


def copy_dir(source, target):
    if target.exists():
        shutil.rmtree(target)
    shutil.copytree(source, target)
    return target


class TestCompact:
    def test_drops_dead_prefix_and_recovers_identically(self, tmp_path):
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=11)
        run_batches(service, random.Random(2), 3, 4)
        service.checkpoint()
        run_batches(service, random.Random(3), 2, 3)
        expected = state_of(service)
        service.close()

        before = (directory / LOG_NAME).stat().st_size
        stats = compact(directory, keep_checkpoints=1)
        assert stats.records_dropped > 0
        assert stats.log_bytes_after < before
        assert stats.base_lsn == min(live_checkpoint_lsns(directory))
        records, _ = read_records(directory / LOG_NAME)
        assert records[0].type == "base"
        assert all(
            r.lsn > stats.base_lsn for r in records if r.type != "base"
        )
        recovered = EstimationService.open_durable(directory)
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_compact_prunes_superseded_checkpoints(self, tmp_path):
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=13)
        rng = random.Random(4)
        for _ in range(4):
            run_batches(service, rng, 1, 3)
            service.checkpoint()
        expected = state_of(service)
        service.close()
        assert len(list_checkpoints(directory)) >= 4
        stats = compact(directory, keep_checkpoints=2)
        assert stats.checkpoints_pruned
        remaining = set(list_checkpoints(directory))
        assert remaining == live_checkpoint_lsns(directory)
        recovered = EstimationService.open_durable(directory)
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_compact_without_checkpoints_is_a_noop(self, tmp_path):
        directory = tmp_path / "wal"
        directory.mkdir()
        (directory / LOG_NAME).write_bytes(b"WPJWAL1\n")
        stats = compact(directory)
        assert stats.records_dropped == 0
        assert (directory / LOG_NAME).read_bytes() == b"WPJWAL1\n"

    def test_idempotent(self, tmp_path):
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=17)
        run_batches(service, random.Random(5), 2, 3)
        service.checkpoint()
        expected = state_of(service)
        service.close()
        compact(directory, keep_checkpoints=1)
        first = (directory / LOG_NAME).read_bytes()
        stats = compact(directory, keep_checkpoints=1)
        assert stats.records_dropped == 0
        assert (directory / LOG_NAME).read_bytes() == first
        recovered = EstimationService.open_durable(directory)
        assert_state(recovered, expected)
        recovered.close()

    def test_live_service_compacts_and_keeps_logging(self, tmp_path):
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=19)
        run_batches(service, random.Random(6), 2, 3)
        service.checkpoint()
        service.compact()  # through the open WAL handle
        # The service keeps accepting + logging updates after the swap.
        states = run_batches(service, random.Random(7), 2, 3)
        expected = state_of(service)
        service.close()
        recovered = EstimationService.open_durable(directory)
        assert_state(recovered, expected)
        recovered.differential_check(QUERIES)
        recovered.close()
        del states


class TestWatermarkProtection:
    def test_stale_checkpoint_below_watermark_is_never_used(self, tmp_path):
        """A checkpoint whose replay suffix was compacted away must be
        refused -- even when every newer checkpoint is corrupt -- rather
        than silently recovering divergent state."""
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=23)
        run_batches(service, random.Random(8), 2, 3)
        # Full checkpoints: no reference chains, so compaction can
        # advance the watermark past the older checkpoints.
        service.checkpoint(full=True)
        stale = {
            lsn: [p.read_bytes() for p in checkpoint_paths(directory, lsn)]
            for lsn in list_checkpoints(directory)
        }
        run_batches(service, random.Random(9), 2, 3)
        service.checkpoint(full=True)
        service.close()
        compact(directory, keep_checkpoints=1)
        # Resurrect a pruned (now stale) checkpoint and corrupt the live
        # one: recovery must fail loudly, not use the stale state.
        for lsn, blobs in stale.items():
            if lsn in list_checkpoints(directory):
                continue
            for path, blob in zip(checkpoint_paths(directory, lsn), blobs):
                path.write_bytes(blob)
            break
        else:
            pytest.skip("compaction pruned nothing to resurrect")
        newest = max(live_checkpoint_lsns(directory))
        for path in checkpoint_paths(directory, newest):
            path.write_bytes(b"corrupt")
        with pytest.raises(WalError, match="no loadable checkpoint"):
            EstimationService.open_durable(directory)


class TestKillDuringCompact:
    """Kill-at-every-step: every intermediate on-disk state a crash
    during compact() can leave behind recovers bit-identically."""

    def _workload(self, tmp_path):
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=29, nodes=40)
        run_batches(service, random.Random(10), 2, 3)
        service.checkpoint()
        run_batches(service, random.Random(11), 2, 3)
        expected = state_of(service)
        service.close()
        return directory, expected

    def _assert_recovers(self, directory, expected, label):
        recovered = EstimationService.open_durable(directory)
        try:
            assert_state(recovered, expected)
        except AssertionError as exc:  # pragma: no cover - diagnostics
            raise AssertionError(f"crash point {label} diverged: {exc}") from exc
        finally:
            recovered.close()

    def test_every_crash_point(self, tmp_path):
        directory, expected = self._workload(tmp_path)
        pristine = copy_dir(directory, tmp_path / "pristine")

        # Run the real compaction once on a scratch copy to learn the
        # final log bytes and the prune order.
        scratch = copy_dir(pristine, tmp_path / "scratch")
        stats = compact(scratch, keep_checkpoints=1)
        new_log = (scratch / LOG_NAME).read_bytes()
        prune_order = [
            path
            for lsn in stats.checkpoints_pruned
            for path in checkpoint_paths(scratch, lsn)
        ]

        sim = tmp_path / "sim"
        # Phase 1: crash while the temp log is being written (sampled
        # offsets incl. 0 and full length).  Old log intact, tmp stray.
        offsets = sorted({0, 1, 8, len(new_log) // 2, len(new_log)})
        for offset in offsets:
            copy_dir(pristine, sim)
            (sim / (LOG_NAME + ".tmp")).write_bytes(new_log[:offset])
            self._assert_recovers(sim, expected, f"tmp@{offset}")

        # Phase 2: crash right after the atomic rename, before pruning.
        copy_dir(pristine, sim)
        (sim / LOG_NAME).write_bytes(new_log)
        self._assert_recovers(sim, expected, "renamed")

        # Phase 3: crash after each prefix of the checkpoint pruning.
        for upto in range(1, len(prune_order) + 1):
            copy_dir(pristine, sim)
            (sim / LOG_NAME).write_bytes(new_log)
            for path in prune_order[:upto]:
                target = sim / path.name
                if target.exists():
                    target.unlink()
            self._assert_recovers(sim, expected, f"pruned{upto}")

    def test_truncate_compacted_log_at_every_offset(self, tmp_path):
        """After compaction, the log still recovers exactly the
        committed prefix at any truncation point."""
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=31, nodes=40)
        run_batches(service, random.Random(12), 2, 3)
        service.checkpoint(full=True)
        service.close()
        stats = compact(directory, keep_checkpoints=1)
        assert stats.records_dropped > 0
        log_path = directory / LOG_NAME
        leftover = {r.lsn for r in read_records(log_path)[0] if r.type == "batch"}
        # The suffix past the compaction point.  (A leftover aborted
        # batch record may survive compaction -- it replays as a skip,
        # so it does not advance the expected state.)
        service = EstimationService.open_durable(directory)
        states = run_batches(service, random.Random(13), 2, 3)
        service.close()
        data = log_path.read_bytes()
        records, valid_end = read_records(log_path)
        assert valid_end == len(data)
        marker_ends = commit_end_offsets(log_path)
        batch_ends = [
            r.end_offset
            for r in records
            if r.type == "batch" and r.lsn not in leftover
        ]
        assert len(batch_ends) == len(states) - 1
        sim = tmp_path / "sim"
        for offset in range(len(data) + 1):
            # Checkpoints cut during the suffix only exist once their
            # batch's marker was durable (same rule as the pre-existing
            # kill-offset harness); compacted-away markers default to 0,
            # so the surviving base checkpoint is always present.
            simulate_crash(directory, sim, data[:offset], marker_ends)
            k = sum(1 for end in batch_ends if end <= offset)
            recovered = EstimationService.open_durable(sim)
            try:
                assert_state(recovered, states[k])
            except AssertionError as exc:  # pragma: no cover
                raise AssertionError(
                    f"recovery at offset {offset} (expected {k} batches) "
                    f"diverged: {exc}"
                ) from exc
            finally:
                recovered.close()
