"""The v2 binary WAL codec: exact round-trips, corruption fuzz, and
v1 interoperability.

Framing is shared with v1 (length + crc32 per record), so the existing
kill-at-every-offset and compaction suites already exercise v2 frames
-- the service writes them by default.  This module pins the codec
itself: every record type round-trips bit-exactly through
``_encode_payload_v2`` / ``_decode_payload_v2``; the two codecs decode
to identical record payloads; corrupted v2 payloads are rejected as a
clean truncation, never a partial decode; and logs that switch codec
mid-file (a legacy v1 prefix continued by a binary writer) replay
correctly from any crash point.
"""

import random
import struct
import zlib

import pytest

from repro.service import EstimationService
from repro.service.wal import (
    LOG_NAME,
    WAL_MAGIC,
    _HEADER,
    _V2_MARKER,
    _decode_payload_v2,
    _encode_payload_v2,
    WriteAheadLog,
    read_records,
)
from tests.service.test_wal import (
    QUERIES,
    assert_state,
    commit_end_offsets,
    expected_batches,
    make_durable,
    run_batches,
    simulate_crash,
)

# Canonical records in decoder-output shape (markers carry only
# lsn/type; batch ops always have explicit position keys), so a
# round-trip can be compared with plain ==.
MARKER_RECORDS = [
    {"lsn": 7, "type": "commit"},
    {"lsn": 8, "type": "abort"},
    {"lsn": 12, "type": "base"},
    {"lsn": -1, "type": "base"},  # compaction watermark of a fresh log
]

BATCH_RECORDS = [
    {"lsn": 1, "type": "batch", "single": False, "ops": []},
    {
        "lsn": 2,
        "type": "batch",
        "single": True,
        "ops": [
            {
                "kind": "insert",
                "parent": ["index", 5],
                "xml": "<a/>",
                "position": None,
            }
        ],
    },
    {
        "lsn": 3,
        "type": "batch",
        "single": False,
        "ops": [
            {
                "kind": "insert",
                "parent": ["node", 12],
                "xml": '<a b="c">déjà ☃</a>',
                "position": 0,
            },
            {
                "kind": "insert",
                "parent": ["op", 0, 3],
                "xml": "<b><c/>text</b>",
                "position": 7,
            },
            {"kind": "delete", "node": ["index", 42]},
            {"kind": "delete", "node": ["op", 1, 0]},
            {"kind": "delete", "node": ["node", 9]},
        ],
    },
]


def frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("record", MARKER_RECORDS + BATCH_RECORDS)
    def test_every_record_type_round_trips_exactly(self, record):
        payload = _encode_payload_v2(record)
        assert payload[0] == _V2_MARKER
        assert _decode_payload_v2(payload) == record

    def test_large_batch_round_trips(self):
        rng = random.Random(5)
        ops = []
        for k in range(500):
            if rng.random() < 0.6:
                ops.append(
                    {
                        "kind": "insert",
                        "parent": [
                            rng.choice(["index", "node"]),
                            rng.randrange(10**6),
                        ],
                        "xml": f"<n{k}>{'x' * rng.randrange(40)}</n{k}>",
                        "position": rng.choice([None, 0, 3, 10**5]),
                    }
                )
            else:
                ops.append({"kind": "delete", "node": ["op", k, rng.randrange(9)]})
        record = {"lsn": 10**12, "type": "batch", "single": False, "ops": ops}
        assert _decode_payload_v2(_encode_payload_v2(record)) == record

    def test_binary_payload_is_smaller_than_json(self):
        import json

        record = BATCH_RECORDS[2]
        binary = _encode_payload_v2(record)
        as_json = json.dumps(record, separators=(",", ":")).encode("utf-8")
        assert len(binary) < len(as_json)


class TestCodecEquivalence:
    OPS = [
        {
            "kind": "insert",
            "parent": ["index", 0],
            "xml": "<z><y/></z>",
            "position": None,
        },
        {"kind": "delete", "node": ["node", 3]},
    ]

    def write_log(self, path, codec):
        wal = WriteAheadLog(path, codec=codec)
        lsn = wal.log_batch(self.OPS)
        wal.mark_committed(lsn)
        wal.log_batch(self.OPS, single=True)
        wal.close()
        return read_records(path)[0]

    def test_both_codecs_decode_to_identical_records(self, tmp_path):
        v1 = self.write_log(tmp_path / "v1.log", "json")
        v2 = self.write_log(tmp_path / "v2.log", "binary")
        assert [r.payload for r in v1] == [r.payload for r in v2]
        assert [r.lsn for r in v1] == [r.lsn for r in v2]

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown WAL codec"):
            WriteAheadLog(tmp_path / "x.log", codec="msgpack")

    def test_binary_writer_continues_a_v1_log(self, tmp_path):
        path = tmp_path / "mixed.log"
        v1 = WriteAheadLog(path, codec="json")
        first = v1.log_batch(self.OPS)
        v1.mark_committed(first)
        v1.close()
        v2 = WriteAheadLog(path)  # binary is the default codec
        second = v2.log_batch(self.OPS)
        assert second == first + 1
        v2.close()
        records, _ = read_records(path)
        assert [r.type for r in records] == ["batch", "commit", "batch"]
        assert records[0].payload["ops"] == records[2].payload["ops"]


class TestDecoderRejectsCorruption:
    """CRC passes (we re-checksum after mutating), so the payload
    decoder's own validation must catch the damage and stop cleanly."""

    def corrupt_cases(self):
        good = _encode_payload_v2(BATCH_RECORDS[2])
        yield good[: len(good) // 2]  # truncated mid-arrays
        yield good + b"trailing"  # xml_offsets no longer match the blob
        bad_type = bytearray(good)
        bad_type[1] = 9  # type code outside _RECORD_TYPES
        yield bytes(bad_type)
        huge_n = bytearray(good)
        struct.pack_into("<I", huge_n, 11, 2**31)  # n_ops beyond payload
        yield bytes(huge_n)
        marker = bytearray(_encode_payload_v2({"lsn": 1, "type": "commit"}))
        yield bytes(marker) + b"x"  # marker with trailing bytes

    def test_payloads_rejected(self):
        for payload in self.corrupt_cases():
            assert _decode_payload_v2(payload) is None

    def test_read_records_stops_at_corrupt_v2_payload(self, tmp_path):
        path = tmp_path / "t.log"
        intact = _encode_payload_v2(
            {"lsn": 1, "type": "batch", "single": True, "ops": []}
        )
        for payload in self.corrupt_cases():
            chunks = [WAL_MAGIC, frame(intact), frame(payload), frame(intact)]
            path.write_bytes(b"".join(chunks))
            records, valid_end = read_records(path)
            # The intact prefix survives whole; nothing after the
            # corrupt record is decoded even though its frame is valid.
            assert [r.lsn for r in records] == [1]
            assert valid_end == len(WAL_MAGIC) + len(frame(intact))

    def test_seeded_bit_flips_always_detected_or_truncated(self, tmp_path):
        path = tmp_path / "t.log"
        wal = WriteAheadLog(path)
        for record in BATCH_RECORDS:
            lsn = wal.log_batch(record["ops"], single=record["single"])
            wal.mark_committed(lsn)
        wal.close()
        data = path.read_bytes()
        original, _ = read_records(path)
        rng = random.Random(31)
        for _ in range(300):
            position = rng.randrange(len(data))
            corrupt = bytearray(data)
            corrupt[position] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(corrupt))
            records, valid_end = read_records(path)
            # Always a clean prefix of the original log, cut before the
            # flipped byte -- never an altered or partial record.
            assert valid_end <= max(position, len(WAL_MAGIC))
            assert [r.payload for r in records] == [
                r.payload for r in original[: len(records)]
            ]


class TestMixedLogRecovery:
    """A legacy v1 log continued by the binary writer must recover the
    committed prefix from any crash point, exactly like a pure log."""

    def mixed_workload(self, tmp_path, seed=67):
        directory = tmp_path / "wal"
        service = make_durable(directory, seed=seed, nodes=30)
        service._wal.codec = "json"  # legacy writer for the prefix
        states = run_batches(service, random.Random(seed + 1), 2, 3)
        service._wal.codec = "binary"
        states += run_batches(service, random.Random(seed + 2), 2, 3)[1:]
        service.close()
        log_path = directory / LOG_NAME
        data = log_path.read_bytes()
        records, valid_end = read_records(log_path)
        assert valid_end == len(data)
        first_bytes = {
            data[r.offset + _HEADER.size : r.offset + _HEADER.size + 1]
            for r in records
        }
        assert first_bytes == {b"{", bytes([_V2_MARKER])}  # genuinely mixed
        batch_ends = [r.end_offset for r in records if r.type == "batch"]
        return directory, data, states, batch_ends, commit_end_offsets(log_path)

    def test_clean_reopen_of_mixed_log(self, tmp_path):
        directory, _data, states, _ends, _markers = self.mixed_workload(tmp_path)
        recovered = EstimationService.open_durable(directory)
        assert_state(recovered, states[-1])
        recovered.differential_check(QUERIES)
        recovered.close()

    def test_every_truncation_offset_of_mixed_log(self, tmp_path):
        directory, data, states, batch_ends, marker_ends = self.mixed_workload(
            tmp_path
        )
        sim = tmp_path / "sim"
        for offset in range(len(data) + 1):
            simulate_crash(directory, sim, data[:offset], marker_ends)
            recovered = EstimationService.open_durable(sim)
            k = expected_batches(offset, batch_ends)
            try:
                assert_state(recovered, states[k])
            except AssertionError as exc:  # pragma: no cover - diagnostics
                raise AssertionError(
                    f"mixed-log recovery at offset {offset} (expected {k} "
                    f"batches) diverged: {exc}"
                ) from exc
            finally:
                recovered.close()
