"""Mid-batch local label rebalance: exhausted gaps no longer force a
full-forest relabel.

The construction engineers one exhausted gap deterministically: with
``spacing=4`` a leaf's interior gap holds exactly one single-node
insert, so a second insert at the same child rank exhausts it.  The
enclosing parent interval is too narrow to respread, but the next
ancestor's is wide enough -- the batch must rebalance *that* region
locally (moving only its handful of nodes), keep ``rebuilt`` False, and
leave every maintained summary bit-identical to a from-scratch build
over the post-batch tree.
"""

import random

import numpy as np
import pytest

from repro.predicates.base import TagPredicate
from repro.service import BatchError, DeleteOp, EstimationService, InsertOp
from repro.xmltree.tree import Document, Element

QUERIES = ["//root//a", "//c//d", "//root//b", "//c//b"]
TAGS = ["a", "b", "c", "d", "root"]


def narrow_gap_document(width: int = 60) -> Document:
    """A wide, shallow tree plus one deep chain ``root/c/d``.

    ``width`` filler leaves keep the moved slice a small fraction of
    the tree, so the batch's touched count stays under the rebuild
    threshold and the incremental path is the one under test.
    """
    document = Document()
    root = Element("root")
    document.append(root)
    for _ in range(width):
        root.append(Element("a"))
    c = Element("c")
    root.append(c)
    c.append(Element("d"))
    return document


def primed_service(**overrides) -> EstimationService:
    settings = dict(grid_size=5, spacing=4, rebuild_threshold=0.99)
    settings.update(overrides)
    service = EstimationService(narrow_gap_document(), **settings)
    service.estimate_many(QUERIES)
    for tag in TAGS:
        predicate = TagPredicate(tag)
        service.position_histogram(predicate)
        service.coverage_histogram(predicate)
        service.estimator.level_histogram(predicate)
    _ = service.estimator.true_histogram
    return service


def chain_index(service: EstimationService, tag: str) -> int:
    (element,) = [e for e in service.tree.elements if e.tag == tag]
    return service.tree.index_of(element)


def exhausting_ops(d_index: int) -> list:
    # The first insert fits in d's interior gap; the second, at the
    # same child rank, finds it exhausted and must rebalance.
    return [InsertOp(d_index, Element("b"), 0), InsertOp(d_index, Element("b"), 0)]


def assert_labels_valid(service: EstimationService) -> None:
    tree = service.tree
    assert np.all(tree.start < tree.end)
    parents = tree.parent_index
    has_parent = parents >= 0
    assert np.all(tree.start[has_parent] > tree.start[parents[has_parent]])
    assert np.all(tree.end[has_parent] < tree.end[parents[has_parent]])
    order = np.argsort(tree.start)
    assert np.array_equal(order, np.arange(len(tree)))  # pre-order by start


def test_exhausted_gap_rebalances_locally_instead_of_relabeling():
    service = primed_service()
    result = service.apply_batch(exhausting_ops(chain_index(service, "d")))
    assert not result.rebuilt
    assert service.stats.rebuilds == 0
    assert service.stats.rebalances == 1
    assert_labels_valid(service)
    service.differential_check(QUERIES)


def test_rebalance_invalidates_incremental_checkpoint_delta():
    service = primed_service()
    # As if a full checkpoint just happened: identity index mapping.
    service._ckpt_tracker = np.arange(len(service), dtype=np.int64)
    service.apply_batch(exhausting_ops(chain_index(service, "d")))
    assert service._ckpt_tracker is None


def test_rebalance_matches_sequential_structure():
    batched = primed_service()
    sequential = primed_service()
    d_batched = chain_index(batched, "d")
    d_sequential = chain_index(sequential, "d")
    batched.apply_batch(exhausting_ops(d_batched))
    sequential.insert_subtree(d_sequential, Element("b"), position=0)
    sequential.insert_subtree(d_sequential, Element("b"), position=0)
    assert [e.tag for e in batched.tree.elements] == [
        e.tag for e in sequential.tree.elements
    ]
    assert np.array_equal(
        batched.tree.parent_index, sequential.tree.parent_index
    )
    batched.differential_check(QUERIES)
    sequential.differential_check(QUERIES)


def test_delete_of_rebalance_moved_nodes_in_same_batch():
    """A node whose labels a rebalance moved can be deleted later in
    the same batch: its summary exits use pre-batch labels (the moved
    labels never reached any summary)."""
    service = primed_service()
    d_index = chain_index(service, "d")
    result = service.apply_batch(
        exhausting_ops(d_index) + [DeleteOp(d_index)]
    )
    assert not result.rebuilt
    assert service.stats.rebalances == 1
    assert_labels_valid(service)
    service.differential_check(QUERIES)


def test_rollback_after_rebalance_restores_pre_batch_state():
    service = primed_service()
    d_index = chain_index(service, "d")
    start0 = service.tree.start.copy()
    end0 = service.tree.end.copy()
    tags0 = [e.tag for e in service.tree.elements]
    estimates0 = {q: service.estimate(q).value for q in QUERIES}
    with pytest.raises(BatchError) as info:
        service.apply_batch(exhausting_ops(d_index) + [DeleteOp(10**9)])
    assert not info.value.applied
    assert [e.tag for e in service.tree.elements] == tags0
    assert np.array_equal(service.tree.start, start0)
    assert np.array_equal(service.tree.end, end0)
    assert {q: service.estimate(q).value for q in QUERIES} == estimates0
    service.differential_check(QUERIES)


@pytest.mark.parametrize("seed", range(12))
def test_concentrated_inserts_fuzz(seed):
    """Random single-node inserts hammered into one small subtree:
    gaps exhaust repeatedly, and whatever mix of rebalances and
    fallback rebuilds results, the maintenance contract holds."""
    rng = random.Random(seed)
    service = primed_service(rebuild_threshold=0.95)
    c_index = chain_index(service, "c")
    region = [c_index]
    for _ in range(3):
        ops = []
        for _ in range(4):
            target = rng.choice(region)
            ops.append(InsertOp(target, Element(rng.choice(["b", "d"])), 0))
        try:
            service.apply_batch(ops)
        except BatchError:
            pass  # rolled back is an acceptable (and checked) outcome
        sub = service.tree.subtree_slice(c_index)
        region = list(range(sub.start, sub.stop))
        assert_labels_valid(service)
        service.differential_check(QUERIES)
