"""Sharded parallel statistics builds: bit-identical to serial, any
shard count, wired into cold start and rebuild."""

import random

import numpy as np
import pytest

from repro.estimation import AnswerSizeEstimator
from repro.histograms.adaptive import equi_depth_grid
from repro.histograms.coverage import build_coverage_numerators
from repro.histograms.parallel import (
    build_statistics_parallel,
    partition_units,
)
from repro.labeling.interval import label_forest
from repro.predicates.base import TagPredicate
from repro.service import EstimationService
from repro.xmltree.tree import Document, Element
from tests.service.test_batch import (
    QUERIES,
    prime,
    random_document,
    random_subtree,
)


def forest(seed: int, documents: int = 1, nodes: int = 120):
    rng = random.Random(seed)
    return [random_document(rng, rng.randrange(nodes // 2, nodes)) for _ in range(documents)]


def assert_built_matches_serial(tree, grid, workers):
    built = build_statistics_parallel(tree, grid, n_workers=workers)
    reference = AnswerSizeEstimator(tree, grid_size=grid.size)
    reference.grid = grid
    rows = reference.catalog.register_all_tags()
    assert set(built.tag_indices) == {row.predicate.name for row in rows}
    for row in rows:
        tag = row.predicate.name
        assert np.array_equal(built.tag_indices[tag], row.node_indices), tag
        assert built.no_overlap[tag] == row.no_overlap, tag
        assert dict(built.position[tag].cells()) == dict(
            reference.position_histogram(row.predicate).cells()
        ), tag
        if row.no_overlap:
            assert built.coverage_numerators[tag] == build_coverage_numerators(
                tree, row.node_indices, grid
            ), tag
        else:
            assert tag not in built.coverage_numerators, tag
    assert dict(built.true_histogram.cells()) == dict(
        reference.true_histogram.cells()
    )


@pytest.mark.parametrize("workers", [1, 2, 4, 7])
def test_sharded_build_bit_identical_single_document(workers):
    tree = label_forest(forest(3), spacing=16)
    from repro.histograms.grid import GridSpec

    assert_built_matches_serial(tree, GridSpec(7, tree.max_label), workers)


@pytest.mark.parametrize("workers", [1, 3])
def test_sharded_build_bit_identical_multi_document_forest(workers):
    tree = label_forest(forest(5, documents=4, nodes=60), spacing=8)
    from repro.histograms.grid import GridSpec

    assert_built_matches_serial(tree, GridSpec(5, tree.max_label), workers)


def test_sharded_build_bit_identical_equi_depth_grid():
    tree = label_forest(forest(7), spacing=16)
    assert_built_matches_serial(tree, equi_depth_grid(tree, 6), 3)


def test_sharded_build_more_workers_than_nodes():
    document = Document()
    root = Element("root")
    document.append(root)
    root.append(Element("a"))
    tree = label_forest([document], spacing=4)
    from repro.histograms.grid import GridSpec

    assert_built_matches_serial(tree, GridSpec(3, tree.max_label), 8)


def test_partition_covers_everything_exactly_once():
    tree = label_forest(forest(11, documents=2), spacing=4)
    shard_ranges, spine = partition_units(tree, 4)
    seen = np.zeros(len(tree), dtype=int)
    for ranges in shard_ranges:
        for lo, hi in ranges:
            seen[lo:hi] += 1
    seen[spine] += 1
    assert np.all(seen == 1)
    # Spine nodes are exactly the nodes whose subtree spans shard units.
    for index in spine.tolist():
        assert tree.parent_index[index] == -1 or int(tree.parent_index[index]) in spine


def test_cold_start_with_workers_matches_serial_service():
    parallel = EstimationService(
        forest(13)[0], grid_size=5, spacing=32, n_workers=3
    )
    serial = EstimationService(forest(13)[0], grid_size=5, spacing=32)
    prime(serial)
    parallel.differential_check(QUERIES)
    for query in QUERIES:
        assert parallel.estimate(query).value == serial.estimate(query).value
    parallel.close()


def test_parallel_service_absorbs_updates_and_rebuilds():
    service = EstimationService(
        forest(17)[0], grid_size=5, spacing=32, n_workers=2, rebuild_threshold=0.3
    )
    rng = random.Random(19)
    for _ in range(10):
        if rng.random() < 0.7 or len(service) < 20:
            service.insert_subtree(rng.randrange(len(service)), random_subtree(rng))
        else:
            service.delete_subtree(rng.randrange(1, len(service)))
    assert service.stats.rebuilds >= 1  # low threshold forces the sharded rebuild path
    service.differential_check(QUERIES)
    service.close()


def test_parallel_rebuild_primes_all_tags():
    service = EstimationService(forest(23)[0], grid_size=5, spacing=32, n_workers=2)
    tags = {e.tag for e in service.tree.elements}
    for tag in tags:
        assert TagPredicate(tag) in service.estimator._position_cache
    assert service.estimator._true_hist is not None
    service.rebuild()
    for tag in tags:
        assert TagPredicate(tag) in service.estimator._position_cache
    service.differential_check(QUERIES)
    service.close()


def test_worker_pool_is_reused_and_closable():
    service = EstimationService(forest(29)[0], grid_size=5, spacing=32, n_workers=2)
    first = service._pool
    service.rebuild()
    assert service._pool is first  # warm pool reused across rebuilds
    service.close()
    assert service._pool is None
    service.close()  # idempotent


def test_batch_degraded_rebuild_with_workers_rescans_elements():
    """Regression: a batch that falls back to a rebuild does so before
    its catalog flush, so the sharded rebuild must not trust the (stale)
    per-tag index as a tag-code source."""
    from repro.service import InsertOp

    service = EstimationService(
        forest(31)[0], grid_size=5, spacing=2, n_workers=2, rebuild_threshold=0.9
    )
    # spacing 2 leaves 1-label gaps: the first batch insert relabels and
    # the batch finishes under a full (sharded) rebuild.
    result = service.apply_batch(
        [InsertOp(0, random_subtree(random.Random(1))) for _ in range(3)]
    )
    assert result.rebuilt
    service.differential_check(QUERIES)
    service.close()
