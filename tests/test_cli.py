"""CLI tests: generate / stats / estimate / workload / serve round trips."""

import argparse

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dblp.xml"
    exit_code = main(
        ["generate", "dblp", "--out", str(path), "--seed", "3", "--scale", "0.02"]
    )
    assert exit_code == 0
    return path


class TestGenerate:
    def test_generates_parseable_xml(self, dataset_path, capsys):
        from repro.xmltree.parser import parse_document

        document = parse_document(dataset_path.read_text())
        assert document.root_element.tag == "dblp"

    def test_paper_example(self, tmp_path, capsys):
        path = tmp_path / "example.xml"
        assert main(["generate", "paper-example", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "31 elements" in out  # the Fig. 1 document's element count

    def test_orgchart_and_xmark(self, tmp_path):
        for dataset in ("orgchart", "xmark", "shakespeare", "treebank"):
            path = tmp_path / f"{dataset}.xml"
            assert main(["generate", dataset, "--out", str(path), "--seed", "4"]) == 0
            assert path.exists()


class TestStats:
    def test_prints_predicate_table(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path), "--grid", "8"]) == 0
        out = capsys.readouterr().out
        assert "article" in out
        assert "no overlap" in out
        assert "Hist Bytes" in out


class TestEstimate:
    def test_plain_estimate(self, dataset_path, capsys):
        assert main(["estimate", str(dataset_path), "//article//author"]) == 0
        value = float(capsys.readouterr().out.strip())
        assert value > 0

    def test_compare_table(self, dataset_path, capsys):
        assert (
            main(
                [
                    "estimate",
                    str(dataset_path),
                    "//article//author",
                    "--compare",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no-overlap" in out
        assert "exact" in out
        assert "naive" in out

    def test_equi_depth_grid_flag(self, dataset_path, capsys):
        assert (
            main(
                [
                    "estimate",
                    str(dataset_path),
                    "//article//cite",
                    "--grid-kind",
                    "equi-depth",
                ]
            )
            == 0
        )
        value = float(capsys.readouterr().out.strip())
        assert value >= 0

    def test_twig_query(self, dataset_path, capsys):
        assert (
            main(
                [
                    "estimate",
                    str(dataset_path),
                    "//article[.//cdrom]//author",
                    "--compare",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "twig" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServe:
    """Smoke tests of the online-service subcommand: every command of
    the serve language, exit codes, and parseable one-line responses."""

    def run_script(self, dataset_path, tmp_path, commands, extra_args=()):
        script = tmp_path / "script.txt"
        script.write_text("\n".join(commands) + "\n")
        argv = ["serve", str(dataset_path), "--script", str(script), *extra_args]
        return main(argv)

    def test_estimate_and_exact(self, dataset_path, tmp_path, capsys):
        code = self.run_script(
            dataset_path,
            tmp_path,
            ["estimate //article//author", "exact //article//author"],
            extra_args=["--grid", "8"],
        )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        estimate_line = next(l for l in lines if l.startswith("estimate "))
        exact_line = next(l for l in lines if l.startswith("exact "))
        assert float(estimate_line.split()[1]) > 0
        assert int(exact_line.split()[1]) > 0

    def test_update_commands_change_answers(self, dataset_path, tmp_path, capsys):
        code = self.run_script(
            dataset_path,
            tmp_path,
            [
                "# a comment, skipped",
                "exact //article//author",
                "insert article <author>Extra Author</author>",
                "exact //article//author",
                "delete author 1",
                "exact //article//author",
                "stats",
            ],
        )
        assert code == 0
        out = capsys.readouterr().out
        exacts = [int(l.split()[1]) for l in out.splitlines() if l.startswith("exact ")]
        assert exacts[1] == exacts[0] + 1
        assert exacts[2] == exacts[1] - 1
        assert "ok insert 1 nodes" in out
        assert "ok delete 1 nodes" in out
        stats_line = next(
            l for l in out.splitlines() if l.startswith("stats nodes=")
        )
        assert "dirty=" in stats_line and "rebuilds=" in stats_line

    def test_errors_keep_serving_and_session_summary(
        self, dataset_path, tmp_path, capsys
    ):
        code = self.run_script(
            dataset_path,
            tmp_path,
            ["delete nosuchtag", "estimate //article//author", "quit", "stats"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "error:" in out  # bad command reported, stream continues
        assert any(l.startswith("estimate ") for l in out.splitlines())
        assert "session inserts=0 deletes=0" in out
        assert "stats nodes=" not in out  # quit stops the stream

    def test_save_and_warm_start_cycle(self, dataset_path, tmp_path, capsys):
        store = tmp_path / "stats.npz"
        code = self.run_script(
            dataset_path,
            tmp_path,
            ["estimate //article//author", f"save {store}"],
            extra_args=["--save-stats", str(store)],
        )
        assert code == 0
        assert store.exists()
        first = capsys.readouterr().out

        code = self.run_script(
            dataset_path,
            tmp_path,
            ["estimate //article//author"],
            extra_args=["--warm-start", str(store)],
        )
        assert code == 0
        second = capsys.readouterr().out
        value_of = lambda out: next(
            l for l in out.splitlines() if l.startswith("estimate ")
        )
        assert value_of(first) == value_of(second)

    def test_warm_start_conflicts_with_grid_flags(
        self, dataset_path, tmp_path, capsys
    ):
        store = tmp_path / "stats.npz"
        assert (
            self.run_script(
                dataset_path, tmp_path, ["stats"], extra_args=["--save-stats", str(store)]
            )
            == 0
        )
        capsys.readouterr()
        code = self.run_script(
            dataset_path,
            tmp_path,
            ["stats"],
            extra_args=["--warm-start", str(store), "--grid", "20"],
        )
        assert code == 2
        assert "conflict" in capsys.readouterr().err


class TestAllSubcommandsSmoke:
    """Every subcommand runs to exit code 0 and prints parseable output
    (the golden list: any new subcommand must be added here)."""

    def test_subcommand_list_is_complete(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        assert sorted(subparsers.choices) == [
            "build",
            "client",
            "estimate",
            "generate",
            "recover",
            "serve",
            "stats",
            "workload",
        ]

    def test_every_subcommand_smokes(self, dataset_path, tmp_path, capsys):
        script = tmp_path / "s.txt"
        script.write_text("stats\n")
        runs = [
            (["generate", "paper-example", "--out", str(tmp_path / "p.xml")], "elements"),
            (["stats", str(dataset_path), "--grid", "6"], "Predicate"),
            (["estimate", str(dataset_path), "//article//author"], ""),
            (
                ["workload", str(dataset_path), "--count", "4", "--grid", "5"],
                "geo-mean q",
            ),
            (
                ["serve", str(dataset_path), "--script", str(script)],
                "stats nodes=",
            ),
            (
                ["build", str(dataset_path), "--out", str(tmp_path / "b.npz")],
                "predicate summaries",
            ),
            (
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--wal-dir",
                    str(tmp_path / "wal"),
                ],
                "checkpointed",
            ),
            (["recover", str(tmp_path / "wal"), "--verify"], "recovered"),
        ]
        for argv, needle in runs:
            assert main(argv) == 0, argv
            out = capsys.readouterr().out
            assert out.strip(), argv
            if needle:
                assert needle in out, argv


class TestServeDurable:
    def test_wal_dir_persists_updates_across_sessions(
        self, dataset_path, tmp_path, capsys
    ):
        wal_dir = tmp_path / "durable"
        first = tmp_path / "first.txt"
        first.write_text(
            "insert article <note><author>WAL</author></note>\n"
            "insert article <note><author>LOG</author></note>\n"
            "exact //note//author\n"
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(first),
                    "--wal-dir",
                    str(wal_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "exact 2" in out
        assert "checkpointed" in out

        # Second session recovers from the durable state: the inserted
        # notes are still there even though the data file never changed.
        second = tmp_path / "second.txt"
        second.write_text("exact //note//author\n")
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(second),
                    "--wal-dir",
                    str(wal_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "exact 2" in out

        assert main(["recover", str(wal_dir), "--verify", "--checkpoint"]) == 0
        out = capsys.readouterr().out
        assert "differential check passed" in out
        assert "checkpointed at lsn" in out

    def test_serve_retention_and_recover_compact(
        self, dataset_path, tmp_path, capsys
    ):
        """Serving with the default retention prunes + compacts after
        checkpoints; ``recover --compact`` reports and shrinks the log."""
        from repro.service.wal import LOG_NAME, list_checkpoints

        wal_dir = tmp_path / "compacted"
        script = tmp_path / "updates.txt"
        script.write_text(
            "\n".join(
                f"insert article <note><author>A{k}</author></note>"
                for k in range(6)
            )
            + "\n"
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--wal-dir",
                    str(wal_dir),
                    "--checkpoint-every",
                    "2",
                    "--keep-checkpoints",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Retention bounded the directory; the exit checkpoint compacted.
        lsns = list_checkpoints(wal_dir)
        assert lsns
        assert (wal_dir / LOG_NAME).exists()
        assert main(["recover", str(wal_dir), "--verify", "--compact"]) == 0
        out = capsys.readouterr().out
        assert "differential check passed" in out
        assert "compacted: log" in out
        # Still recoverable afterwards.
        assert main(["recover", str(wal_dir), "--verify"]) == 0

    def test_keep_checkpoints_validation(self, dataset_path, tmp_path):
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--wal-dir",
                    str(tmp_path / "w"),
                    "--keep-checkpoints",
                    "0",
                ]
            )
            == 2
        )
        assert (
            main(
                ["recover", str(tmp_path / "w"), "--keep-checkpoints", "0"]
            )
            == 2
        )

    def test_wal_dir_conflicts_with_warm_start(self, dataset_path, tmp_path):
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--wal-dir",
                    str(tmp_path / "w"),
                    "--warm-start",
                    str(tmp_path / "s.npz"),
                ]
            )
            == 2
        )

    def test_grid_flags_conflict_with_existing_wal_dir(
        self, dataset_path, tmp_path, capsys
    ):
        wal_dir = tmp_path / "durable"
        script = tmp_path / "noop.txt"
        script.write_text("stats\n")
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--wal-dir",
                    str(wal_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--wal-dir",
                    str(wal_dir),
                    "--grid",
                    "12",
                ]
            )
            == 2
        )

    def test_recover_on_empty_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "nothing")]) == 1
        err = capsys.readouterr().err
        assert "error:" in err


class TestWorkload:
    def test_prints_qerror_summary(self, dataset_path, capsys):
        assert (
            main(
                [
                    "workload",
                    str(dataset_path),
                    "--count",
                    "8",
                    "--grid",
                    "6",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "geo-mean q" in out
        assert "8 random twigs" in out


class TestBuild:
    def test_parallel_store_matches_serial_store(self, dataset_path, tmp_path, capsys):
        serial = tmp_path / "serial.npz"
        parallel = tmp_path / "parallel.npz"
        assert main(["build", str(dataset_path), "--out", str(serial)]) == 0
        assert (
            main(
                ["build", str(dataset_path), "--out", str(parallel), "--workers", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3 worker(s)" in out
        from repro.histograms.store import load_binary_summaries

        a = load_binary_summaries(serial)
        b = load_binary_summaries(parallel)
        assert a.fingerprint == b.fingerprint
        assert {r.tag for r in a.summaries} == {r.tag for r in b.summaries}
        by_tag = {r.tag: r for r in b.summaries}
        for row in a.summaries:
            twin = by_tag[row.tag]
            assert dict(row.position.cells()) == dict(twin.position.cells())
            has_coverage = row.coverage is not None
            assert has_coverage == (twin.coverage is not None)
            if has_coverage:
                assert dict(row.coverage.entries()) == dict(twin.coverage.entries())

    def test_built_store_warm_starts_serve(self, dataset_path, tmp_path, capsys):
        store = tmp_path / "warm.npz"
        assert (
            main(["build", str(dataset_path), "--out", str(store), "--workers", "2"])
            == 0
        )
        script = tmp_path / "script.txt"
        script.write_text("estimate //article//author\nstats\n")
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--warm-start",
                    str(store),
                    "--script",
                    str(script),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "estimate " in out and "stats nodes=" in out


class TestServeBatched:
    def test_updates_coalesce_into_batches(self, dataset_path, tmp_path, capsys):
        script = tmp_path / "batched.txt"
        script.write_text(
            "insert article <note><author>A</author></note>\n"
            "insert article <note><author>B</author></note>\n"
            "delete article 2\n"
            "estimate //article//author\n"
            "insert article <note><author>C</author></note>\n"
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--batch-size",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "queued insert (1/8)" in out
        # The read command forces a flush; end-of-stream flushes the rest.
        assert out.count("ok batch") == 2
        assert "batches=2" in out

    def test_batch_size_reached_flushes_immediately(
        self, dataset_path, tmp_path, capsys
    ):
        script = tmp_path / "full.txt"
        script.write_text(
            "insert article <note/>\n"
            "insert article <note/>\n"
            "stats\n"
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--batch-size",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # One response line per command: the queue-filling insert's
        # response IS the flush line.
        assert "queued insert (1/2)" in out
        assert "ok batch 2 ops" in out

    def test_bad_batch_size_rejected(self, dataset_path, capsys):
        assert main(["serve", str(dataset_path), "--batch-size", "0"]) == 2

    @pytest.mark.parametrize("trailing", [1, 2])
    def test_partial_trailing_batch_flushes_before_final_stats(
        self, dataset_path, tmp_path, capsys, trailing
    ):
        """N updates with N % batch-size != 0: the partial trailing
        batch must apply on EOF, before the session summary line."""
        batch_size = 3
        updates = batch_size + trailing  # never a multiple of batch_size
        script = tmp_path / f"trailing{trailing}.txt"
        script.write_text(
            "".join(
                f"insert article <note><author>T{k}</author></note>\n"
                for k in range(updates)
            )
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--batch-size",
                    str(batch_size),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"ok batch {batch_size} ops" in out
        assert f"ok batch {trailing} ops" in out
        # Every update made it into the session totals, and the flush
        # happened before the summary was printed.
        assert f"session inserts={updates}" in out
        assert "batches=2" in out
        flush_line = out.rindex(f"ok batch {trailing} ops")
        assert flush_line < out.index("session inserts=")

    def test_trailing_batch_flushes_on_quit_too(
        self, dataset_path, tmp_path, capsys
    ):
        script = tmp_path / "quit.txt"
        script.write_text(
            "insert article <note><author>Q</author></note>\n"
            "quit\n"
            "insert article <note><author>NEVER</author></note>\n"
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--batch-size",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ok batch 1 ops" in out  # the pre-quit insert applied
        assert "session inserts=1" in out  # the post-quit line never ran

    def test_queued_update_error_reports_and_keeps_serving(
        self, dataset_path, tmp_path, capsys
    ):
        script = tmp_path / "err.txt"
        script.write_text(
            "insert nosuchtag <x/>\nstats\n"
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--batch-size",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "error:" in out
        assert "stats nodes=" in out


class TestServeSaveFlush:
    """``save`` is a barrier: with updates still queued under
    ``--batch-size > 1``, the pending batch flushes *before* the
    statistics are persisted, so the saved store always reflects every
    acknowledged ``queued`` response."""

    def test_save_flushes_pending_batch_first(self, dataset_path, tmp_path, capsys):
        import numpy as np

        store1 = tmp_path / "before.npz"
        store2 = tmp_path / "after.npz"
        script = tmp_path / "saveflush.txt"
        script.write_text(
            f"save {store1}\n"
            "insert article <note><author>S1</author></note>\n"
            "insert article <note><author>S2</author></note>\n"
            f"save {store2}\n"
        )
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--batch-size",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "queued insert (1/8)" in out and "queued insert (2/8)" in out
        # The flush line precedes the second save's acknowledgment.
        flush_at = out.index("ok batch 2 ops")
        save2_at = out.rindex(f"-> {store2}")
        assert flush_at < save2_at
        assert "session inserts=2" in out
        # And the persisted statistics really contain the queued
        # inserts: the post-flush store differs from the pre-insert one.
        with np.load(store1, allow_pickle=True) as a, np.load(
            store2, allow_pickle=True
        ) as b:
            differs = sorted(a.files) != sorted(b.files) or any(
                not np.array_equal(a[key], b[key]) for key in a.files
            )
        assert differs


class TestServeMalformedInput:
    """Malformed raw input on the serve stream -- non-UTF-8 bytes and
    over-limit lines -- yields one ``error:`` line each and the loop
    keeps serving to a clean session summary."""

    def test_bad_bytes_and_oversized_lines_keep_serving(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.service.protocol import MAX_LINE_BYTES

        script = tmp_path / "hostile.bin"
        script.write_bytes(
            b"exact //article//author\n"
            + b"\xff\xfe garbage bytes\n"          # not UTF-8
            + b"x" * (MAX_LINE_BYTES + 64) + b"\n"  # over the line limit
            + b"   \t  \n"                           # bare whitespace: skipped
            + b"stats\n"
        )
        assert main(["serve", str(dataset_path), "--script", str(script)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        errors = [l for l in lines if l.startswith("error: ")]
        assert len(errors) == 2  # one per malformed line, none for blanks
        assert any("not valid UTF-8" in l for l in errors)
        assert any("exceeds the" in l for l in errors)
        # The stream survived both: the trailing command still answered,
        # and the session wound down normally.
        assert any(l.startswith("exact ") for l in lines)
        assert any(l.startswith("stats nodes=") for l in lines)
        assert "session inserts=0" in out


class TestServeListen:
    """``serve --listen`` + the ``client`` subcommand: a real TCP
    round trip between two processes speaking the serve language."""

    def test_client_round_trip_and_remote_shutdown(
        self, dataset_path, tmp_path, capsys
    ):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro",
                "serve",
                str(dataset_path),
                "--listen",
                "127.0.0.1:0",
                "--script",
                os.devnull,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            address = None
            for line in proc.stdout:
                if line.startswith("listening on "):
                    address = line.split()[-1]
                    break
            assert address, "server never announced its port"

            # First client: plain round trip, leaves the server up.
            script = tmp_path / "client1.txt"
            script.write_text(
                "estimate //article//author\n"
                "insert article <note><author>NET</author></note>\n"
                "exact //article//author\n"
                "stats\n"
            )
            assert main(["client", address, "--script", str(script)]) == 0
            out = capsys.readouterr().out
            assert any(l.startswith("estimate ") for l in out.splitlines())
            assert "ok insert 2 nodes" in out
            assert any(l.startswith("exact ") for l in out.splitlines())
            assert "stats nodes=" in out

            # Second client: batched updates travel as one atomic batch
            # request, then shuts the server down remotely.
            script2 = tmp_path / "client2.txt"
            script2.write_text(
                "insert article <note><author>B1</author></note>\n"
                "insert article <note><author>B2</author></note>\n"
                "shutdown\n"
            )
            assert (
                main(
                    ["client", address, "--script", str(script2), "--batch-size", "2"]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "queued insert (1/2)" in out
            assert "ok batch 2 ops" in out
            assert "ok shutdown" in out

            remainder = proc.stdout.read()
            assert proc.wait(timeout=30) == 0
            # Both clients' writes reached the one service.
            assert "session inserts=3" in remainder
        finally:
            proc.kill()
            proc.stdout.close()

    def test_sigterm_drains_checkpoints_and_exits_cleanly(
        self, dataset_path, tmp_path, capsys
    ):
        """Orchestrated stop: SIGTERM enters SHUTTING_DOWN exactly like
        a client-sent shutdown -- the pending work flushes, the WAL
        checkpoints, the session summary prints, and the process exits
        0 (not with the default signal death)."""
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        wal_dir = tmp_path / "wal"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro",
                "serve",
                str(dataset_path),
                "--listen",
                "127.0.0.1:0",
                "--script",
                os.devnull,
                "--wal-dir",
                str(wal_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            address = None
            for line in proc.stdout:
                if line.startswith("listening on "):
                    address = line.split()[-1]
                    break
            assert address, "server never announced its port"

            script = tmp_path / "client.txt"
            script.write_text(
                "insert article <note><author>SIG</author></note>\n"
            )
            assert main(["client", address, "--script", str(script)]) == 0
            assert "ok insert" in capsys.readouterr().out

            proc.send_signal(signal.SIGTERM)
            remainder = proc.stdout.read()
            assert proc.wait(timeout=30) == 0
            assert "session inserts=1" in remainder
            assert f"checkpointed {wal_dir}" in remainder
        finally:
            proc.kill()
            proc.stdout.close()

        # The checkpoint the signal path cut is recoverable: the write
        # that was acknowledged before the SIGTERM survives it.
        from repro.service.service import EstimationService

        recovered = EstimationService.open_durable(wal_dir)
        try:
            assert recovered.real_answer("//note//author") >= 1
        finally:
            recovered.close()

    def test_client_cannot_connect_is_exit_1(self, tmp_path, capsys):
        script = tmp_path / "noop.txt"
        script.write_text("stats\n")
        assert main(["client", "127.0.0.1:1", "--script", str(script)]) == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_client_malformed_address_is_exit_2(self, capsys):
        assert main(["client", "not-an-address"]) == 2
        assert "malformed --listen" in capsys.readouterr().err

    def test_serve_malformed_listen_is_exit_2(self, dataset_path, tmp_path, capsys):
        script = tmp_path / "s.txt"
        script.write_text("stats\n")
        assert (
            main(
                [
                    "serve",
                    str(dataset_path),
                    "--script",
                    str(script),
                    "--listen",
                    "nope",
                ]
            )
            == 2
        )
        assert "malformed --listen" in capsys.readouterr().err
