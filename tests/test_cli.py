"""CLI tests: generate / stats / estimate round trips."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dblp.xml"
    exit_code = main(
        ["generate", "dblp", "--out", str(path), "--seed", "3", "--scale", "0.02"]
    )
    assert exit_code == 0
    return path


class TestGenerate:
    def test_generates_parseable_xml(self, dataset_path, capsys):
        from repro.xmltree.parser import parse_document

        document = parse_document(dataset_path.read_text())
        assert document.root_element.tag == "dblp"

    def test_paper_example(self, tmp_path, capsys):
        path = tmp_path / "example.xml"
        assert main(["generate", "paper-example", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "31 elements" in out  # the Fig. 1 document's element count

    def test_orgchart_and_xmark(self, tmp_path):
        for dataset in ("orgchart", "xmark", "shakespeare", "treebank"):
            path = tmp_path / f"{dataset}.xml"
            assert main(["generate", dataset, "--out", str(path), "--seed", "4"]) == 0
            assert path.exists()


class TestStats:
    def test_prints_predicate_table(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path), "--grid", "8"]) == 0
        out = capsys.readouterr().out
        assert "article" in out
        assert "no overlap" in out
        assert "Hist Bytes" in out


class TestEstimate:
    def test_plain_estimate(self, dataset_path, capsys):
        assert main(["estimate", str(dataset_path), "//article//author"]) == 0
        value = float(capsys.readouterr().out.strip())
        assert value > 0

    def test_compare_table(self, dataset_path, capsys):
        assert (
            main(
                [
                    "estimate",
                    str(dataset_path),
                    "//article//author",
                    "--compare",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no-overlap" in out
        assert "exact" in out
        assert "naive" in out

    def test_equi_depth_grid_flag(self, dataset_path, capsys):
        assert (
            main(
                [
                    "estimate",
                    str(dataset_path),
                    "//article//cite",
                    "--grid-kind",
                    "equi-depth",
                ]
            )
            == 0
        )
        value = float(capsys.readouterr().out.strip())
        assert value >= 0

    def test_twig_query(self, dataset_path, capsys):
        assert (
            main(
                [
                    "estimate",
                    str(dataset_path),
                    "//article[.//cdrom]//author",
                    "--compare",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "twig" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestWorkload:
    def test_prints_qerror_summary(self, dataset_path, capsys):
        assert (
            main(
                [
                    "workload",
                    str(dataset_path),
                    "--count",
                    "8",
                    "--grid",
                    "6",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "geo-mean q" in out
        assert "8 random twigs" in out
