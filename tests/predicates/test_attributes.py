"""Attribute predicate tests."""

import pytest

from repro.predicates.attributes import (
    AttributeEqualsPredicate,
    AttributePrefixPredicate,
    AttributePresentPredicate,
)
from repro.xmltree.builder import element


class TestPresent:
    def test_matches(self):
        pred = AttributePresentPredicate("key")
        assert pred.matches(element("article", attributes={"key": "x"}))
        assert not pred.matches(element("article"))

    def test_tag_scope(self):
        pred = AttributePresentPredicate("key", tag="article")
        assert not pred.matches(element("book", attributes={"key": "x"}))

    def test_name(self):
        assert AttributePresentPredicate("key", tag="article").name == "article[@key]"


class TestEquals:
    def test_matches(self):
        pred = AttributeEqualsPredicate("mdate", "2010-01-01")
        assert pred.matches(element("a", attributes={"mdate": "2010-01-01"}))
        assert not pred.matches(element("a", attributes={"mdate": "2000-01-01"}))
        assert not pred.matches(element("a"))

    def test_value_identity(self):
        a = AttributeEqualsPredicate("k", "v")
        b = AttributeEqualsPredicate("k", "v")
        assert a == b and hash(a) == hash(b)
        assert a != AttributeEqualsPredicate("k", "w")


class TestPrefix:
    def test_matches(self):
        pred = AttributePrefixPredicate("key", "journals/")
        assert pred.matches(element("a", attributes={"key": "journals/tods/5"}))
        assert not pred.matches(element("a", attributes={"key": "conf/sigmod/5"}))
        assert not pred.matches(element("a"))


class TestOnDblpData:
    def test_key_predicates_select_records(self, dblp_tree):
        from repro.predicates.catalog import PredicateCatalog
        from repro.predicates.base import TagPredicate

        catalog = PredicateCatalog(dblp_tree)
        with_key = catalog.stats(AttributePresentPredicate("key"))
        articles = catalog.stats(TagPredicate("article"))
        books = catalog.stats(TagPredicate("book"))
        inproc = catalog.stats(TagPredicate("inproceedings"))
        # Every record (and only records) carries a key.
        assert with_key.count == articles.count + books.count + inproc.count
        assert with_key.no_overlap

    def test_journal_prefix_equals_articles(self, dblp_tree):
        from repro.predicates.catalog import PredicateCatalog
        from repro.predicates.base import TagPredicate

        catalog = PredicateCatalog(dblp_tree)
        journal_keys = catalog.stats(AttributePrefixPredicate("key", "journals/"))
        articles = catalog.stats(TagPredicate("article"))
        assert journal_keys.count == articles.count

    def test_estimation_over_attribute_predicate(self, dblp_estimator):
        """Attribute predicates flow through the estimator like any
        other predicate -- the paper's point about compound/content
        predicates extends to them unchanged."""
        from repro.predicates.base import TagPredicate

        pred = AttributePrefixPredicate("key", "journals/")
        author = TagPredicate("author")
        estimate = dblp_estimator.estimate_pair(pred, author, method="auto")
        from repro.query.matcher import count_pairs

        real = count_pairs(
            dblp_estimator.tree,
            dblp_estimator.catalog.stats(pred).node_indices,
            dblp_estimator.catalog.stats(author).node_indices,
        )
        assert estimate.value == pytest.approx(real, rel=0.3)
