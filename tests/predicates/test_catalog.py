"""Predicate catalog unit tests, including no-overlap detection."""

import numpy as np

from repro.labeling import label_document
from repro.predicates.base import ContentPrefixPredicate, TagPredicate
from repro.predicates.catalog import PredicateCatalog, detect_no_overlap
from repro.xmltree.builder import element
from repro.xmltree.tree import Document


def tree_of(root):
    doc = Document()
    doc.append(root)
    return label_document(doc)


class TestRegistration:
    def test_register_counts_nodes(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        stats = catalog.register(TagPredicate("faculty"))
        assert stats.count == 3
        assert len(stats.node_indices) == 3

    def test_registration_is_idempotent(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        first = catalog.register(TagPredicate("TA"))
        second = catalog.register(TagPredicate("TA"))
        assert first is second
        assert len(catalog) == 1

    def test_stats_auto_registers(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        stats = catalog.stats(TagPredicate("RA"))
        assert stats.count == 10
        assert TagPredicate("RA") in catalog

    def test_register_all_tags(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        all_stats = catalog.register_all_tags()
        tags = sorted(s.predicate.name for s in all_stats)
        assert tags == [
            "RA",
            "TA",
            "department",
            "faculty",
            "lecturer",
            "name",
            "research_scientist",
            "secretary",
            "staff",
        ]
        by_name = {s.predicate.name: s.count for s in all_stats}
        assert by_name["TA"] == 5
        assert by_name["name"] == 6
        assert by_name["department"] == 1

    def test_content_predicate_scan(self, dblp_tree):
        catalog = PredicateCatalog(dblp_tree)
        stats = catalog.stats(ContentPrefixPredicate("conf", tag="cite"))
        assert stats.count > 0
        # Every matched element really is a conf citation.
        for element_node in catalog.matching_elements(
            ContentPrefixPredicate("conf", tag="cite")
        ):
            assert element_node.tag == "cite"
            assert element_node.text_content().startswith("conf")

    def test_matching_elements_in_document_order(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        elements = catalog.matching_elements(TagPredicate("TA"))
        starts = [paper_tree.start[paper_tree.index_of(e)] for e in elements]
        assert starts == sorted(starts)


class TestNoOverlapDetection:
    def test_flat_tags_are_no_overlap(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        for tag in ("faculty", "TA", "RA", "name"):
            assert catalog.stats(TagPredicate(tag)).no_overlap, tag

    def test_nested_tag_is_overlap(self):
        tree = tree_of(
            element("a", element("b", element("a", element("b"))))
        )
        catalog = PredicateCatalog(tree)
        assert not catalog.stats(TagPredicate("a")).no_overlap
        assert not catalog.stats(TagPredicate("b")).no_overlap

    def test_empty_predicate_is_no_overlap(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        assert catalog.stats(TagPredicate("nonexistent")).no_overlap

    def test_singleton_is_no_overlap(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        assert catalog.stats(TagPredicate("department")).no_overlap

    def test_detect_no_overlap_non_adjacent_nesting(self):
        # x contains y contains x: the two x nodes are not start-adjacent
        # among x matches?  They are; craft deeper: x (z (x)) x -- the
        # detector must still catch nesting via the running max end.
        tree = tree_of(
            element(
                "r",
                element("x", element("z", element("x"))),
                element("x"),
            )
        )
        catalog = PredicateCatalog(tree)
        assert not catalog.stats(TagPredicate("x")).no_overlap

    def test_detect_no_overlap_direct(self):
        tree = tree_of(element("r", element("x"), element("x")))
        indices = np.array([1, 2], dtype=np.int64)
        assert detect_no_overlap(tree, indices)

    def test_schema_assertion_overrides(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        stats = catalog.register(TagPredicate("TA"), schema_no_overlap=False)
        assert stats.no_overlap  # data says no-overlap
        assert not stats.effective_no_overlap  # schema assertion wins

    def test_orgchart_overlap_mix(self, orgchart_tree):
        """The paper's Table 3: manager/department overlap, the rest not."""
        catalog = PredicateCatalog(orgchart_tree)
        assert not catalog.stats(TagPredicate("manager")).no_overlap
        assert not catalog.stats(TagPredicate("department")).no_overlap
        assert catalog.stats(TagPredicate("employee")).no_overlap
        assert catalog.stats(TagPredicate("email")).no_overlap
        assert catalog.stats(TagPredicate("name")).no_overlap
