"""Base predicate unit tests."""

import pytest

from repro.predicates.base import (
    ContentEqualsPredicate,
    ContentPrefixPredicate,
    ContentSuffixPredicate,
    NumericRangePredicate,
    TagPredicate,
    TruePredicate,
)
from repro.xmltree.builder import element


class TestTagPredicate:
    def test_matches(self):
        pred = TagPredicate("faculty")
        assert pred.matches(element("faculty"))
        assert not pred.matches(element("staff"))

    def test_name_and_description(self):
        pred = TagPredicate("article")
        assert pred.name == "article"
        assert pred.description() == 'element tag = "article"'

    def test_value_equality(self):
        assert TagPredicate("a") == TagPredicate("a")
        assert TagPredicate("a") != TagPredicate("b")
        assert hash(TagPredicate("a")) == hash(TagPredicate("a"))

    def test_usable_as_dict_key(self):
        d = {TagPredicate("a"): 1}
        assert d[TagPredicate("a")] == 1


class TestTruePredicate:
    def test_matches_everything(self):
        pred = TruePredicate()
        assert pred.matches(element("anything"))
        assert pred.matches(element("x", "text"))

    def test_name(self):
        assert TruePredicate().name == "TRUE"


class TestContentPredicates:
    def test_equals(self):
        pred = ContentEqualsPredicate("1999")
        assert pred.matches(element("year", "1999"))
        assert not pred.matches(element("year", "2000"))

    def test_equals_with_tag_scope(self):
        pred = ContentEqualsPredicate("1999", tag="year")
        assert pred.matches(element("year", "1999"))
        assert not pred.matches(element("volume", "1999"))

    def test_equals_strips_whitespace(self):
        pred = ContentEqualsPredicate("1999")
        assert pred.matches(element("year", "  1999\n"))

    def test_prefix(self):
        pred = ContentPrefixPredicate("conf")
        assert pred.matches(element("cite", "conf/sigmod/99"))
        assert not pred.matches(element("cite", "journal/tods/12"))

    def test_prefix_name_mirrors_paper(self):
        # The paper's Table 1 names the predicate just "conf".
        assert ContentPrefixPredicate("conf").name == "conf"

    def test_suffix(self):
        pred = ContentSuffixPredicate("/99")
        assert pred.matches(element("cite", "conf/sigmod/99"))
        assert not pred.matches(element("cite", "conf/sigmod/98"))

    def test_only_own_text_considered(self):
        # Content predicates look at the element's immediate text, not
        # descendants' text.
        nested = element("a", element("b", "conf/x"))
        assert not ContentPrefixPredicate("conf").matches(nested)

    def test_equality_distinguishes_kind(self):
        assert ContentPrefixPredicate("x") != ContentSuffixPredicate("x")
        assert ContentPrefixPredicate("x") != ContentEqualsPredicate("x")


class TestNumericRangePredicate:
    def test_matches_in_range(self):
        pred = NumericRangePredicate(1990, 1999, tag="year")
        assert pred.matches(element("year", "1995"))
        assert pred.matches(element("year", "1990"))
        assert pred.matches(element("year", "1999"))
        assert not pred.matches(element("year", "1989"))
        assert not pred.matches(element("year", "2000"))

    def test_non_numeric_text(self):
        pred = NumericRangePredicate(1990, 1999)
        assert not pred.matches(element("year", "noise"))
        assert not pred.matches(element("year"))

    def test_label_overrides_name(self):
        pred = NumericRangePredicate(1990, 1999, tag="year", label="1990's")
        assert pred.name == "1990's"

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty range"):
            NumericRangePredicate(5, 4)

    def test_tag_scope(self):
        pred = NumericRangePredicate(1, 10, tag="volume")
        assert pred.matches(element("volume", "5"))
        assert not pred.matches(element("year", "5"))
