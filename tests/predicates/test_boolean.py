"""Boolean predicate composition unit tests."""

import pytest

from repro.predicates.base import ContentPrefixPredicate, TagPredicate
from repro.predicates.boolean import AndPredicate, NotPredicate, OrPredicate
from repro.xmltree.builder import element


class TestAnd:
    def test_matches_conjunction(self):
        pred = AndPredicate(TagPredicate("cite"), ContentPrefixPredicate("conf"))
        assert pred.matches(element("cite", "conf/x"))
        assert not pred.matches(element("cite", "journal/x"))
        assert not pred.matches(element("url", "conf/x"))

    def test_needs_two_parts(self):
        with pytest.raises(ValueError):
            AndPredicate(TagPredicate("a"))

    def test_name(self):
        pred = AndPredicate(TagPredicate("a"), TagPredicate("b"))
        assert pred.name == "(a AND b)"

    def test_equality(self):
        a = AndPredicate(TagPredicate("a"), TagPredicate("b"))
        b = AndPredicate(TagPredicate("a"), TagPredicate("b"))
        c = AndPredicate(TagPredicate("b"), TagPredicate("a"))
        assert a == b
        assert a != c  # order matters in the key; fine for caching


class TestOr:
    def test_matches_disjunction(self):
        pred = OrPredicate(TagPredicate("TA"), TagPredicate("RA"))
        assert pred.matches(element("TA"))
        assert pred.matches(element("RA"))
        assert not pred.matches(element("name"))

    def test_label(self):
        pred = OrPredicate(
            TagPredicate("a"), TagPredicate("b"), label="either"
        )
        assert pred.name == "either"

    def test_three_way(self):
        pred = OrPredicate(
            TagPredicate("a"), TagPredicate("b"), TagPredicate("c")
        )
        assert pred.matches(element("c"))


class TestNot:
    def test_matches_negation(self):
        pred = NotPredicate(TagPredicate("TA"))
        assert pred.matches(element("RA"))
        assert not pred.matches(element("TA"))

    def test_name(self):
        assert NotPredicate(TagPredicate("TA")).name == "NOT TA"

    def test_double_negation_matches_original(self):
        inner = TagPredicate("x")
        double = NotPredicate(NotPredicate(inner))
        assert double.matches(element("x"))
        assert not double.matches(element("y"))


class TestComposition:
    def test_decade_predicate_shape(self):
        """The paper's "1990's" compound: OR of ten year predicates."""
        from repro.predicates.base import ContentEqualsPredicate

        years = [
            ContentEqualsPredicate(str(y), tag="year") for y in range(1990, 2000)
        ]
        decade = OrPredicate(*years, label="1990's")
        assert decade.matches(element("year", "1995"))
        assert not decade.matches(element("year", "1989"))
        assert decade.name == "1990's"
