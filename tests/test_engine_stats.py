"""Execution statistics unit tests."""

from repro.engine.executor import ExecutionStats, StepStats


class TestStepStats:
    def test_work_is_sum_of_io(self):
        step = StepStats(left_rows=10, right_nodes=5, output_rows=7)
        assert step.work == 22


class TestExecutionStats:
    def test_total_work(self):
        stats = ExecutionStats(
            steps=[
                StepStats(1, 2, 3),
                StepStats(10, 20, 30),
            ]
        )
        assert stats.total_work == 66

    def test_peak_intermediate(self):
        stats = ExecutionStats(
            steps=[StepStats(1, 1, 5), StepStats(5, 1, 2)]
        )
        assert stats.peak_intermediate == 5

    def test_empty(self):
        stats = ExecutionStats()
        assert stats.total_work == 0
        assert stats.peak_intermediate == 0

    def test_stats_match_table_sizes(self, paper_tree):
        """Recorded output_rows must equal actual binding table growth."""
        from repro.engine import PlanExecutor
        from repro.optimizer.plans import enumerate_plans
        from repro.predicates.catalog import PredicateCatalog
        from repro.query.xpath import parse_xpath

        pattern = parse_xpath("//department//faculty[.//TA]//RA")
        executor = PlanExecutor(paper_tree, PredicateCatalog(paper_tree))
        for plan in enumerate_plans(pattern):
            table, stats = executor.execute(pattern, plan)
            assert stats.steps[-1].output_rows == len(table)
            assert len(stats.steps) == len(plan.steps)
