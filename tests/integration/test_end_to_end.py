"""End-to-end integration: text -> parse -> label -> estimate -> verify."""

import pytest

from repro import AnswerSizeEstimator, label_document, label_forest, parse_document
from repro.datasets import generate_dblp
from repro.histograms.storage import load_histogram, save_histogram
from repro.predicates.base import TagPredicate
from repro.xmltree.writer import write_document


class TestFromRawText:
    XML = """
    <library>
      <shelf><book><title>A</title><author>X</author><author>Y</author></book></shelf>
      <shelf><book><title>B</title><author>Z</author></book>
             <book><title>C</title></book></shelf>
    </library>
    """

    def test_pipeline(self):
        tree = label_document(parse_document(self.XML))
        estimator = AnswerSizeEstimator(tree, grid_size=4)
        real = estimator.real_answer("//book//author")
        estimate = estimator.estimate("//book//author").value
        assert real == 3
        assert 0 < estimate <= 6

    def test_multi_document_database(self):
        doc1 = parse_document("<a><b/><b/></a>")
        doc2 = parse_document("<a><b/></a>")
        tree = label_forest([doc1, doc2])
        estimator = AnswerSizeEstimator(tree, grid_size=4)
        assert estimator.real_answer("//a//b") == 3
        # Cross-document pairs must not exist.
        assert estimator.catalog.stats(TagPredicate("a")).count == 2


class TestSerializationRoundTripThroughDisk:
    def test_generated_dataset_survives_disk(self, tmp_path):
        doc = generate_dblp(seed=5, scale=0.02)
        path = tmp_path / "dblp.xml"
        path.write_text(write_document(doc, indent=1))
        reparsed = parse_document(path.read_text())
        tree_a = label_document(doc)
        tree_b = label_document(reparsed)
        assert len(tree_a) == len(tree_b)

        est_a = AnswerSizeEstimator(tree_a, grid_size=8)
        est_b = AnswerSizeEstimator(tree_b, grid_size=8)
        for query in ("//article//author", "//article//cite"):
            assert est_a.real_answer(query) == est_b.real_answer(query)
            assert est_a.estimate(query).value == pytest.approx(
                est_b.estimate(query).value, rel=1e-9
            )

    def test_histograms_survive_disk(self, dblp_estimator, tmp_path):
        predicate = TagPredicate("article")
        hist = dblp_estimator.position_histogram(predicate)
        coverage = dblp_estimator.coverage_histogram(predicate)
        assert coverage is not None
        save_histogram(hist, tmp_path / "h.json")
        save_histogram(coverage, tmp_path / "c.json")
        hist2 = load_histogram(tmp_path / "h.json")
        coverage2 = load_histogram(tmp_path / "c.json")
        from repro.estimation.nooverlap import no_overlap_estimate

        desc = dblp_estimator.position_histogram(TagPredicate("author"))
        original = no_overlap_estimate(hist, coverage, desc).value
        reloaded = no_overlap_estimate(hist2, coverage2, desc).value
        assert reloaded == pytest.approx(original, rel=1e-12)


class TestFailureModes:
    def test_unknown_tag_estimates_zero(self, dblp_estimator):
        assert dblp_estimator.estimate("//ghost//author").value == 0.0
        assert dblp_estimator.real_answer("//ghost//author") == 0

    def test_inverted_query_estimates_near_zero(self, dblp_estimator):
        """author//article can never match (authors are leaves)."""
        real = dblp_estimator.real_answer("//author//article")
        estimate = dblp_estimator.estimate("//author//article").value
        assert real == 0
        assert estimate <= 1.0

    def test_self_pair_no_overlap_tag(self, dblp_estimator):
        real = dblp_estimator.real_answer("//article//article")
        estimate = dblp_estimator.estimate("//article//article").value
        assert real == 0
        # pH-join assigns some mass to within-cell self pairs; it must
        # stay small relative to cardinality.
        count = dblp_estimator.catalog.stats(TagPredicate("article")).count
        assert estimate < count
