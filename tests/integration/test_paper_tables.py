"""Integration tests pinning the paper's qualitative results.

Each test corresponds to a table/figure claim from the evaluation
section; absolute numbers differ (our data sets are regenerated), but
the orderings, ratios and regimes the paper reports must hold.
"""

import math

import pytest

from repro.predicates.base import TagPredicate
from repro.workloads import DBLP_SIMPLE_QUERIES, ORGCHART_SIMPLE_QUERIES


def log_error(estimate: float, real: float) -> float:
    if real == 0 or estimate <= 0:
        return float("inf") if estimate != real else 0.0
    return abs(math.log10(estimate / real))


class TestTable2Claims:
    """DBLP simple queries: naive >> overlap > no-overlap ~= real."""

    @pytest.mark.parametrize("anc,desc", DBLP_SIMPLE_QUERIES)
    def test_estimator_ordering(self, dblp_estimator, anc, desc):
        pa, pd = TagPredicate(anc), TagPredicate(desc)
        real = dblp_estimator.real_answer(f"//{anc}//{desc}")
        naive = dblp_estimator.estimate_pair(pa, pd, method="naive").value
        overlap = dblp_estimator.estimate_pair(pa, pd, method="ph-join").value
        no_overlap = dblp_estimator.estimate_pair(pa, pd, method="no-overlap").value

        assert log_error(no_overlap, real) <= log_error(overlap, real)
        assert log_error(overlap, real) < log_error(naive, real)

    @pytest.mark.parametrize("anc,desc", DBLP_SIMPLE_QUERIES)
    def test_no_overlap_within_25_percent(self, dblp_estimator, anc, desc):
        pa, pd = TagPredicate(anc), TagPredicate(desc)
        real = dblp_estimator.real_answer(f"//{anc}//{desc}")
        estimate = dblp_estimator.estimate_pair(pa, pd, method="no-overlap").value
        if real >= 20:
            assert estimate == pytest.approx(real, rel=0.25)
        else:
            # Tiny answers (book//cdrom regime): stay within a handful.
            assert abs(estimate - real) <= max(5.0, real)

    @pytest.mark.parametrize("anc,desc", DBLP_SIMPLE_QUERIES)
    def test_upper_bound_column(self, dblp_estimator, anc, desc):
        """"Desc Num" column: with the no-overlap schema fact, the bound
        is the descendant count and the real answer respects it."""
        pd = TagPredicate(desc)
        real = dblp_estimator.real_answer(f"//{anc}//{desc}")
        bound = dblp_estimator.estimate_pair(
            TagPredicate(anc), pd, method="upper-bound"
        ).value
        assert bound == dblp_estimator.catalog.stats(pd).count
        assert real <= bound

    def test_estimation_times_sub_millisecond_scale(self, dblp_estimator):
        """Paper: "a few tenths of a millisecond".  Warm caches, then
        check both estimators stay within an order of magnitude of that
        on CI hardware."""
        pa, pd = TagPredicate("article"), TagPredicate("author")
        dblp_estimator.position_histogram(pa)
        dblp_estimator.position_histogram(pd)
        dblp_estimator.coverage_histogram(pa)
        for method in ("ph-join", "no-overlap"):
            times = [
                dblp_estimator.estimate_pair(pa, pd, method=method).elapsed_seconds
                for _ in range(5)
            ]
            assert min(t for t in times if t is not None) < 0.005, method


class TestTable4Claims:
    """Synthetic orgchart: overlap ancestors get good pH-join estimates;
    no-overlap ancestors get much better no-overlap estimates."""

    @pytest.mark.parametrize("anc,desc", ORGCHART_SIMPLE_QUERIES)
    def test_auto_estimate_quality(self, orgchart_estimator, anc, desc):
        real = orgchart_estimator.real_answer(f"//{anc}//{desc}")
        estimate = orgchart_estimator.estimate(f"//{anc}//{desc}").value
        assert log_error(estimate, real) <= math.log10(2.5)

    def test_no_overlap_na_for_overlap_ancestors(self, orgchart_estimator):
        """The paper's N/A entries: manager and department rows have no
        no-overlap estimate."""
        for anc in ("manager", "department"):
            assert not orgchart_estimator.is_no_overlap(TagPredicate(anc))

    @pytest.mark.parametrize("anc,desc", [("employee", "name"), ("employee", "email")])
    def test_no_overlap_beats_ph_join_on_employee_rows(
        self, orgchart_estimator, anc, desc
    ):
        pa, pd = TagPredicate(anc), TagPredicate(desc)
        real = orgchart_estimator.real_answer(f"//{anc}//{desc}")
        overlap = orgchart_estimator.estimate_pair(pa, pd, method="ph-join").value
        no_overlap = orgchart_estimator.estimate_pair(
            pa, pd, method="no-overlap"
        ).value
        assert log_error(no_overlap, real) < log_error(overlap, real)


class TestFig11Fig12Claims:
    """Storage grows linearly with grid size; accuracy converges to 1."""

    def test_fig11_overlap_pair_accuracy_converges(self, orgchart_estimator):
        from repro.estimation import AnswerSizeEstimator

        real = orgchart_estimator.real_answer("//department//email")
        ratios = {}
        for g in (2, 10, 30):
            estimator = AnswerSizeEstimator(orgchart_estimator.tree, grid_size=g)
            estimate = estimator.estimate_pair(
                TagPredicate("department"), TagPredicate("email"), method="ph-join"
            ).value
            ratios[g] = estimate / real
        assert abs(ratios[30] - 1.0) <= abs(ratios[2] - 1.0) + 0.05
        assert 0.5 <= ratios[30] <= 1.6

    def test_fig12_no_overlap_pair_accuracy_converges(self, dblp_estimator):
        from repro.estimation import AnswerSizeEstimator

        real = dblp_estimator.real_answer("//article//cdrom")
        ratios = {}
        for g in (2, 10, 30):
            estimator = AnswerSizeEstimator(dblp_estimator.tree, grid_size=g)
            estimate = estimator.estimate_pair(
                TagPredicate("article"), TagPredicate("cdrom"), method="no-overlap"
            ).value
            ratios[g] = estimate / real
        assert 0.7 <= ratios[30] <= 1.3
        assert abs(ratios[30] - 1.0) <= abs(ratios[2] - 1.0) + 0.05

    def test_storage_linear_in_grid(self, dblp_estimator):
        from repro.estimation import AnswerSizeEstimator

        bytes_by_g = {}
        for g in (10, 20, 40):
            estimator = AnswerSizeEstimator(dblp_estimator.tree, grid_size=g)
            report = estimator.storage_bytes(TagPredicate("article"))
            bytes_by_g[g] = report["position"] + report["coverage"]
        assert bytes_by_g[40] <= 5 * bytes_by_g[10]


class TestHeadlineExample:
    """The running faculty//TA example, end to end."""

    def test_full_story(self, paper_estimator):
        fac, ta = TagPredicate("faculty"), TagPredicate("TA")
        naive = paper_estimator.estimate_pair(fac, ta, method="naive").value
        bound = paper_estimator.estimate_pair(fac, ta, method="upper-bound").value
        overlap = paper_estimator.estimate_pair(fac, ta, method="ph-join").value
        no_overlap = paper_estimator.estimate_pair(fac, ta, method="no-overlap").value
        real = paper_estimator.real_answer("//faculty//TA")

        assert naive == 15.0           # paper: 15
        assert bound == 5.0            # paper: 5
        assert 0.2 <= overlap <= 1.5   # paper: 0.6
        assert 1.5 <= no_overlap <= 2.4  # paper: 1.9
        assert real == 2               # paper: 2
