"""Seeded-random agreement: columnar operators vs. loop references.

The vectorized pair enumeration, the columnar binding-table expansion,
and the columnar plan executor must agree *exactly* (integer-for-
integer) with the stack-tree loop operators, the quadratic nested-loop
reference, and the independent DP match counter, on randomly grown
labeled forests -- for both the ``//`` and ``/`` axes.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine.bindings import BindingTable
from repro.engine.executor import PlanExecutor
from repro.labeling.interval import LabeledTree, label_forest
from repro.optimizer.plans import enumerate_plans
from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog
from repro.query.matcher import count_matches
from repro.query.pattern import Axis, PatternNode, PatternTree
from repro.query.structjoin import (
    nested_loop_join_count,
    stack_tree_join,
    structural_join_pairs,
    vectorized_join_count,
    vectorized_join_pairs,
)
from repro.xmltree.tree import Document, Element

TAGS = ("a", "b", "c", "d")


def random_forest(seed: int, max_nodes: int = 120) -> LabeledTree:
    """Grow a random multi-document forest with recursive tag reuse."""
    rng = random.Random(seed)
    budget = rng.randint(5, max_nodes)

    def grow(depth: int) -> Element:
        nonlocal budget
        element = Element(rng.choice(TAGS))
        while budget > 0 and depth < 8 and rng.random() < 0.6:
            budget -= 1
            element.append(grow(depth + 1))
        return element

    documents = []
    for _ in range(rng.randint(1, 3)):
        document = Document()
        budget -= 1
        document.append(grow(1))
        documents.append(document)
    tree = label_forest(documents)
    tree.validate()
    return tree


def pair_set(anc: np.ndarray, desc: np.ndarray) -> set[tuple[int, int]]:
    return set(zip(anc.tolist(), desc.tolist()))


@pytest.mark.parametrize("seed", range(25))
class TestPairEnumeration:
    def tag_lists(self, tree: LabeledTree, seed: int):
        rng = random.Random(seed * 31 + 7)
        catalog = PredicateCatalog(tree)
        anc_tag, desc_tag = rng.choice(TAGS), rng.choice(TAGS)
        return (
            catalog.stats(TagPredicate(anc_tag)).node_indices,
            catalog.stats(TagPredicate(desc_tag)).node_indices,
        )

    def test_descendant_axis(self, seed):
        tree = random_forest(seed)
        anc, desc = self.tag_lists(tree, seed)
        count = vectorized_join_count(tree, anc, desc)
        assert count == stack_tree_join(tree, anc, desc)
        assert count == nested_loop_join_count(tree, anc, desc)
        pair_anc, pair_desc = vectorized_join_pairs(tree, anc, desc)
        assert len(pair_anc) == len(pair_desc) == count
        assert pair_set(pair_anc, pair_desc) == set(
            structural_join_pairs(tree, anc, desc)
        )

    def test_child_axis(self, seed):
        tree = random_forest(seed)
        anc, desc = self.tag_lists(tree, seed)
        count = vectorized_join_count(tree, anc, desc, axis=Axis.CHILD)
        assert count == stack_tree_join(tree, anc, desc, axis=Axis.CHILD)
        pair_anc, pair_desc = vectorized_join_pairs(tree, anc, desc, axis=Axis.CHILD)
        assert len(pair_anc) == count
        assert pair_set(pair_anc, pair_desc) == set(
            structural_join_pairs(tree, anc, desc, axis=Axis.CHILD)
        )


def random_pattern(seed: int) -> PatternTree:
    """A random 2-4 node twig over the forest tags, mixing both axes."""
    rng = random.Random(seed * 17 + 3)
    root = PatternNode(TagPredicate(rng.choice(TAGS)))
    attach_points = [root]
    for _ in range(rng.randint(1, 3)):
        parent = rng.choice(attach_points)
        axis = Axis.CHILD if rng.random() < 0.4 else Axis.DESCENDANT
        attach_points.append(parent.add_child(TagPredicate(rng.choice(TAGS)), axis))
    return PatternTree(root)


@pytest.mark.parametrize("seed", range(25))
def test_executor_agrees_with_dp_counter(seed):
    tree = random_forest(seed)
    pattern = random_pattern(seed)
    expected = count_matches(tree, pattern)
    executor = PlanExecutor(tree, PredicateCatalog(tree))
    for plan in enumerate_plans(pattern):
        table, stats = executor.execute(pattern, plan)
        assert len(table) == expected, str(plan)
        # Every binding row must satisfy the structural axes exactly.
        nodes = pattern.nodes()
        for qidx, qnode in enumerate(nodes):
            if qnode.parent is None:
                continue
            parent_idx = nodes.index(qnode.parent)
            child_col = table.column_array(qidx)
            parent_col = table.column_array(parent_idx)
            if qnode.axis is Axis.CHILD:
                assert np.array_equal(tree.parent_index[child_col], parent_col)
            else:
                assert np.all(tree.start[parent_col] < tree.start[child_col])
                assert np.all(tree.end[child_col] < tree.end[parent_col])


@pytest.mark.parametrize("seed", range(10))
def test_expand_pairs_matches_dict_expand(seed):
    rng = random.Random(seed)
    values = [rng.randint(0, 9) for _ in range(rng.randint(0, 20))]
    table = BindingTable.single_column(0, values)
    matches = {
        v: [rng.randint(100, 120) for _ in range(rng.randint(0, 3))]
        for v in range(10)
    }
    keys = np.asarray([k for k, vs in matches.items() for _ in vs], dtype=np.int64)
    partners = np.asarray([p for vs in matches.values() for p in vs], dtype=np.int64)
    via_pairs = table.expand_pairs(0, 1, keys, partners)
    via_dict = table.expand(0, 1, matches)
    assert sorted(via_pairs.rows) == sorted(via_dict.rows)
    # Loop reference: row-major inner join.
    reference = sorted(
        (v, p) for v in values for p in matches.get(v, ())
    )
    assert sorted(via_pairs.rows) == reference


@pytest.mark.parametrize("seed", range(10))
def test_chunked_coverage_build_is_chunk_invariant(seed):
    """Forcing tiny pair chunks must not change the coverage entries."""
    from repro.histograms.coverage import build_coverage_histogram
    from repro.histograms.grid import GridSpec
    from repro.histograms.truehist import build_true_histogram

    tree = random_forest(seed)
    grid = GridSpec(4, tree.max_label)
    true_hist = build_true_histogram(tree, grid)
    catalog = PredicateCatalog(tree)
    indices = catalog.stats(TagPredicate("a")).node_indices
    one_shot = build_coverage_histogram(tree, indices, true_hist)
    chunked = build_coverage_histogram(tree, indices, true_hist, chunk_pairs=3)
    assert dict(one_shot.entries()) == dict(chunked.entries())
    # Public API must be input-order-insensitive, including when the
    # chunk-flush path is active.
    shuffled = np.array(indices, copy=True)
    random.Random(seed).shuffle(shuffled)
    reordered = build_coverage_histogram(tree, shuffled, true_hist, chunk_pairs=3)
    assert dict(one_shot.entries()) == dict(reordered.entries())
