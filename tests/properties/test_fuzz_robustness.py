"""Fuzz robustness: hostile inputs must fail cleanly, never crash.

The parser, DTD parser, and XPath parser are exposed to user input; on
arbitrary text they must either succeed or raise their documented
exception types -- never IndexError/KeyError/RecursionError or hangs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.parser import DTDParseError, parse_dtd
from repro.query.xpath import XPathSyntaxError, parse_xpath
from repro.xmltree.errors import XMLError
from repro.xmltree.parser import parse_document

# Text biased toward XML-ish structure so the fuzz reaches deep paths.
xmlish = st.text(
    alphabet=st.sampled_from(list("<>/=&;!?[]()'\"abcDEF123 \t\n-")), max_size=120
)


@given(xmlish)
@settings(max_examples=300, deadline=None)
def test_xml_parser_never_crashes(text):
    try:
        parse_document(text)
    except XMLError:
        pass


@given(st.text(max_size=80))
@settings(max_examples=200, deadline=None)
def test_xml_parser_arbitrary_unicode(text):
    try:
        parse_document(text)
    except XMLError:
        pass


dtdish = st.text(
    alphabet=st.sampled_from(list("<>!ELMNT()|,*+?#PCDAabc \n")), max_size=120
)


@given(dtdish)
@settings(max_examples=300, deadline=None)
def test_dtd_parser_never_crashes(text):
    try:
        parse_dtd(text)
    except DTDParseError:
        pass


xpathish = st.text(
    alphabet=st.sampled_from(list("/[]().*=\"'abcXYZ123 -_")), max_size=60
)


@given(xpathish)
@settings(max_examples=300, deadline=None)
def test_xpath_parser_never_crashes(text):
    try:
        parse_xpath(text)
    except XPathSyntaxError:
        pass


@given(xmlish)
@settings(max_examples=100, deadline=None)
def test_successful_parses_are_queryable(text):
    """Anything that parses must label and estimate without error."""
    try:
        document = parse_document(text)
    except XMLError:
        return
    from repro.estimation import AnswerSizeEstimator
    from repro.labeling import label_document

    tree = label_document(document)
    tree.validate()
    estimator = AnswerSizeEstimator(tree, grid_size=3)
    root_tag = document.root_element.tag
    value = estimator.estimate(f"//{root_tag}//{root_tag}").value
    assert value >= 0.0
