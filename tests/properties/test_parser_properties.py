"""Property-based tests of the XML substrate (hypothesis round-trips)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.builder import element
from repro.xmltree.parser import parse_fragment
from repro.xmltree.tokenizer import resolve_references
from repro.xmltree.tree import Element, Text
from repro.xmltree.writer import escape_attribute, escape_text, write_node

# Text without control characters; the writer escapes <, >, &.
safe_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
    ),
    min_size=0,
    max_size=40,
)

tag_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,10}", fullmatch=True)


@st.composite
def random_elements(draw, max_depth=3):
    def build(depth: int) -> Element:
        node = element(draw(tag_names))
        for _ in range(draw(st.integers(0, 2))):
            name = draw(tag_names)
            node.attributes[name] = draw(safe_text)
        for _ in range(draw(st.integers(0, 3))):
            if depth >= max_depth or draw(st.booleans()):
                value = draw(safe_text)
                if value.strip():
                    node.append(Text(value))
            else:
                node.append(build(depth + 1))
        return node

    return build(0)


def shape(node: Element):
    """Normalised structure: adjacent text nodes coalesce (as XML
    parsing inherently merges them) and pure-whitespace text drops."""
    items: list[object] = []
    for child in node.children:
        if isinstance(child, Element):
            items.append(shape(child))
        elif isinstance(child, Text) and child.value.strip():
            if items and isinstance(items[-1], str):
                items[-1] = items[-1] + child.value
            else:
                items.append(child.value)
    return (node.tag, tuple(sorted(node.attributes.items())), tuple(items))


@given(random_elements())
@settings(max_examples=80, deadline=None)
def test_write_parse_round_trip(root):
    text = write_node(root)
    parsed = parse_fragment(text)
    assert shape(parsed) == shape(root)


@given(safe_text)
@settings(max_examples=100, deadline=None)
def test_text_escape_round_trip(value):
    assert resolve_references(escape_text(value)) == value


@given(safe_text)
@settings(max_examples=100, deadline=None)
def test_attribute_escape_round_trip(value):
    assert resolve_references(escape_attribute(value)) == value
