"""Property-based tests of the interval labeling (hypothesis).

Random trees in, paper invariants out: strict nesting, pre-order starts,
Lemma 1 on the induced histograms, and consistency between the tree
structure and the label arithmetic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling import label_document
from repro.labeling.regions import classify_pair
from repro.xmltree.builder import element
from repro.xmltree.tree import Document, Element


@st.composite
def random_trees(draw, max_children=4, max_depth=4):
    """Generate a random Element tree with random tags from a tiny
    alphabet (collisions are the interesting case)."""

    def build(depth: int) -> Element:
        tag = draw(st.sampled_from(["a", "b", "c"]))
        node = element(tag)
        if depth < max_depth:
            for _ in range(draw(st.integers(0, max_children))):
                node.append(build(depth + 1))
        return node

    return build(0)


def as_doc(root: Element) -> Document:
    doc = Document()
    doc.append(root)
    return doc


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_labels_satisfy_all_invariants(root):
    tree = label_document(as_doc(root))
    tree.validate()


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_label_arithmetic_matches_tree_structure(root):
    tree = label_document(as_doc(root))
    for i, element_i in enumerate(tree.elements):
        for j, element_j in enumerate(tree.elements):
            if i == j:
                continue
            structural = element_i.is_ancestor_of(element_j)
            by_labels = tree.is_ancestor(i, j)
            assert structural == by_labels


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_intervals_nested_or_disjoint(root):
    """Lemma 1's precondition: any two node intervals either nest
    strictly or are disjoint."""
    tree = label_document(as_doc(root))
    labels = list(tree.iter_labels())
    for i, u in enumerate(labels):
        for v in labels[i + 1 :]:
            relation = classify_pair(u, v)
            assert relation in ("ancestor", "descendant", "disjoint")


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_subtree_slices_are_exact(root):
    tree = label_document(as_doc(root))
    for i in range(len(tree)):
        sl = tree.subtree_slice(i)
        inside = set(range(sl.start, sl.stop))
        for j in range(len(tree)):
            expected = j == i or tree.is_ancestor(i, j)
            assert (j in inside) == expected


@given(random_trees(), st.integers(2, 12))
@settings(max_examples=60, deadline=None)
def test_histograms_satisfy_lemma1(root, grid_size):
    from repro.histograms.grid import GridSpec
    from repro.histograms.position import build_position_histogram
    from repro.predicates.base import TagPredicate
    from repro.predicates.catalog import PredicateCatalog

    tree = label_document(as_doc(root))
    catalog = PredicateCatalog(tree)
    grid = GridSpec(grid_size, tree.max_label)
    for tag in ("a", "b", "c"):
        stats = catalog.stats(TagPredicate(tag))
        hist = build_position_histogram(tree, stats.node_indices, grid)
        assert hist.check_lemma1()
        assert hist.total() == stats.count
