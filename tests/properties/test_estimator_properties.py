"""Property-based tests of the estimators (hypothesis).

Invariants checked on random histograms and random documents:

* the three pH-join implementations agree on arbitrary inputs;
* estimates are non-negative and respect the descendant upper bound for
  no-overlap ancestors built from real data;
* pH-join is bilinear in its operands (scaling an operand scales the
  estimate);
* the exact matcher and the structural join agree on random trees.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.phjoin import ph_join, ph_join_literal, reference_region_estimate
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram


@st.composite
def histogram_pairs(draw):
    g = draw(st.integers(1, 7))
    grid = GridSpec(g, 999)

    def cells():
        out = {}
        for i in range(g):
            for j in range(i, g):
                if draw(st.booleans()):
                    out[(i, j)] = draw(
                        st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False)
                    )
        return out

    return (
        PositionHistogram.from_cells(grid, cells()),
        PositionHistogram.from_cells(grid, cells()),
    )


@given(histogram_pairs())
@settings(max_examples=80, deadline=None)
def test_three_ph_join_implementations_agree(pair):
    a, b = pair
    fast = ph_join(a, b).value
    literal = ph_join_literal(a, b).value
    reference = reference_region_estimate(a, b).value
    assert np.isclose(fast, literal, rtol=1e-9, atol=1e-9)
    assert np.isclose(fast, reference, rtol=1e-9, atol=1e-9)


@given(histogram_pairs())
@settings(max_examples=80, deadline=None)
def test_ph_join_nonnegative_and_bounded(pair):
    a, b = pair
    value = ph_join(a, b).value
    assert value >= 0.0
    # Never exceeds the unconstrained product.
    assert value <= a.total() * b.total() + 1e-6


@given(histogram_pairs(), st.floats(0.1, 5.0))
@settings(max_examples=60, deadline=None)
def test_ph_join_bilinear(pair, factor):
    a, b = pair
    base = ph_join(a, b).value
    scaled_a = ph_join(a.scaled(factor), b).value
    scaled_b = ph_join(a, b.scaled(factor)).value
    assert np.isclose(scaled_a, base * factor, rtol=1e-9, atol=1e-7)
    assert np.isclose(scaled_b, base * factor, rtol=1e-9, atol=1e-7)


@given(histogram_pairs())
@settings(max_examples=40, deadline=None)
def test_descendant_based_also_nonnegative(pair):
    a, b = pair
    value = ph_join(a, b, based="descendant").value
    assert value >= 0.0
    assert value <= a.total() * b.total() + 1e-6


# ---------------------------------------------------------------------------
# Random-document properties: estimators vs exact counts
# ---------------------------------------------------------------------------


@st.composite
def random_documents(draw):
    from repro.xmltree.builder import element
    from repro.xmltree.tree import Document, Element

    def build(depth: int) -> Element:
        node = element(draw(st.sampled_from(["x", "y", "z"])))
        if depth < 4:
            for _ in range(draw(st.integers(0, 3))):
                node.append(build(depth + 1))
        return node

    doc = Document()
    doc.append(build(0))
    return doc


@given(random_documents(), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_no_overlap_estimate_respects_descendant_bound(doc, grid_size):
    from repro.estimation import AnswerSizeEstimator
    from repro.labeling import label_document
    from repro.predicates.base import TagPredicate

    tree = label_document(doc)
    estimator = AnswerSizeEstimator(tree, grid_size=grid_size)
    for anc in ("x", "y"):
        predicate = TagPredicate(anc)
        if not estimator.is_no_overlap(predicate):
            continue
        desc = TagPredicate("z")
        estimate = estimator.estimate_pair(predicate, desc, method="no-overlap")
        bound = estimator.catalog.stats(desc).count
        assert estimate.value <= bound + 1e-6


@given(random_documents())
@settings(max_examples=40, deadline=None)
def test_matcher_agrees_with_structural_join(doc):
    from repro.labeling import label_document
    from repro.predicates.base import TagPredicate
    from repro.predicates.catalog import PredicateCatalog
    from repro.query.matcher import count_pairs
    from repro.query.structjoin import stack_tree_join

    tree = label_document(doc)
    catalog = PredicateCatalog(tree)
    for anc in ("x", "y", "z"):
        for desc in ("x", "y", "z"):
            a = catalog.stats(TagPredicate(anc)).node_indices
            d = catalog.stats(TagPredicate(desc)).node_indices
            assert count_pairs(tree, a, d) == stack_tree_join(tree, a, d)


@given(random_documents(), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_coverage_estimate_exact_at_fine_grids(doc, grid_size):
    """Coverage numerators are exact by construction; the estimate's
    only error source is the transfer from all-node fractions to
    predicate-node fractions.  It must always stay within the trivial
    bounds [0, |desc|]."""
    from repro.estimation import AnswerSizeEstimator
    from repro.labeling import label_document
    from repro.predicates.base import TagPredicate

    tree = label_document(doc)
    estimator = AnswerSizeEstimator(tree, grid_size=grid_size)
    predicate = TagPredicate("x")
    if not estimator.is_no_overlap(predicate):
        return
    desc = TagPredicate("y")
    estimate = estimator.estimate_pair(predicate, desc, method="no-overlap")
    assert 0.0 <= estimate.value <= estimator.catalog.stats(desc).count + 1e-6
