"""Golden accuracy regression tests.

Each case runs a fixed seeded random-twig workload over a fixed dataset
and pins the resulting q-error percentile summary
(:class:`~repro.workloads.metrics.ErrorSummary`).  Generation, labeling,
histogram construction, and every estimator are deterministic, so these
values are exact (compared after rounding to 4 decimals only to keep the
pins readable); any change that silently degrades -- or even shifts --
estimator accuracy fails here and must update the goldens consciously.
"""

import pytest

from repro.datasets import generate_orgchart, generate_xmark, paper_example_document
from repro.estimation import AnswerSizeEstimator
from repro.labeling import label_document
from repro.workloads import ErrorSummary, RandomTwigGenerator

# (dataset, grid, workload seed, query count, max twig size) -> pinned
# (geo-mean, median, p90, p99, worst) q-errors, rounded to 4 decimals.
GOLDEN = {
    "paper_example": ((6, 11, 24, 3), (1.1209, 1.0, 1.44, 2.0, 2.0)),
    "orgchart": ((10, 5, 30, 4), (2.9785, 2.381, 8.5625, 94.6231, 94.6231)),
    "xmark": ((10, 9, 30, 4), (1.3534, 1.2597, 2.0093, 3.0, 3.0)),
}


def make_document(name):
    if name == "paper_example":
        return paper_example_document()
    if name == "orgchart":
        return generate_orgchart(seed=3)
    return generate_xmark(seed=2, scale=0.05)


def run_workload(name) -> ErrorSummary:
    grid, seed, count, max_size = GOLDEN[name][0]
    tree = label_document(make_document(name))
    estimator = AnswerSizeEstimator(tree, grid_size=grid)
    generator = RandomTwigGenerator(tree, seed=seed)
    workload = generator.workload(count, min_size=2, max_size=max_size)
    pairs = [
        (estimator.estimate(pattern).value, float(estimator.real_answer(pattern)))
        for pattern in workload
    ]
    return ErrorSummary.from_pairs(pairs)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_qerror_summary_is_pinned(name):
    (_, _, count, _), expected = GOLDEN[name]
    summary = run_workload(name)
    assert summary.count == count
    observed = (
        round(summary.geometric_mean, 4),
        round(summary.median, 4),
        round(summary.p90, 4),
        round(summary.p99, 4),
        round(summary.worst, 4),
    )
    assert observed == expected, (
        f"{name}: accuracy moved from the golden summary.\n"
        f"  pinned:   {expected}\n"
        f"  observed: {observed}\n"
        "If the shift is intentional (estimator change), update GOLDEN."
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_batched_estimation_matches_golden_path(name):
    """estimate_many must not change workload accuracy (same numbers)."""
    grid, seed, count, max_size = GOLDEN[name][0]
    tree = label_document(make_document(name))
    estimator = AnswerSizeEstimator(tree, grid_size=grid)
    generator = RandomTwigGenerator(tree, seed=seed)
    workload = generator.workload(count, min_size=2, max_size=max_size)
    sequential = [estimator.estimate(pattern).value for pattern in workload]
    fresh = AnswerSizeEstimator(label_document(make_document(name)), grid_size=grid)
    batched = [r.value for r in fresh.estimate_many(workload)]
    for s, b in zip(sequential, batched):
        assert abs(s - b) <= 1e-9 * max(1.0, abs(s))
