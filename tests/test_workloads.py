"""Workload module tests: static query lists, metrics, random twigs."""

import math

import pytest

from repro.workloads import (
    DBLP_SIMPLE_QUERIES,
    DBLP_TWIG_QUERIES,
    ORGCHART_SIMPLE_QUERIES,
    ORGCHART_TWIG_QUERIES,
    ErrorSummary,
    RandomTwigGenerator,
    observed_containments,
    q_error,
    relative_error,
)
from repro.query.xpath import parse_xpath


class TestStaticWorkloads:
    def test_table2_rows_present(self):
        assert ("article", "author") in DBLP_SIMPLE_QUERIES
        assert len(DBLP_SIMPLE_QUERIES) == 4

    def test_table4_rows_present(self):
        assert ("employee", "email") in ORGCHART_SIMPLE_QUERIES
        assert len(ORGCHART_SIMPLE_QUERIES) == 7

    def test_twig_queries_parse(self):
        for xpath in DBLP_TWIG_QUERIES + ORGCHART_TWIG_QUERIES:
            pattern = parse_xpath(xpath)
            assert pattern.size() >= 3


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)
        assert relative_error(5, 0) == 5

    def test_q_error_symmetric(self):
        assert q_error(200, 100) == pytest.approx(2.0)
        assert q_error(50, 100) == pytest.approx(2.0)
        assert q_error(100, 100) == pytest.approx(1.0)

    def test_q_error_floor(self):
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(0.0, 10.0) == 10.0

    def test_summary_percentiles(self):
        pairs = [(float(2 ** k), 1.0) for k in range(10)]  # q-errors 1..512
        summary = ErrorSummary.from_pairs(pairs)
        assert summary.count == 10
        assert summary.worst == 512
        assert summary.median == 16  # ceil(0.5*10)=5th value = 2^4
        assert summary.p90 == 256
        assert summary.geometric_mean == pytest.approx(
            math.exp(sum(math.log(2.0**k) for k in range(10)) / 10)
        )

    def test_summary_needs_data(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_pairs([])

    def test_as_row_shape(self):
        summary = ErrorSummary.from_pairs([(2.0, 1.0), (1.0, 1.0)])
        assert len(summary.as_row()) == 6


class TestObservedContainments:
    def test_paper_example(self, paper_tree):
        containments = observed_containments(paper_tree)
        assert "TA" in containments["department"]
        assert "TA" in containments["faculty"]
        assert "TA" in containments["lecturer"]
        assert "TA" not in containments.get("research_scientist", set())
        assert "faculty" not in containments.get("faculty", set())

    def test_recursive_data(self, orgchart_tree):
        containments = observed_containments(orgchart_tree)
        assert "manager" in containments["manager"]
        assert "department" in containments["department"]


class TestRandomTwigGenerator:
    def test_deterministic(self, dblp_tree):
        a = RandomTwigGenerator(dblp_tree, seed=5).workload(10)
        b = RandomTwigGenerator(dblp_tree, seed=5).workload(10)
        assert [p.to_xpath() for p in a] == [p.to_xpath() for p in b]

    def test_sizes_in_range(self, dblp_tree):
        generator = RandomTwigGenerator(dblp_tree, seed=6)
        for pattern in generator.workload(20, min_size=2, max_size=4):
            assert 2 <= pattern.size() <= 4

    def test_mostly_nonempty_with_zero_miss(self, dblp_tree):
        from repro.query.matcher import count_matches

        generator = RandomTwigGenerator(dblp_tree, seed=7, miss_probability=0.0)
        workload = generator.workload(20, min_size=2, max_size=3)
        nonempty = sum(
            1 for pattern in workload if count_matches(dblp_tree, pattern) > 0
        )
        assert nonempty >= 15

    def test_size_validation(self, dblp_tree):
        generator = RandomTwigGenerator(dblp_tree, seed=8)
        with pytest.raises(ValueError):
            generator.generate(1)
        with pytest.raises(ValueError):
            generator.workload(3, min_size=4, max_size=2)

    def test_estimator_handles_random_workload(self, dblp_estimator):
        """End-to-end smoke: every random twig estimates without error
        and with a finite non-negative value."""
        generator = RandomTwigGenerator(dblp_estimator.tree, seed=9)
        for pattern in generator.workload(15, min_size=2, max_size=4):
            value = dblp_estimator.estimate(pattern).value
            assert value >= 0.0
            assert value != float("inf")
