"""Mini-XPath parser unit tests."""

import pytest

from repro.predicates.base import (
    ContentEqualsPredicate,
    ContentPrefixPredicate,
    ContentSuffixPredicate,
    TagPredicate,
    TruePredicate,
)
from repro.predicates.boolean import AndPredicate
from repro.query.pattern import Axis
from repro.query.xpath import XPathSyntaxError, parse_xpath


class TestPaths:
    def test_descendant_pair(self):
        pattern = parse_xpath("//faculty//TA")
        assert pattern.size() == 2
        assert pattern.root.predicate == TagPredicate("faculty")
        child = pattern.root.children[0]
        assert child.predicate == TagPredicate("TA")
        assert child.axis is Axis.DESCENDANT

    def test_child_axis(self):
        pattern = parse_xpath("//department/faculty")
        assert pattern.root.children[0].axis is Axis.CHILD

    def test_three_step_path(self):
        pattern = parse_xpath("//a//b//c")
        names = [n.predicate.name for n in pattern.nodes()]
        assert names == ["a", "b", "c"]

    def test_leading_single_slash(self):
        pattern = parse_xpath("/dblp/article")
        assert pattern.root.predicate == TagPredicate("dblp")

    def test_wildcard(self):
        pattern = parse_xpath("//*//TA")
        assert isinstance(pattern.root.predicate, TruePredicate)


class TestQualifiers:
    def test_single_branch(self):
        pattern = parse_xpath("//faculty[.//TA]//RA")
        assert pattern.size() == 3
        names = sorted(c.predicate.name for c in pattern.root.children)
        assert names == ["RA", "TA"]

    def test_two_branches(self):
        """The introduction's XQuery example as a twig."""
        pattern = parse_xpath("//department/faculty[.//TA][.//RA]")
        assert pattern.size() == 4
        faculty = pattern.root.children[0]
        assert faculty.predicate == TagPredicate("faculty")
        assert sorted(c.predicate.name for c in faculty.children) == ["RA", "TA"]

    def test_child_axis_in_branch(self):
        pattern = parse_xpath("//faculty[./TA]")
        assert pattern.root.children[0].axis is Axis.CHILD

    def test_bare_name_branch_defaults_to_child(self):
        pattern = parse_xpath("//faculty[TA]")
        assert pattern.root.children[0].axis is Axis.CHILD

    def test_multi_step_branch(self):
        pattern = parse_xpath("//a[.//b//c]//d")
        a = pattern.root
        b = [c for c in a.children if c.predicate.name == "b"][0]
        assert b.children[0].predicate.name == "c"

    def test_nested_qualifiers(self):
        pattern = parse_xpath("//a[.//b[.//c]]")
        b = pattern.root.children[0]
        assert b.predicate.name == "b"
        assert b.children[0].predicate.name == "c"


class TestContentQualifiers:
    def test_text_equals(self):
        pattern = parse_xpath('//year[text()="1995"]')
        predicate = pattern.root.predicate
        assert isinstance(predicate, AndPredicate)
        assert TagPredicate("year") in predicate.parts
        assert ContentEqualsPredicate("1995", tag="year") in predicate.parts

    def test_starts_with(self):
        pattern = parse_xpath('//cite[starts-with(text(), "conf")]')
        predicate = pattern.root.predicate
        assert isinstance(predicate, AndPredicate)
        assert ContentPrefixPredicate("conf", tag="cite") in predicate.parts

    def test_ends_with(self):
        pattern = parse_xpath('//cite[ends-with(text(), "99")]')
        predicate = pattern.root.predicate
        assert isinstance(predicate, AndPredicate)
        assert ContentSuffixPredicate("99", tag="cite") in predicate.parts

    def test_content_on_wildcard_replaces_true(self):
        pattern = parse_xpath('//*[text()="x"]')
        assert isinstance(pattern.root.predicate, ContentEqualsPredicate)

    def test_structural_plus_content(self):
        pattern = parse_xpath('//article[.//author]//year[text()="1995"]')
        assert pattern.size() == 3


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "article",         # no leading slash
            "//",              # missing step
            "//a[",            # unterminated qualifier
            "//a[.//]",        # empty branch
            '//a[text()=x]',   # unquoted string
            '//a[starts-with(text() "x")]',  # missing comma
            "//a//",           # trailing axis
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "xpath",
        [
            "//faculty//TA",
            "//department/faculty",
            "//faculty[.//TA]//RA",
            "//a[.//b]//c",
            "//a[.//b][.//c]//d",
        ],
    )
    def test_parse_render_parse(self, xpath):
        pattern = parse_xpath(xpath)
        rendered = pattern.to_xpath()
        again = parse_xpath(rendered)
        assert _shape(again.root) == _shape(pattern.root)


def _shape(node):
    return (
        node.predicate.name,
        node.axis.value,
        tuple(sorted(_shape(c) for c in node.children)),
    )
