"""Stack-tree structural join unit tests."""

import numpy as np
import pytest

from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog
from repro.query.matcher import count_pairs
from repro.query.pattern import Axis
from repro.query.structjoin import (
    nested_loop_join_count,
    stack_tree_join,
    structural_join_pairs,
)


def node_lists(tree, anc_tag, desc_tag):
    catalog = PredicateCatalog(tree)
    return (
        catalog.stats(TagPredicate(anc_tag)).node_indices,
        catalog.stats(TagPredicate(desc_tag)).node_indices,
    )


class TestCountsAgainstReferences:
    @pytest.mark.parametrize(
        "anc,desc",
        [("faculty", "TA"), ("department", "RA"), ("faculty", "name")],
    )
    def test_paper_example(self, paper_tree, anc, desc):
        anc_idx, desc_idx = node_lists(paper_tree, anc, desc)
        merge = stack_tree_join(paper_tree, anc_idx, desc_idx)
        nested = nested_loop_join_count(paper_tree, anc_idx, desc_idx)
        prefix = count_pairs(paper_tree, anc_idx, desc_idx)
        assert merge == nested == prefix

    @pytest.mark.parametrize(
        "anc,desc",
        [
            ("manager", "employee"),
            ("department", "department"),
            ("manager", "manager"),
            ("department", "email"),
        ],
    )
    def test_recursive_data(self, orgchart_tree, anc, desc):
        anc_idx, desc_idx = node_lists(orgchart_tree, anc, desc)
        merge = stack_tree_join(orgchart_tree, anc_idx, desc_idx)
        prefix = count_pairs(orgchart_tree, anc_idx, desc_idx)
        assert merge == prefix

    def test_dblp_scale(self, dblp_tree):
        anc_idx, desc_idx = node_lists(dblp_tree, "article", "author")
        assert stack_tree_join(dblp_tree, anc_idx, desc_idx) == count_pairs(
            dblp_tree, anc_idx, desc_idx
        )


class TestPairEnumeration:
    def test_pairs_are_valid_and_complete(self, paper_tree):
        anc_idx, desc_idx = node_lists(paper_tree, "faculty", "RA")
        pairs = list(structural_join_pairs(paper_tree, anc_idx, desc_idx))
        assert len(pairs) == stack_tree_join(paper_tree, anc_idx, desc_idx)
        for a, d in pairs:
            assert paper_tree.is_ancestor(a, d)
        # Completeness against brute force.
        brute = {
            (int(a), int(d))
            for a in anc_idx
            for d in desc_idx
            if paper_tree.is_ancestor(int(a), int(d))
        }
        assert set(pairs) == brute

    def test_parent_child_pairs(self, paper_tree):
        anc_idx, desc_idx = node_lists(paper_tree, "lecturer", "TA")
        pairs = list(
            structural_join_pairs(paper_tree, anc_idx, desc_idx, axis=Axis.CHILD)
        )
        assert len(pairs) == 3
        for a, d in pairs:
            assert int(paper_tree.parent_index[d]) == a

    def test_nested_ancestors_all_reported(self, orgchart_tree):
        """With nested departments, an email deep inside must pair with
        every enclosing department."""
        anc_idx, desc_idx = node_lists(orgchart_tree, "department", "email")
        pairs = list(structural_join_pairs(orgchart_tree, anc_idx, desc_idx))
        brute = {
            (int(a), int(d))
            for a in anc_idx
            for d in desc_idx
            if orgchart_tree.is_ancestor(int(a), int(d))
        }
        assert set(pairs) == brute


class TestEdgeCases:
    def test_empty_inputs(self, paper_tree):
        empty = np.array([], dtype=np.int64)
        some = np.array([0], dtype=np.int64)
        assert stack_tree_join(paper_tree, empty, some) == 0
        assert stack_tree_join(paper_tree, some, empty) == 0

    def test_self_join_no_overlap_tag_is_zero(self, paper_tree):
        anc_idx, _d = node_lists(paper_tree, "faculty", "faculty")
        assert stack_tree_join(paper_tree, anc_idx, anc_idx) == 0
