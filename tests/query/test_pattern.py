"""Pattern tree model unit tests."""

from repro.predicates.base import TagPredicate, TruePredicate
from repro.query.pattern import Axis, PatternNode, PatternTree


class TestConstruction:
    def test_simple_pair(self):
        pattern = PatternTree.simple_pair(
            TagPredicate("faculty"), TagPredicate("TA")
        )
        assert pattern.size() == 2
        assert pattern.root.predicate.name == "faculty"
        assert pattern.root.children[0].predicate.name == "TA"
        assert pattern.root.children[0].axis is Axis.DESCENDANT

    def test_path(self):
        pattern = PatternTree.path("a", "b", "c")
        assert pattern.size() == 3
        assert pattern.to_xpath() == "//a//b//c"

    def test_path_child_axis(self):
        pattern = PatternTree.path("a", "b", axis=Axis.CHILD)
        assert pattern.to_xpath() == "//a/b"

    def test_path_requires_tags(self):
        try:
            PatternTree.path()
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_branching(self):
        root = PatternNode(TagPredicate("faculty"))
        root.add_child(TagPredicate("TA"))
        root.add_child(TagPredicate("RA"))
        pattern = PatternTree(root)
        assert pattern.size() == 3
        assert pattern.to_xpath() == "//faculty[.//TA]//RA"


class TestTraversal:
    def build(self) -> PatternTree:
        root = PatternNode(TagPredicate("a"))
        b = root.add_child(TagPredicate("b"))
        b.add_child(TagPredicate("d"))
        root.add_child(TagPredicate("c"), Axis.CHILD)
        return PatternTree(root)

    def test_preorder(self):
        names = [n.predicate.name for n in self.build().root.iter_nodes()]
        assert names == ["a", "b", "d", "c"]

    def test_postorder(self):
        names = [n.predicate.name for n in self.build().root.post_order()]
        assert names == ["d", "b", "c", "a"]

    def test_leaves_and_parents(self):
        pattern = self.build()
        nodes = pattern.nodes()
        assert nodes[0].is_leaf() is False
        assert nodes[2].is_leaf() is True
        assert nodes[2].parent is nodes[1]

    def test_predicates_list(self):
        assert [p.name for p in self.build().predicates()] == ["a", "b", "d", "c"]

    def test_has_child_axis(self):
        assert self.build().has_child_axis()
        assert not PatternTree.path("a", "b").has_child_axis()


class TestXPathRendering:
    def test_mixed_axes(self):
        root = PatternNode(TagPredicate("a"))
        root.add_child(TagPredicate("b"), Axis.CHILD)
        assert PatternTree(root).to_xpath() == "//a/b"

    def test_true_predicate_renders_name(self):
        root = PatternNode(TruePredicate())
        assert PatternTree(root).to_xpath() == "//TRUE"

    def test_deep_branching(self):
        root = PatternNode(TagPredicate("x"))
        y = root.add_child(TagPredicate("y"))
        y.add_child(TagPredicate("z1"))
        y.add_child(TagPredicate("z2"))
        assert PatternTree(root).to_xpath() == "//x//y[.//z1]//z2"
