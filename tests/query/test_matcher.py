"""Exact matcher unit tests: the ground truth must really be exact."""

import pytest

from repro.predicates.base import TagPredicate
from repro.predicates.catalog import PredicateCatalog
from repro.query.matcher import count_matches, count_pairs, match_bindings
from repro.query.pattern import Axis, PatternNode, PatternTree
from repro.query.xpath import parse_xpath


class TestPaperExampleGroundTruth:
    def test_faculty_ta_pairs(self, paper_tree):
        """The paper's Section 2: the real result size is 2."""
        assert count_matches(paper_tree, parse_xpath("//faculty//TA")) == 2

    def test_department_faculty(self, paper_tree):
        assert count_matches(paper_tree, parse_xpath("//department//faculty")) == 3

    def test_faculty_ra(self, paper_tree):
        # faculty1 has 1 RA, faculty2 has 3, faculty3 has 2 -> 6 pairs.
        assert count_matches(paper_tree, parse_xpath("//faculty//RA")) == 6

    def test_intro_twig(self, paper_tree):
        """department/faculty[TA][RA]: only faculty #3 has both; matches
        count bindings: 1 department x 1 faculty x 2 TA x 2 RA = 4."""
        pattern = parse_xpath("//department//faculty[.//TA][.//RA]")
        assert count_matches(paper_tree, pattern) == 4

    def test_child_vs_descendant_axis(self, paper_tree):
        as_child = count_matches(paper_tree, parse_xpath("//department/TA"))
        as_descendant = count_matches(paper_tree, parse_xpath("//department//TA"))
        assert as_child == 0   # TAs hang under lecturer/faculty
        assert as_descendant == 5


class TestCountPairs:
    def test_matches_count_matches(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        anc = catalog.stats(TagPredicate("faculty")).node_indices
        desc = catalog.stats(TagPredicate("TA")).node_indices
        assert count_pairs(paper_tree, anc, desc) == 2

    def test_child_axis_pairs(self, paper_tree):
        catalog = PredicateCatalog(paper_tree)
        anc = catalog.stats(TagPredicate("lecturer")).node_indices
        desc = catalog.stats(TagPredicate("TA")).node_indices
        assert count_pairs(paper_tree, anc, desc, axis=Axis.CHILD) == 3

    def test_against_brute_force(self, orgchart_tree):
        catalog = PredicateCatalog(orgchart_tree)
        anc = catalog.stats(TagPredicate("department")).node_indices
        desc = catalog.stats(TagPredicate("email")).node_indices
        fast = count_pairs(orgchart_tree, anc, desc)
        brute = sum(
            1
            for a in anc
            for d in desc
            if orgchart_tree.is_ancestor(int(a), int(d))
        )
        assert fast == brute

    def test_empty_lists(self, paper_tree):
        import numpy as np

        assert count_pairs(paper_tree, np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == 0


class TestRecursiveData:
    def test_nested_manager_pairs(self, orgchart_tree):
        """manager//manager counts strictly nested pairs; must equal the
        brute force on the recursive data."""
        catalog = PredicateCatalog(orgchart_tree)
        managers = catalog.stats(TagPredicate("manager")).node_indices
        fast = count_pairs(orgchart_tree, managers, managers)
        brute = sum(
            1
            for a in managers
            for d in managers
            if orgchart_tree.is_ancestor(int(a), int(d))
        )
        assert fast == brute
        assert fast > 0  # the data set is genuinely recursive

    def test_twig_on_recursive_data_vs_bindings(self, orgchart_tree):
        pattern = parse_xpath("//department[.//email]//employee")
        count = count_matches(orgchart_tree, pattern)
        bindings = match_bindings(orgchart_tree, pattern, limit=100_000)
        assert count == len(bindings)


class TestMatchBindings:
    def test_bindings_are_valid(self, paper_tree):
        pattern = parse_xpath("//faculty//TA")
        bindings = match_bindings(paper_tree, pattern)
        assert len(bindings) == 2
        for binding in bindings:
            (anc_key,) = [k for k in binding if "faculty" in k]
            (desc_key,) = [k for k in binding if "TA" in k]
            assert paper_tree.is_ancestor(binding[anc_key], binding[desc_key])

    def test_limit_respected(self, paper_tree):
        pattern = parse_xpath("//department//RA")
        bindings = match_bindings(paper_tree, pattern, limit=3)
        assert len(bindings) == 3

    def test_twig_bindings_match_count(self, paper_tree):
        pattern = parse_xpath("//department//faculty[.//TA][.//RA]")
        assert len(match_bindings(paper_tree, pattern)) == count_matches(
            paper_tree, pattern
        )


class TestDPCorrectness:
    """Randomized cross-check of the DP counter against bindings."""

    @pytest.mark.parametrize(
        "xpath",
        [
            "//article//author",
            "//article[.//cdrom]//author",
            "//dblp//book//title",
            "//article[.//cite]//year",
            "//article/author",
        ],
    )
    def test_dblp_counts_match_bindings(self, dblp_tree, xpath):
        pattern = parse_xpath(xpath)
        count = count_matches(dblp_tree, pattern)
        # Cap the enumeration: only verify when the result is small
        # enough to enumerate honestly.
        bindings = match_bindings(dblp_tree, pattern, limit=20_000)
        if len(bindings) < 20_000:
            assert count == len(bindings)
        else:
            assert count >= 20_000
