"""Experiment ROBUST -- accuracy over large random workloads.

The paper evaluates a handful of hand-picked queries; this bench
quantifies robustness the modern way: generate 60 random twigs per data
set (sizes 2-5, drawn from structurally plausible tag pairs plus a 10%
miss rate), estimate each, compute exact answers, and report q-error
percentiles for the histogram estimators against the naive product.
"""

from __future__ import annotations

from conftest import emit

from repro.utils.tables import format_table
from repro.workloads import ErrorSummary, RandomTwigGenerator

WORKLOAD_SIZE = 60


def run_workload(estimator, seed: int):
    generator = RandomTwigGenerator(estimator.tree, seed=seed, miss_probability=0.1)
    workload = generator.workload(WORKLOAD_SIZE, min_size=2, max_size=5)
    histogram_pairs = []
    naive_pairs = []
    for pattern in workload:
        real = float(estimator.real_answer(pattern))
        estimate = estimator.estimate(pattern).value
        histogram_pairs.append((estimate, real))
        naive = 1.0
        for node in pattern.nodes():
            naive *= max(estimator.catalog.stats(node.predicate).count, 1)
        naive_pairs.append((naive, real))
    return histogram_pairs, naive_pairs


def test_robustness_random_workloads(benchmark, dblp_estimator, orgchart_estimator):
    results = {}
    for name, estimator, seed in (
        ("dblp", dblp_estimator, 101),
        ("orgchart", orgchart_estimator, 202),
    ):
        results[name] = run_workload(estimator, seed)

    # Schema-aware run on the orgchart: the paper's Section 4 shortcuts
    # zero out impossible nestings that dominate the error tail.
    from repro.datasets.orgchart import ORGCHART_DTD
    from repro.dtd import analyze_dtd, parse_dtd
    from repro.estimation import AnswerSizeEstimator

    schema = analyze_dtd(parse_dtd(ORGCHART_DTD))
    schema_estimator = AnswerSizeEstimator(
        orgchart_estimator.tree, grid_size=10, schema=schema
    )
    results["orgchart+schema"] = run_workload(schema_estimator, 202)

    # The hardest regime: deeply recursive treebank-style parse trees.
    from repro.datasets import generate_treebank
    from repro.labeling import label_document

    treebank = AnswerSizeEstimator(
        label_document(generate_treebank(seed=17, sentences=60)), grid_size=10
    )
    results["treebank"] = run_workload(treebank, 303)

    # Benchmark pure estimation over the prepared dblp workload.
    generator = RandomTwigGenerator(dblp_estimator.tree, seed=101)
    workload = generator.workload(WORKLOAD_SIZE, min_size=2, max_size=5)
    benchmark(lambda: [dblp_estimator.estimate(p).value for p in workload])

    rows = []
    summaries = {}
    for name, (histogram_pairs, naive_pairs) in results.items():
        hist_summary = ErrorSummary.from_pairs(histogram_pairs)
        naive_summary = ErrorSummary.from_pairs(naive_pairs)
        summaries[name] = hist_summary
        rows.append([name, "position histograms", *hist_summary.as_row()])
        if name != "orgchart+schema":
            rows.append([name, "naive product", *naive_summary.as_row()])
        # The headline robustness claim: histogram estimates beat naive
        # by orders of magnitude across the whole workload.
        assert hist_summary.geometric_mean < naive_summary.geometric_mean / 10
        # Accuracy bars by regime: treebank's dense mutual recursion is
        # the known-hard case (heavy within-cell correlation).
        assert hist_summary.median <= (20.0 if name == "treebank" else 6.0)

    # Schema shortcuts must strictly improve the tail.
    assert summaries["orgchart+schema"].worst <= summaries["orgchart"].worst
    assert (
        summaries["orgchart+schema"].geometric_mean
        <= summaries["orgchart"].geometric_mean
    )

    table = format_table(
        ["dataset", "estimator", "queries", "geo-mean q", "median q", "p90 q", "p99 q", "worst q"],
        rows,
        title=f"Robustness -- q-error percentiles over {WORKLOAD_SIZE} random twigs per data set",
    )
    emit("robustness", table)
