"""Experiment F11 -- paper Fig. 11: storage and accuracy vs grid size,
overlap predicates (department//email on the synthetic data set).

The paper's claims: position-histogram storage grows linearly in the
grid side with a constant factor near 2 non-zero cells per unit of g,
and the estimate/real ratio converges to ~1 for grids beyond 10-20.
The benchmarked kernel is one full sweep point (build + estimate) at
g=20.
"""

from __future__ import annotations

from conftest import emit

from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table

GRID_SIZES = (2, 5, 10, 15, 20, 30, 40, 50)


def sweep_point(tree, grid_size: int, real: int):
    estimator = AnswerSizeEstimator(tree, grid_size=grid_size)
    dept, email = TagPredicate("department"), TagPredicate("email")
    hist_dept = estimator.position_histogram(dept)
    hist_email = estimator.position_histogram(email)
    estimate = estimator.estimate_pair(dept, email, method="ph-join").value
    from repro.histograms.storage import position_storage_bytes

    return {
        "g": grid_size,
        "dept_bytes": position_storage_bytes(hist_dept),
        "email_bytes": position_storage_bytes(hist_email),
        "dept_cells": hist_dept.nonzero_cell_count(),
        "email_cells": hist_email.nonzero_cell_count(),
        "ratio": estimate / real,
    }


def test_fig11_storage_and_accuracy_overlap(benchmark, orgchart_estimator):
    tree = orgchart_estimator.tree
    real = orgchart_estimator.real_answer("//department//email")

    benchmark(lambda: sweep_point(tree, 20, real))

    rows = []
    points = [sweep_point(tree, g, real) for g in GRID_SIZES]
    for point in points:
        rows.append(
            [
                point["g"],
                point["dept_bytes"],
                point["email_bytes"],
                point["dept_cells"],
                point["email_cells"],
                round(point["ratio"], 3),
            ]
        )
    table = format_table(
        [
            "grid size",
            "dept bytes",
            "email bytes",
            "dept cells",
            "email cells",
            "estimate/real",
        ],
        rows,
        title=(
            "Fig. 11 -- storage requirement and estimation accuracy vs grid "
            f"size, overlap predicates (department//email, real={real})"
        ),
    )
    emit("fig11", table)

    # Paper claims: linear storage (constant cells-per-g factor) ...
    for point in points:
        assert point["dept_cells"] <= 4 * point["g"]
        assert point["email_cells"] <= 4 * point["g"]
    # ... and convergence of the accuracy ratio toward 1 past g ~ 10-20.
    final = points[-1]["ratio"]
    first = points[0]["ratio"]
    assert abs(final - 1.0) <= abs(first - 1.0) + 1e-9
    assert 0.5 <= final <= 1.5
