"""Replication benchmark: read scale-out over log-shipping followers.

Three configurations over live TCP servers (durable WAL-attached
primary, line-delimited JSON protocol, real sockets), all under the
same 4-writer insert burst:

* **single / strong** -- the baseline a replica fleet replaces: every
  read is read-your-writes (``strong``), so it queues behind the
  admission groups of the bursting writers.  This is the consistency a
  single server must give a client that cannot tolerate stale answers.

* **single / weak** -- the same reader fleet on epoch-snapshot (weak)
  estimates against the one server; recorded as the informational
  ``weak_read_scaleout_ratio`` denominator (no floor: on a single core
  the extra server processes buy no weak-read throughput; the win of
  replication is removing the *queue*, not adding cores).

* **replicated / weak** -- a primary plus two log-shipping followers;
  the readers fan across the followers while the writers burst against
  the primary.  Reads never touch the write queue at all.

Acceptance bars (embedded in the artifact, enforced by
``check_perf_floors.py`` on quick CI runs too):

* ``replica_read_offload_speedup`` >= 1.8 -- aggregate follower reads
  beat the strong single-server baseline by 1.8x: offloading reads to
  replicas must decisively beat queueing them behind the writers;
* ``burst_catchup_overhead`` <= 1.25 -- wall time from burst start
  until both followers hold the primary's last committed LSN, over the
  burst itself: steady-state replication lag stays bounded;
* follower estimates at the matched LSN are **bit-identical** to the
  primary's (asserted, recorded as ``bit_identical``).

Writes a ``BENCH_replication.json`` artifact.

Run:  python benchmarks/bench_replication.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_dblp  # noqa: E402
from repro.service import EstimationService, ServiceClient  # noqa: E402
from repro.service.replica import Follower, bootstrap_follower  # noqa: E402
from repro.service.server import (  # noqa: E402
    EstimationServer,
    ServiceEngine,
    serve_forever,
)

QUERIES = ["//article//author", "//article//cite", "//dblp//title"]

FLOORS = {"replica_read_offload_speedup": 1.8}
CEILINGS = {"burst_catchup_overhead": 1.25}


def build_service(workdir: Path, name: str, scale: float) -> EstimationService:
    service = EstimationService.open_durable(
        workdir / name,
        generate_dblp(seed=7, scale=scale),
        grid_size=10,
        spacing=64,
        checkpoint_every=10**9,  # measure the log path, not checkpoints
    )
    for stats in service.catalog.register_all_tags():
        service.position_histogram(stats.predicate)
    service.estimate_many(QUERIES)
    # Re-cut the initial checkpoint with the primed summaries so
    # followers bootstrap them instead of rebuilding on first read.
    service.checkpoint()
    return service


class ReplicaHandle:
    """One running follower: service + engine + apply loop + TCP server."""

    def __init__(self, workdir: Path, name: str, primary_server) -> None:
        self.info = bootstrap_follower(
            workdir / name, primary_server.host, primary_server.port
        )
        self.service = EstimationService.open_durable(
            workdir / name, checkpoint_every=10**9
        )
        self.engine = ServiceEngine(self.service)
        self.follower = Follower(
            self.service,
            self.engine,
            primary_server.host,
            primary_server.port,
            read_timeout=30.0,
        )
        self.follower.start()
        self.server = EstimationServer(self.engine)
        self.server.start()

    def close(self) -> None:
        self.follower.stop(30.0)
        self.server.stop()
        self.server.join(10)
        self.engine.close()
        self.service.close()


def run_burst_with_readers(
    server_targets: list[tuple[str, int]],
    primary_server,
    *,
    writers: int,
    ops_per_writer: int,
    strong: bool,
) -> dict:
    """Burst ``writers`` inserters against the primary while one reader
    per target hammers estimates; returns the burst wall time and the
    aggregate reads completed during it."""
    writers_done = threading.Event()
    reads = [0] * len(server_targets)
    reader_errors: list[BaseException] = []

    def reader(k: int, host: str, port: int) -> None:
        try:
            with ServiceClient(host, port) as db:
                i = 0
                while not writers_done.is_set():
                    db.estimate(QUERIES[i % len(QUERIES)], strong=strong)
                    reads[k] += 1
                    i += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            reader_errors.append(exc)

    reader_threads = [
        threading.Thread(target=reader, args=(k, host, port))
        for k, (host, port) in enumerate(server_targets)
    ]

    barrier = threading.Barrier(writers + 1)
    writer_errors: list[BaseException] = []

    def writer(k: int) -> None:
        try:
            with ServiceClient(primary_server.host, primary_server.port) as db:
                barrier.wait()
                for i in range(ops_per_writer):
                    db.insert(
                        "article", f"<note><author>W{k}.{i}</author></note>"
                    )
        except BaseException as exc:  # pragma: no cover - surfaced below
            writer_errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass

    writer_threads = [
        threading.Thread(target=writer, args=(k,)) for k in range(writers)
    ]
    for thread in reader_threads + writer_threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in writer_threads:
        thread.join(300)
    burst_seconds = time.perf_counter() - started
    writers_done.set()
    for thread in reader_threads:
        thread.join(60)
    if writer_errors or reader_errors:
        raise (writer_errors + reader_errors)[0]
    return {
        "burst_seconds": burst_seconds,
        "burst_ops": writers * ops_per_writer,
        "reads": sum(reads),
        "reads_per_reader": reads,
        "reads_per_second": sum(reads) / burst_seconds,
        "started_at_perf": started,
    }


def measure_single(
    workdir: Path, name: str, scale: float, *, readers: int,
    writers: int, ops_per_writer: int, strong: bool,
) -> dict:
    service = build_service(workdir, name, scale)
    engine, server = serve_forever(service, max_ops=64, linger=0.002)
    try:
        result = run_burst_with_readers(
            [(server.host, server.port)] * readers,
            server,
            writers=writers,
            ops_per_writer=ops_per_writer,
            strong=strong,
        )
        result.pop("started_at_perf")
        result["consistency"] = "strong" if strong else "weak"
        return result
    finally:
        server.stop()
        server.join(10)
        engine.close()
        service.close()


def measure_replicated(
    workdir: Path, scale: float, *, replicas: int, writers: int,
    ops_per_writer: int,
) -> dict:
    service = build_service(workdir, "primary", scale)
    engine, server = serve_forever(service, max_ops=64, linger=0.002)
    fleet: list[ReplicaHandle] = []
    try:
        for k in range(replicas):
            fleet.append(ReplicaHandle(workdir, f"replica{k}", server))
        result = run_burst_with_readers(
            [(h.server.host, h.server.port) for h in fleet],
            server,
            writers=writers,
            ops_per_writer=ops_per_writer,
            strong=False,
        )
        started = result.pop("started_at_perf")
        # catch-up: burst start -> both followers at the committed LSN
        target = int(service._last_lsn)
        deadline = time.time() + 120
        for handle in fleet:
            while int(handle.service._last_lsn) < target:
                if time.time() > deadline:
                    raise RuntimeError(
                        f"follower stuck at {handle.service._last_lsn} "
                        f"(target {target}): {handle.service.replica_status}"
                    )
                time.sleep(0.005)
        caught_up = time.perf_counter() - started
        # bit-identity at the matched LSN
        primary_values = [service.estimate(q).value for q in QUERIES]
        for handle in fleet:
            follower_values = [
                handle.service.estimate(q).value for q in QUERIES
            ]
            assert follower_values == primary_values, (
                follower_values,
                primary_values,
            )
        result["consistency"] = "weak"
        result["replicas"] = replicas
        result["transfer"] = [h.info["transfer"] for h in fleet]
        result["catchup_seconds"] = caught_up - result["burst_seconds"]
        result["caught_up_seconds"] = caught_up
        result["final_lsn"] = target
        result["records_applied"] = [
            h.follower.records_applied for h in fleet
        ]
        result["bit_identical"] = True
        return result
    finally:
        for handle in fleet:
            handle.close()
        server.stop()
        server.join(10)
        engine.close()
        service.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer ops (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_replication.json"
        ),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    scale = 0.15 if args.quick else 0.8
    writers = 4
    ops_per_writer = 25 if args.quick else 60
    replicas = 2

    workdir = Path(tempfile.mkdtemp(prefix="bench_replication_"))
    try:
        probe = build_service(workdir, "probe", scale)
        nodes = len(probe)
        probe.close()
        shutil.rmtree(workdir / "probe", ignore_errors=True)
        print(f"synthetic dblp tree: {nodes} nodes (scale {scale})")

        single_strong = measure_single(
            workdir, "strong", scale, readers=replicas,
            writers=writers, ops_per_writer=ops_per_writer, strong=True,
        )
        print(
            f"single server, strong reads under {writers}-writer burst: "
            f"{single_strong['reads_per_second']:7.1f} reads/s "
            f"({single_strong['reads']} reads in "
            f"{single_strong['burst_seconds']:.2f} s)"
        )

        single_weak = measure_single(
            workdir, "weak", scale, readers=replicas,
            writers=writers, ops_per_writer=ops_per_writer, strong=False,
        )
        print(
            f"single server, weak reads under the same burst:   "
            f"{single_weak['reads_per_second']:7.1f} reads/s"
        )

        replicated = measure_replicated(
            workdir, scale, replicas=replicas,
            writers=writers, ops_per_writer=ops_per_writer,
        )
        print(
            f"{replicas} followers, weak reads under the same burst:   "
            f"{replicated['reads_per_second']:7.1f} reads/s "
            f"(per follower {replicated['reads_per_reader']}, "
            f"transfer {replicated['transfer']})"
        )

        offload_speedup = (
            replicated["reads_per_second"] / single_strong["reads_per_second"]
        )
        scaleout_ratio = (
            replicated["reads_per_second"] / single_weak["reads_per_second"]
        )
        catchup_overhead = (
            replicated["caught_up_seconds"] / replicated["burst_seconds"]
        )
        print(
            f"read offload speedup vs strong baseline: "
            f"{offload_speedup:.2f}x (floor "
            f"{FLOORS['replica_read_offload_speedup']:.1f}x); "
            f"weak/weak scale-out ratio {scaleout_ratio:.2f} "
            f"(informational)"
        )
        print(
            f"burst catch-up: followers at lsn {replicated['final_lsn']} "
            f"{replicated['catchup_seconds'] * 1e3:.0f} ms after the burst "
            f"-> {catchup_overhead:.2f}x of burst wall time (ceiling "
            f"{CEILINGS['burst_catchup_overhead']:.2f}x); estimates "
            f"bit-identical at the matched LSN"
        )

        artifact = {
            "meta": {
                "nodes": nodes,
                "quick": args.quick,
                "grid": 10,
                "seed": 7,
                "writers": writers,
                "ops_per_writer": ops_per_writer,
                "replicas": replicas,
            },
            "floors": FLOORS,
            "ceilings": CEILINGS,
            "single_strong": single_strong,
            "single_weak": single_weak,
            "replicated": replicated,
            "replica_read_offload_speedup": offload_speedup,
            "weak_read_scaleout_ratio": scaleout_ratio,
            "burst_catchup_overhead": catchup_overhead,
            "bit_identical": replicated["bit_identical"],
        }
        Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.out}")

        assert replicated["bit_identical"]
        if not args.quick:
            assert offload_speedup >= FLOORS["replica_read_offload_speedup"], (
                f"replica read offload {offload_speedup:.2f}x below the "
                f"{FLOORS['replica_read_offload_speedup']:.1f}x acceptance bar"
            )
            assert catchup_overhead <= CEILINGS["burst_catchup_overhead"], (
                f"followers needed {catchup_overhead:.2f}x of the burst to "
                f"catch up (ceiling "
                f"{CEILINGS['burst_catchup_overhead']:.2f}x)"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
