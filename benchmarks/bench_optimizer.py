"""Experiment OPT -- the motivating use case (paper Section 1).

"Depending on the cardinalities of the intermediate result set, one
plan may be substantially better than another.  Accurate estimates for
the intermediate join result are essential if a query optimizer is to
pick the optimal plan."  This bench closes that loop: enumerate all
connected join orders for each twig, cost them with (a) the histogram
estimates and (b) exact sizes, and report the regret of the
estimate-driven choice.
"""

from __future__ import annotations

from conftest import emit

from repro.optimizer import Optimizer
from repro.query.xpath import parse_xpath
from repro.utils.tables import format_table

WORKLOAD = [
    ("dblp", "//article[.//author]//cite"),
    ("dblp", "//article[.//cdrom]//author"),
    ("dblp", "//inproceedings[.//author][.//cite]//title"),
    ("orgchart", "//manager//department[.//employee]//email"),
    ("orgchart", "//department[.//employee][.//department]//email"),
]


def test_optimizer_plan_choice(benchmark, dblp_estimator, orgchart_estimator):
    estimators = {"dblp": dblp_estimator, "orgchart": orgchart_estimator}

    def optimize_all():
        out = []
        for dataset, xpath in WORKLOAD:
            optimizer = Optimizer(estimators[dataset])
            report = optimizer.validate_choice(parse_xpath(xpath))
            out.append((dataset, xpath, report))
        return out

    reports = benchmark.pedantic(optimize_all, rounds=1, iterations=1)

    rows = []
    for dataset, xpath, report in reports:
        rows.append(
            [
                dataset,
                xpath,
                int(report["plan_count"]),
                round(report["chosen_true_cost"], 0),
                round(report["optimal_true_cost"], 0),
                round(report["regret_ratio"], 3),
            ]
        )
        assert report["regret_ratio"] <= 2.0, xpath

    table = format_table(
        [
            "dataset",
            "query",
            "plans",
            "chosen plan true cost",
            "optimal true cost",
            "regret",
        ],
        rows,
        title="Estimate-driven join-order choice vs exact-cost optimum",
    )
    emit("optimizer", table)
