"""Fault-path benchmark: what hardening costs when nothing is failing,
and what failures cost when they happen.

Three measurements over a live TCP server backed by a durable
(WAL-attached) service, with faults injected through the seeded
:class:`~repro.service.faults.FaultPlan` schedules the chaos suites
use:

* **degraded-read latency** -- p50/p99 of weak estimates while the
  service is SERVING versus after a WAL outage has forced it into
  sticky read-only DEGRADED mode.  Degraded reads answer from the same
  pinned epoch view, so the mode must be free for readers:
  ``degraded_read_p99_overhead`` <= 1.5 in CI.

* **dedup-hit latency** -- p50/p99 of a fresh insert versus a replayed
  one (same idempotency key resent, answered from the dedup window
  without touching the WAL or the tree).  A replay must never cost
  more than the apply it stands in for: ``dedup_hit_overhead`` <= 1.5
  in CI.

* **retry storm** (informational) -- a client driving inserts through
  a server whose send path tears ~20% of response frames mid-write,
  with bounded-backoff retries and idempotency keys.  Reports achieved
  throughput, injected faults, and dedup replays, and asserts the
  exactly-once invariant: the tree grows by precisely one subtree per
  acknowledged insert, no matter how many times each was retried.

Writes a ``BENCH_faults.json`` artifact; ``check_perf_floors.py``
guards ``degraded_read_p99_overhead`` and ``dedup_hit_overhead``.

Run:  python benchmarks/bench_faults.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_dblp  # noqa: E402
from repro.service import (  # noqa: E402
    EstimationService,
    FaultPlan,
    FaultRule,
    ServiceClient,
    ServiceError,
)
from repro.service.faults import NET_SEND, WAL_FSYNC, WAL_WRITE  # noqa: E402
from repro.service.server import EstimationServer, ServiceEngine  # noqa: E402

QUERIES = ["//article//author", "//article//cite", "//dblp//title"]


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def build_service(workdir: Path, name: str, scale: float) -> EstimationService:
    service = EstimationService.open_durable(
        workdir / name,
        generate_dblp(seed=7, scale=scale),
        grid_size=10,
        spacing=64,
        checkpoint_every=10**9,  # measure the log path, not checkpoints
    )
    for stats in service.catalog.register_all_tags():
        service.position_histogram(stats.predicate)
    service.estimate_many(QUERIES)
    return service


def start_server(service, *, faults=None, **engine_options):
    engine = ServiceEngine(service, **engine_options)
    server = EstimationServer(engine, host="127.0.0.1", port=0, faults=faults)
    server.start()
    return engine, server


def stop_server(engine, server, service) -> None:
    server.stop()
    server.join(timeout=10)
    engine.close()
    service.close()


def timed_reads(db: ServiceClient, requests: int) -> list[float]:
    samples = []
    for i in range(requests):
        query = QUERIES[i % len(QUERIES)]
        started = time.perf_counter()
        db.estimate(query)
        samples.append(time.perf_counter() - started)
    return samples


def summarize(samples: list[float]) -> dict:
    return {
        "requests": len(samples),
        "p50_ms": percentile(samples, 0.50) * 1e3,
        "p99_ms": percentile(samples, 0.99) * 1e3,
        "mean_ms": statistics.fmean(samples) * 1e3,
    }


def measure_degraded_reads(workdir: Path, scale: float, requests: int):
    """Weak-read latency SERVING vs DEGRADED on the same server."""
    service = build_service(workdir, "degraded", scale)
    plan = FaultPlan()  # armed mid-run; empty plans inject nothing
    service.attach_fault_plan(plan)
    engine, server = start_server(service, max_ops=64, linger=0.002)
    try:
        with ServiceClient(server.host, server.port) as db:
            timed_reads(db, max(10, requests // 10))  # warm the path
            serving = timed_reads(db, requests)
            assert db.health()["mode"] == "SERVING"

            # One failed WAL append flips the service into sticky
            # read-only mode; the insert's rollback is exact.
            plan.rules.append(FaultRule(WAL_FSYNC, nth=1, count=None))
            plan.rules.append(FaultRule(WAL_WRITE, nth=1, count=None))
            try:
                db.insert("article", "<note><author>X</author></note>")
                raise AssertionError("insert during outage should fail")
            except ServiceError as exc:
                assert exc.code == "read_only", exc
            assert db.health()["mode"] == "DEGRADED"

            degraded = timed_reads(db, requests)
        overhead = percentile(degraded, 0.99) / percentile(serving, 0.99)
        return {
            "serving": summarize(serving),
            "degraded": summarize(degraded),
        }, overhead
    finally:
        stop_server(engine, server, service)


def measure_dedup_hits(workdir: Path, scale: float, ops: int):
    """Fresh-insert latency vs a replayed (dedup-window) insert."""
    service = build_service(workdir, "dedup", scale)
    engine, server = start_server(
        service, max_ops=64, linger=None, dedup_window=4 * ops
    )
    try:
        with ServiceClient(server.host, server.port) as db:
            fresh, replayed = [], []
            for i in range(ops):
                request = {
                    "op": "insert",
                    "parent": {"tag": "article"},
                    "xml": f"<note><author>D{i}</author></note>",
                    "idem": f"bench-dedup-{i}",
                }
                started = time.perf_counter()
                first = db.request(dict(request))
                fresh.append(time.perf_counter() - started)
                started = time.perf_counter()
                second = db.request(dict(request))
                replayed.append(time.perf_counter() - started)
                assert first["ok"] and second["ok"]
                assert second.get("deduped") is True, second
        assert engine.stats.ops_deduped == ops
        overhead = percentile(replayed, 0.99) / percentile(fresh, 0.99)
        return {
            "fresh_insert": summarize(fresh),
            "dedup_replay": summarize(replayed),
        }, overhead
    finally:
        stop_server(engine, server, service)


def measure_retry_storm(workdir: Path, scale: float, ops: int) -> dict:
    """Exactly-once insert throughput through a torn-frame send path."""
    service = build_service(workdir, "storm", scale)
    plan = FaultPlan(
        [FaultRule(NET_SEND, probability=0.2, count=None, action="torn")],
        seed=42,
    )
    engine, server = start_server(service, max_ops=64, linger=0.002, faults=plan)
    try:
        nodes_before = len(service)
        started = time.perf_counter()
        with ServiceClient(
            server.host, server.port,
            timeout=30.0, retries=10, backoff_ms=1.0, retry_seed=7,
        ) as db:
            for i in range(ops):
                result = db.insert(
                    "article", f"<note><author>S{i}</author></note>"
                )
                assert result["ok"]
        elapsed = time.perf_counter() - started
        applied = len(service) - nodes_before
        # The exactly-once invariant under the storm: 2 nodes per
        # acknowledged insert, regardless of retries and replays.
        assert applied == 2 * ops, (applied, ops)
        return {
            "ops": ops,
            "seconds": elapsed,
            "ops_per_second": ops / elapsed,
            "frames_torn": len(plan.fired),
            "dedup_replays": engine.stats.ops_deduped,
            "exactly_once": True,
        }
    finally:
        stop_server(engine, server, service)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer ops (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_faults.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    scale = 0.15 if args.quick else 0.8
    read_requests = 60 if args.quick else 400
    dedup_ops = 25 if args.quick else 120
    storm_ops = 20 if args.quick else 80

    workdir = Path(tempfile.mkdtemp(prefix="bench_faults_"))
    try:
        degraded, degraded_overhead = measure_degraded_reads(
            workdir, scale, read_requests
        )
        print(
            f"degraded reads: SERVING p99 "
            f"{degraded['serving']['p99_ms']:6.2f} ms, DEGRADED p99 "
            f"{degraded['degraded']['p99_ms']:6.2f} ms "
            f"-> {degraded_overhead:.2f}x"
        )

        dedup, dedup_overhead = measure_dedup_hits(workdir, scale, dedup_ops)
        print(
            f"dedup hits: fresh insert p99 "
            f"{dedup['fresh_insert']['p99_ms']:6.2f} ms, replay p99 "
            f"{dedup['dedup_replay']['p99_ms']:6.2f} ms "
            f"-> {dedup_overhead:.2f}x"
        )

        storm = measure_retry_storm(workdir, scale, storm_ops)
        print(
            f"retry storm: {storm['ops']} inserts at "
            f"{storm['ops_per_second']:6.1f} ops/s with "
            f"{storm['frames_torn']} torn frames and "
            f"{storm['dedup_replays']} dedup replays (exactly-once held)"
        )

        artifact = {
            "meta": {"quick": args.quick, "grid": 10, "seed": 7, "scale": scale},
            "degraded_reads": degraded,
            "degraded_read_p99_overhead": degraded_overhead,
            "dedup": dedup,
            "dedup_hit_overhead": dedup_overhead,
            "retry_storm": storm,
        }
        Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.out}")

        if not args.quick:
            assert degraded_overhead <= 1.5, (
                f"degraded reads {degraded_overhead:.2f}x over the healthy p99"
            )
            assert dedup_overhead <= 1.5, (
                f"dedup replay {dedup_overhead:.2f}x over a fresh apply"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
