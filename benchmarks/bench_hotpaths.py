"""Hot-path benchmark: loop operators vs. the columnar execution core.

Measures, on a synthetic DBLP-scale tree (>= 1e5 nodes by default),

* pair counting    -- stack-tree loop vs. vectorized interval join;
* pair enumeration -- Python tuple generator vs. pair arrays;
* plan execution   -- dict-of-list expansion vs. columnar gather/repeat;
* catalog build    -- per-tag scans + Python overlap check vs. the
  per-tag index and ``np.maximum.accumulate``;
* coverage build   -- explicit-stack sweep vs. the join-based builder;
* batched workload -- 100 sequential ``estimate`` calls vs. one
  ``estimate_many`` on cold estimators.

Every vectorized result is asserted bit-identical (exact integer
counts / pair multisets) to its loop reference before timing is
reported.  Writes a ``BENCH_hotpaths.json`` trajectory artifact with
ops/sec and speedup per path.

Run:  python benchmarks/bench_hotpaths.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_dblp, generate_orgchart  # noqa: E402
from repro.engine.bindings import BindingTable  # noqa: E402
from repro.engine.executor import PlanExecutor  # noqa: E402
from repro.estimation import AnswerSizeEstimator  # noqa: E402
from repro.histograms.coverage import build_coverage_histogram  # noqa: E402
from repro.labeling import label_document  # noqa: E402
from repro.optimizer.plans import enumerate_plans  # noqa: E402
from repro.predicates.base import TagPredicate  # noqa: E402
from repro.predicates.catalog import PredicateCatalog, detect_no_overlap  # noqa: E402
from repro.query.structjoin import (  # noqa: E402
    stack_tree_join,
    structural_join_pairs,
    vectorized_join_count,
    vectorized_join_pairs,
)
from repro.query.xpath import parse_xpath  # noqa: E402


# ---------------------------------------------------------------------------
# Loop references (the pre-columnar implementations, kept verbatim here)
# ---------------------------------------------------------------------------


def loop_detect_no_overlap(tree, indices) -> bool:
    if len(indices) <= 1:
        return True
    starts = tree.start[indices]
    ends = tree.end[indices]
    running_end = ends[0]
    for k in range(1, len(indices)):
        if starts[k] < running_end:
            return False
        running_end = max(running_end, ends[k])
    return True


def loop_catalog_build(tree) -> dict[str, tuple[int, bool]]:
    """Per-tag full scans + Python overlap detection (the old path)."""
    tags = sorted({e.tag for e in tree.elements})
    out = {}
    for tag in tags:
        indices = np.asarray(
            [i for i, e in enumerate(tree.elements) if e.tag == tag],
            dtype=np.int64,
        )
        out[tag] = (len(indices), loop_detect_no_overlap(tree, indices))
    return out


def vector_catalog_build(tree) -> dict[str, tuple[int, bool]]:
    catalog = PredicateCatalog(tree)
    return {
        s.predicate.name: (s.count, s.no_overlap) for s in catalog.register_all_tags()
    }


def loop_coverage_build(tree, node_indices, true_hist):
    """The old explicit-stack coverage sweep."""
    grid = true_hist.grid
    predicate_set = set(int(x) for x in node_indices)
    numerators: dict[tuple[int, int, int, int], int] = {}
    start, end = tree.start, tree.end
    stack: list[tuple[int, tuple[int, int]]] = []
    for v in range(len(tree)):
        v_start = int(start[v])
        while stack and stack[-1][0] < v_start:
            stack.pop()
        if stack:
            v_cell = grid.cell_of(v_start, int(end[v]))
            seen = set()
            for _, ancestor_cell in stack:
                if ancestor_cell in seen:
                    continue
                seen.add(ancestor_cell)
                key = (v_cell[0], v_cell[1], ancestor_cell[0], ancestor_cell[1])
                numerators[key] = numerators.get(key, 0) + 1
        if v in predicate_set:
            v_end = int(end[v])
            stack.append((v_end, grid.cell_of(v_start, v_end)))
    entries = {}
    for (i, j, m, n), numerator in numerators.items():
        denominator = true_hist.count(i, j)
        if denominator > 0:
            entries[(i, j, m, n)] = numerator / denominator
    return entries


class LoopExecutor:
    """The pre-columnar executor: tuple rows + dict-of-list expansion."""

    def __init__(self, tree, catalog):
        self.tree = tree
        self.catalog = catalog

    def execute(self, pattern, plan) -> list[tuple[int, ...]]:
        nodes = pattern.nodes()
        columns: tuple[int, ...] = ()
        rows: list[tuple[int, ...]] = []
        for step in plan.steps:
            parent_id, child_id = step.parent, step.child
            axis = nodes[child_id].axis
            if not columns:
                parent_nodes = self.catalog.stats(
                    nodes[parent_id].predicate
                ).node_indices
                columns = (parent_id,)
                rows = [(int(n),) for n in parent_nodes]
            if parent_id in columns:
                existing_id, new_id, new_is_child = parent_id, child_id, True
            else:
                existing_id, new_id, new_is_child = child_id, parent_id, False
            position = columns.index(existing_id)
            bound = np.asarray(
                sorted({row[position] for row in rows}), dtype=np.int64
            )
            candidates = self.catalog.stats(nodes[new_id].predicate).node_indices
            matches: dict[int, list[int]] = {}
            if new_is_child:
                for a, d in structural_join_pairs(
                    self.tree, bound, candidates, axis=axis
                ):
                    matches.setdefault(a, []).append(d)
            else:
                for a, d in structural_join_pairs(
                    self.tree, candidates, bound, axis=axis
                ):
                    matches.setdefault(d, []).append(a)
            out_rows: list[tuple[int, ...]] = []
            for row in rows:
                for partner in matches.get(row[position], ()):
                    out_rows.append(row + (partner,))
            columns = columns + (new_id,)
            rows = out_rows
        return rows


# ---------------------------------------------------------------------------
# Timing harness
# ---------------------------------------------------------------------------


def best_of(fn, repeats: int):
    """Return (result, best_seconds) over ``repeats`` timed runs."""
    result = None
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def record(results: dict, path: str, loop_s: float, vector_s: float, extra=None):
    entry = {
        "loop_seconds": loop_s,
        "vectorized_seconds": vector_s,
        "loop_ops_per_sec": 1.0 / loop_s if loop_s > 0 else None,
        "vectorized_ops_per_sec": 1.0 / vector_s if vector_s > 0 else None,
        "speedup": loop_s / vector_s if vector_s > 0 else None,
        "identical": True,
    }
    if extra:
        entry.update(extra)
    results[path] = entry
    print(
        f"{path:18s} loop {loop_s * 1e3:9.2f} ms   "
        f"vectorized {vector_s * 1e3:9.2f} ms   speedup {entry['speedup']:.1f}x"
    )


def pair_multiset(anc, desc):
    order = np.lexsort((desc, anc))
    return np.stack([anc[order], desc[order]])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer repeats (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"),
        help="where to write the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)

    scale = 0.3 if args.quick else 2.2
    repeats = 2 if args.quick else 3
    tree = label_document(generate_dblp(seed=7, scale=scale))
    print(f"synthetic dblp tree: {len(tree)} nodes (scale {scale})")

    catalog = PredicateCatalog(tree)
    anc = catalog.stats(TagPredicate("article")).node_indices
    desc = catalog.stats(TagPredicate("author")).node_indices

    results: dict = {}
    meta = {
        "nodes": len(tree),
        "quick": args.quick,
        "ancestor_count": int(len(anc)),
        "descendant_count": int(len(desc)),
    }

    # -- pair counting ------------------------------------------------------
    loop_count, loop_s = best_of(lambda: stack_tree_join(tree, anc, desc), repeats)
    vec_count, vec_s = best_of(lambda: vectorized_join_count(tree, anc, desc), repeats)
    assert loop_count == vec_count, (loop_count, vec_count)
    record(results, "pair-count", loop_s, vec_s, {"pairs": int(vec_count)})

    # -- pair enumeration ---------------------------------------------------
    loop_pairs, loop_s = best_of(
        lambda: list(structural_join_pairs(tree, anc, desc)), repeats
    )
    vec_pairs, vec_s = best_of(lambda: vectorized_join_pairs(tree, anc, desc), repeats)
    loop_arr = np.asarray(loop_pairs, dtype=np.int64).T
    assert np.array_equal(
        pair_multiset(loop_arr[0], loop_arr[1]),
        pair_multiset(vec_pairs[0], vec_pairs[1]),
    )
    record(results, "pair-enumeration", loop_s, vec_s, {"pairs": len(vec_pairs[0])})

    # -- plan execution -----------------------------------------------------
    pattern = parse_xpath("//article[.//cite]//author")
    plan = next(iter(enumerate_plans(pattern)))
    loop_exec = LoopExecutor(tree, catalog)
    columnar_exec = PlanExecutor(tree, catalog)
    loop_rows, loop_s = best_of(lambda: loop_exec.execute(pattern, plan), repeats)
    (table, _stats), vec_s = best_of(
        lambda: columnar_exec.execute(pattern, plan), repeats
    )
    assert sorted(loop_rows) == sorted(table.rows)
    record(results, "plan-execution", loop_s, vec_s, {"bindings": len(table)})

    # -- catalog build ------------------------------------------------------
    loop_cat, loop_s = best_of(lambda: loop_catalog_build(tree), repeats)
    vec_cat, vec_s = best_of(lambda: vector_catalog_build(tree), repeats)
    assert loop_cat == vec_cat
    record(results, "catalog-build", loop_s, vec_s, {"tags": len(vec_cat)})

    # -- coverage build -----------------------------------------------------
    estimator = AnswerSizeEstimator(tree, grid_size=10)
    true_hist = estimator.true_histogram
    loop_cov, loop_s = best_of(
        lambda: loop_coverage_build(tree, anc, true_hist), repeats
    )
    vec_cov, vec_s = best_of(
        lambda: build_coverage_histogram(tree, anc, true_hist), repeats
    )
    assert loop_cov == dict(vec_cov.entries())
    record(results, "coverage-build", loop_s, vec_s, {"entries": len(loop_cov)})

    # -- batched estimation workload ---------------------------------------
    # Recursive (overlap-heavy) data: the pH-join path, where each
    # sequential estimate recomputes the coefficient kernel the batch
    # API caches per distinct descendant operand.
    org_tree = label_document(generate_orgchart(seed=42))
    tags = ["manager", "department", "employee", "email", "name"]
    rng = random.Random(5)
    combos = [f"//{a}//{d}" for a in tags for d in tags if a != d]
    weights = [1.0 / (k + 1) for k in range(len(combos))]
    queries = rng.choices(combos, weights=weights, k=100)
    workload_repeats = max(repeats, 5)

    def sequential():
        est = AnswerSizeEstimator(org_tree, grid_size=20)
        return [est.estimate(q) for q in queries]

    def batched():
        est = AnswerSizeEstimator(org_tree, grid_size=20)
        return est.estimate_many(queries), est

    seq_results, loop_s = best_of(sequential, workload_repeats)
    (batch_results, batch_est), vec_s = best_of(batched, workload_repeats)
    for s, b in zip(seq_results, batch_results):
        assert abs(s.value - b.value) <= 1e-9 * max(1.0, abs(s.value))
    record(
        results,
        "estimate-workload",
        loop_s,
        vec_s,
        {
            "queries": len(queries),
            "distinct_queries_estimated": len(set(queries)),
            "coefficient_kernels_cached": len(batch_est._coefficient_cache),
        },
    )

    artifact = {"meta": meta, "paths": results}
    Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
    print(f"wrote {args.out}")

    if not args.quick:
        for path in ("pair-enumeration", "plan-execution"):
            speedup = results[path]["speedup"]
            assert speedup >= 3.0, f"{path} speedup {speedup:.1f}x below 3x target"
        workload = results["estimate-workload"]["speedup"]
        assert workload > 1.0, f"estimate_many not faster ({workload:.2f}x)"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
