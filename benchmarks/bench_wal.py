"""Durability-tier benchmark: logged-batch overhead and recovery speed.

Two measurements over a DBLP-scale tree:

* **logged vs. in-memory ``apply_batch``** -- the same element-addressed
  update stream applied through a plain service and through a durable
  one (``open_durable``: every batch is serialised, appended to the
  write-ahead log, and fsync'd before it applies).  Both sides finish in
  the same database state (checked estimate-for-estimate before timing
  is trusted).  Acceptance bar: logged overhead <= 1.5x.

* **replay-from-checkpoint vs. rebuild-from-documents** -- recovering
  the durable service (load the newest checkpoint's summaries + label
  arrays, replay the log suffix) against the no-WAL alternative of
  re-parsing the exported documents and rebuilding every statistic from
  scratch.  Acceptance bar: replay beats the rebuild.

Writes a ``BENCH_wal.json`` artifact; ``check_perf_floors.py`` guards
``replay_vs_rebuild_speedup`` (floor 1.0x) and ``logged_overhead``
(ceiling 1.5x) in CI.

Run:  python benchmarks/bench_wal.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_dblp  # noqa: E402
from repro.predicates.base import TagPredicate  # noqa: E402
from repro.service import DeleteOp, EstimationService, InsertOp  # noqa: E402
from repro.xmltree.parser import parse_document  # noqa: E402
from repro.xmltree.tree import Element  # noqa: E402
from repro.xmltree.writer import write_document  # noqa: E402

HOT_TAGS = ["article", "author", "title", "cite"]
QUERIES = ["//article//author", "//article//cite", "//dblp//title"]


def make_subtree(size: int) -> Element:
    root = Element("note")
    for k in range(size):
        author = Element("author")
        author.append_text(f"Author {k}")
        root.append(author)
    return root


def prime(service) -> None:
    """Build the full statistics set, as ``build``/warm-start serving
    does: every tag's position histogram + coverage, plus TRUE."""
    for stats in service.catalog.register_all_tags():
        service.position_histogram(stats.predicate)
        service.coverage_histogram(stats.predicate)
    _ = service.estimator.true_histogram


def update_stream(rng: random.Random, count: int, article_count: int):
    """``(kind, article_ordinal, subtree_size)``; each article targeted
    at most once so the stream replays identically element-addressed."""
    ordinals = rng.sample(range(article_count), count)
    ops = []
    for ordinal in ordinals:
        if rng.random() < 0.6:
            ops.append(("insert", ordinal, rng.randrange(1, 4)))
        else:
            ops.append(("delete", ordinal, 0))
    return ops


def resolve_targets(service, ops):
    articles = service.catalog.stats(TagPredicate("article")).node_indices
    return [
        (kind, service.tree.elements[int(articles[ordinal])], size)
        for kind, ordinal, size in ops
    ]


def as_batches(stream, batch_size):
    return [
        [
            InsertOp(element, make_subtree(size))
            if kind == "insert"
            else DeleteOp(element)
            for kind, element, size in stream[start : start + batch_size]
        ]
        for start in range(0, len(stream), batch_size)
    ]


def run_memory(document, ops, batch_size):
    service = EstimationService(document, grid_size=10, spacing=64)
    prime(service)
    batches = as_batches(resolve_targets(service, ops), batch_size)
    started = time.perf_counter()
    for batch in batches:
        service.apply_batch(batch)
    elapsed = time.perf_counter() - started
    return service, {
        "updates": len(ops),
        "batches": len(batches),
        "batch_size": batch_size,
        "update_seconds": elapsed,
        "updates_per_sec": len(ops) / elapsed,
        "final_nodes": len(service),
    }


def run_logged(document, ops, batch_size, wal_dir, replay_batches):
    service = EstimationService.open_durable(
        wal_dir, document, grid_size=10, spacing=64, checkpoint_every=10**9
    )
    prime(service)
    stream = resolve_targets(service, ops)
    timed, suffix = stream[: len(ops) - replay_batches * batch_size], None
    batches = as_batches(timed, batch_size)
    started = time.perf_counter()
    for batch in batches:
        service.apply_batch(batch)
    elapsed = time.perf_counter() - started
    prefix_nodes = len(service)
    # Cut a checkpoint, then log a replay suffix past it: that suffix is
    # what the recovery measurement replays.
    service.checkpoint()
    suffix = as_batches(stream[len(timed) :], batch_size)
    for batch in suffix:
        service.apply_batch(batch)
    stats = {
        "updates": len(timed),
        "batches": len(batches),
        "batch_size": batch_size,
        "update_seconds": elapsed,
        "updates_per_sec": len(timed) / elapsed,
        "prefix_nodes": prefix_nodes,
        "final_nodes": len(service),
        "suffix_batches": len(suffix),
    }
    return service, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer ops (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_wal.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    scale = 0.5 if args.quick else 2.2
    op_count = 100 if args.quick else 320
    batch_size = 20 if args.quick else 40
    replay_batches = 2  # batches logged past the last checkpoint

    rng = random.Random(11)
    document = generate_dblp(seed=7, scale=scale)
    nodes = document.count_nodes()
    article_count = sum(1 for e in document.iter_elements() if e.tag == "article")
    print(f"synthetic dblp tree: {nodes} nodes, {article_count} articles (scale {scale})")
    ops = update_stream(rng, op_count, article_count)

    workdir = Path(tempfile.mkdtemp(prefix="bench_wal_"))
    try:
        # Both sides time the same prefix of the stream; the suffix past
        # the durable run's last checkpoint only feeds the recovery
        # measurement.
        timed_ops = ops[: len(ops) - replay_batches * batch_size]
        memory_service, memory = run_memory(
            generate_dblp(seed=7, scale=scale), timed_ops, batch_size
        )
        print(
            f"in-memory        {memory['updates']:4d} updates  "
            f"{memory['updates_per_sec']:10.1f} updates/s"
        )
        wal_dir = workdir / "wal"
        logged_service, logged = run_logged(
            generate_dblp(seed=7, scale=scale), ops, batch_size, wal_dir,
            replay_batches,
        )
        print(
            f"logged (fsync)   {logged['updates']:4d} updates  "
            f"{logged['updates_per_sec']:10.1f} updates/s"
        )
        # Same stream, same semantics: the timed sections must end in
        # the same database state for the comparison to mean anything.
        assert logged["prefix_nodes"] == memory["final_nodes"]
        overhead = memory["updates_per_sec"] / logged["updates_per_sec"]
        print(f"logged-batch overhead: {overhead:.2f}x (bar: <= 1.5x)")

        final_state = {q: logged_service.estimate(q).value for q in QUERIES}
        export = workdir / "final.xml"
        export.write_text(write_document(logged_service.documents[0]))
        logged_service.close()

        # Recovery: newest checkpoint + replay of the logged suffix.
        started = time.perf_counter()
        recovered = EstimationService.open_durable(wal_dir)
        recovery_seconds = time.perf_counter() - started
        info = recovered.recovery_info
        for query in QUERIES:
            assert recovered.estimate(query).value == final_state[query], query
        recovered.differential_check(QUERIES)
        recovered.close()

        # The no-WAL alternative: re-parse the exported documents and
        # rebuild + re-prime every statistic from scratch.
        started = time.perf_counter()
        rebuilt = EstimationService(
            parse_document(export.read_text()), grid_size=10, spacing=64
        )
        prime(rebuilt)
        rebuild_seconds = time.perf_counter() - started
        rebuilt.close()

        replay_speedup = rebuild_seconds / recovery_seconds
        print(
            f"recovery: checkpoint lsn {info.checkpoint_lsn}, "
            f"{info.batches_replayed} batch(es) replayed in "
            f"{recovery_seconds:.3f}s; rebuild-from-documents "
            f"{rebuild_seconds:.3f}s -> {replay_speedup:.1f}x"
        )

        memory_service.close()
        artifact = {
            "meta": {
                "nodes": nodes,
                "articles": article_count,
                "quick": args.quick,
                "grid": 10,
                "seed": 11,
                "wal_bytes": (wal_dir / "wal.log").stat().st_size,
            },
            "memory": memory,
            "logged": logged,
            "logged_overhead": overhead,
            "recovery": {
                "checkpoint_lsn": info.checkpoint_lsn,
                "batches_replayed": info.batches_replayed,
                "recovery_seconds": recovery_seconds,
                "rebuild_seconds": rebuild_seconds,
            },
            "replay_vs_rebuild_speedup": replay_speedup,
        }
        Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.out}")

        if not args.quick:
            assert nodes >= 100_000, f"full run must cover >= 1e5 nodes, got {nodes}"
            assert overhead <= 1.5, (
                f"logged-batch overhead {overhead:.2f}x above the 1.5x bar"
            )
            assert replay_speedup >= 1.0, (
                f"replay {replay_speedup:.2f}x does not beat rebuild-from-documents"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
