"""Experiment CMP -- compound predicates in queries (paper Section 3.4).

The paper builds histograms for content predicates (``conf``/``journal``
prefixes) and compound decade predicates ("adding up 10 corresponding
primitive histograms"), and synthesises histograms for boolean
combinations via the TRUE histogram.  This bench runs pattern queries
whose nodes carry such predicates and compares two summary strategies:

* *exact-built* -- scan the data once and build the compound
  predicate's histogram directly;
* *synthesised* -- combine the component histograms with the TRUE
  histogram under the in-cell independence assumption (no data access).
"""

from __future__ import annotations

from conftest import emit

from repro.histograms.truehist import synthesize_histogram
from repro.estimation.phjoin import ph_join
from repro.predicates.base import (
    ContentEqualsPredicate,
    ContentPrefixPredicate,
    NumericRangePredicate,
    TagPredicate,
)
from repro.predicates.boolean import OrPredicate
from repro.query.matcher import count_pairs
from repro.utils.tables import format_table


def test_compound_predicate_queries(benchmark, dblp_estimator):
    estimator = dblp_estimator
    article = TagPredicate("article")
    nineties = NumericRangePredicate(1990, 1999, tag="year", label="1990's")
    eighties = NumericRangePredicate(1980, 1989, tag="year", label="1980's")
    conf_cite = ContentPrefixPredicate("conf", tag="cite")
    journal_cite = ContentPrefixPredicate("journal", tag="cite")

    cases = [
        ("article // 1990's", article, nineties),
        ("article // 1980's", article, eighties),
        ("article // cite^=conf", article, conf_cite),
        ("inproceedings // cite^=journal", TagPredicate("inproceedings"), journal_cite),
    ]

    def estimate_all():
        return [
            estimator.estimate_pair(anc, desc, method="auto").value
            for (_label, anc, desc) in cases
        ]

    benchmark(estimate_all)

    rows = []
    for label, anc, desc in cases:
        estimate = estimator.estimate_pair(anc, desc, method="auto").value
        real = count_pairs(
            estimator.tree,
            estimator.catalog.stats(anc).node_indices,
            estimator.catalog.stats(desc).node_indices,
        )
        rows.append([label, round(estimate, 1), real,
                     round(estimate / real, 3) if real else "-"])
        assert real > 0
        assert abs(estimate - real) / real < 0.35, label
    table = format_table(
        ["query", "estimate", "real", "est/real"],
        rows,
        title="Compound/content predicate queries (auto method, 10x10 grids)",
    )

    # Synthesised vs exact-built histogram for the decade OR-compound.
    years = [ContentEqualsPredicate(str(y), tag="year") for y in range(1990, 2000)]
    base = {p: estimator.position_histogram(p) for p in years}
    decade_or = OrPredicate(*years, label="1990's (OR)")
    synthesized = synthesize_histogram(decade_or, base, estimator.true_histogram)
    exact_built = estimator.position_histogram(nineties)
    anc_hist = estimator.position_histogram(article)
    est_synth = ph_join(anc_hist, synthesized).value
    est_exact = ph_join(anc_hist, exact_built).value
    synth_rows = [
        ["exact-built histogram", round(exact_built.total(), 1), round(est_exact, 1)],
        ["synthesised (10 year histograms)", round(synthesized.total(), 1),
         round(est_synth, 1)],
    ]
    synth_table = format_table(
        ["summary strategy", "histogram mass", "pH-join estimate vs article"],
        synth_rows,
        title=(
            "Synthesis fidelity: the decade histogram assembled from its ten "
            "component year histograms matches the data-built one (Section 3.4)"
        ),
    )
    emit("compound", table + "\n\n" + synth_table)

    # The synthesis must agree with the exact-built histogram closely
    # (years are disjoint, so the OR-composition is near-exact).
    assert synthesized.total() == exact_built.total() or (
        abs(synthesized.total() - exact_built.total()) / exact_built.total() < 0.05
    )
    assert abs(est_synth - est_exact) / max(est_exact, 1) < 0.05
