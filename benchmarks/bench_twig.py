"""Experiment TWIG -- complex pattern queries (paper Section 5.2 and the
tech-report extension).

The paper says it ran "all types of queries" and that the summary
structures support arbitrarily complex patterns through cascading.
This bench runs 3- and 4-node twigs on both data sets, reporting the
cascade estimate, the naive product, and the real answer.
"""

from __future__ import annotations

import math

from conftest import emit

from repro.utils.tables import format_table
from repro.workloads import DBLP_TWIG_QUERIES, ORGCHART_TWIG_QUERIES


def run_workload(estimator, queries):
    rows = []
    for xpath in queries:
        from repro.query.xpath import parse_xpath

        pattern = parse_xpath(xpath)
        estimate = estimator.estimate(pattern)
        real = estimator.real_answer(pattern)
        naive = 1.0
        for node in pattern.nodes():
            naive *= max(estimator.catalog.stats(node.predicate).count, 1)
        rows.append(
            [
                xpath,
                pattern.size(),
                naive,
                round(estimate.value, 1),
                f"{estimate.elapsed_seconds:.6f}",
                real,
                round(estimate.value / real, 2) if real else "-",
            ]
        )
    return rows


def test_twig_estimation(benchmark, dblp_estimator, orgchart_estimator):
    # Warm histogram caches so the benchmark isolates estimation.
    run_workload(dblp_estimator, DBLP_TWIG_QUERIES)
    run_workload(orgchart_estimator, ORGCHART_TWIG_QUERIES)

    benchmark(lambda: run_workload(dblp_estimator, DBLP_TWIG_QUERIES))

    rows = run_workload(dblp_estimator, DBLP_TWIG_QUERIES) + run_workload(
        orgchart_estimator, ORGCHART_TWIG_QUERIES
    )
    table = format_table(
        ["query", "nodes", "naive", "twig est", "est time(s)", "real", "est/real"],
        rows,
        title="Complex twig pattern estimation (10x10 grids)",
    )
    emit("twig", table)

    # Every twig estimate must beat the naive product on log error, and
    # stay within 1.5 orders of magnitude of the real answer.
    for row in rows:
        naive, estimate, real = float(row[2]), float(row[3]), float(row[5])
        if real <= 0:
            continue
        estimate = max(estimate, 1e-9)
        assert abs(math.log10(estimate / real)) < abs(math.log10(naive / real))
        assert abs(math.log10(estimate / real)) < 1.5, row[0]
