"""Experiment T3 -- paper Table 3: synthetic data set predicates.

Regenerates the predicate characteristics of the manager/department/
employee data set, checking the overlap-property pattern the paper
reports (manager/department overlap through recursion, the rest not).
The benchmarked kernel is full catalog construction (tag scan +
no-overlap detection) from the labeled tree.
"""

from __future__ import annotations

from conftest import emit

from repro.predicates.catalog import PredicateCatalog
from repro.utils.tables import format_table

PAPER_TABLE3 = {
    "manager": (44, "overlap"),
    "department": (270, "overlap"),
    "employee": (473, "no overlap"),
    "email": (173, "no overlap"),
    "name": (1002, "no overlap"),
}


def test_table3_synthetic_predicates(benchmark, orgchart_estimator):
    tree = orgchart_estimator.tree

    def build_catalog():
        catalog = PredicateCatalog(tree)
        return catalog.register_all_tags()

    all_stats = benchmark(build_catalog)

    rows = []
    for stats in all_stats:
        name = stats.predicate.name
        overlap = "no overlap" if stats.no_overlap else "overlap"
        paper_count, paper_overlap = PAPER_TABLE3.get(name, ("-", None))
        if paper_overlap is not None:
            assert overlap == paper_overlap, name
        rows.append(
            [name, stats.predicate.description(), stats.count, overlap, paper_count]
        )

    table = format_table(
        ["Predicate Name", "Predicate", "Node Count", "Overlap Property", "Paper Count"],
        rows,
        title=(
            f"Table 3 -- synthetic orgchart predicate characteristics "
            f"({len(tree):,} nodes, max depth {int(tree.level.max())})"
        ),
    )
    emit("table3", table)
