"""Experiment T4 -- paper Table 4: simple queries on the synthetic set.

Seven queries mixing overlap and no-overlap ancestors.  The paper's
pattern: pH-join estimates are close for overlap ancestors (deep
recursion), the no-overlap algorithm is markedly better where it
applies, and N/A is reported where it does not.
"""

from __future__ import annotations

from conftest import emit

from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table
from repro.utils.timing import median_time
from repro.workloads import ORGCHART_SIMPLE_QUERIES

PAPER_TABLE4 = {
    ("manager", "department"): (11_880, 656, "N/A", 761),
    ("manager", "employee"): (20_812, 1_205, "N/A", 1_395),
    ("manager", "email"): (7_612, 429, "N/A", 491),
    ("department", "employee"): (127_710, 2_914, "N/A", 1_663),
    ("department", "email"): (46_710, 1_082, "N/A", 473),
    ("employee", "name"): (473_946, 8_070, 559, 688),
    ("employee", "email"): (81_829, 1_391, 96, 99),
}


def test_table4_synthetic_queries(benchmark, orgchart_estimator):
    estimator = orgchart_estimator
    for anc, desc in ORGCHART_SIMPLE_QUERIES:
        estimator.position_histogram(TagPredicate(anc))
        estimator.position_histogram(TagPredicate(desc))
        estimator.coverage_histogram(TagPredicate(anc))

    def estimate_all_auto():
        return [
            estimator.estimate_pair(
                TagPredicate(anc), TagPredicate(desc), method="auto"
            ).value
            for anc, desc in ORGCHART_SIMPLE_QUERIES
        ]

    benchmark(estimate_all_auto)

    rows = []
    for anc, desc in ORGCHART_SIMPLE_QUERIES:
        pa, pd = TagPredicate(anc), TagPredicate(desc)
        naive = estimator.estimate_pair(pa, pd, method="naive").value
        overlap_result, overlap_time = median_time(
            lambda: estimator.estimate_pair(pa, pd, method="ph-join"), 5
        )
        if estimator.is_no_overlap(pa):
            nov_result, nov_time = median_time(
                lambda: estimator.estimate_pair(pa, pd, method="no-overlap"), 5
            )
            nov_value: object = round(nov_result.value, 1)
            nov_time_text = f"{nov_time:.6f}"
        else:
            nov_value, nov_time_text = "N/A", "N/A"
        real = estimator.real_answer(f"//{anc}//{desc}")
        rows.append(
            [
                anc,
                desc,
                naive,
                round(overlap_result.value, 1),
                f"{overlap_time:.6f}",
                nov_value,
                nov_time_text,
                real,
            ]
        )

    table = format_table(
        [
            "Ancs",
            "Desc",
            "Naive Est",
            "Overlap Est",
            "Ovl Time(s)",
            "No-Ovl Est",
            "NoOvl Time(s)",
            "Real",
        ],
        rows,
        title="Table 4 -- synthetic data set simple query estimation (10x10 grids)",
    )
    paper = format_table(
        ["Ancs", "Desc", "Naive", "Overlap Est", "No-Ovl Est", "Real"],
        [[a, d, *values] for (a, d), values in PAPER_TABLE4.items()],
        title="Paper's Table 4 (original IBM-generator data), for shape comparison",
    )
    emit("table4", table + "\n\n" + paper)

    # Regime assertions: N/A exactly where the paper has N/A, and the
    # no-overlap estimator beats pH-join on the employee rows.
    by_query = {(r[0], r[1]): r for r in rows}
    for anc in ("manager", "department"):
        assert by_query[(anc, "employee") if (anc, "employee") in by_query else (anc, "department")][5] == "N/A"
    for anc, desc in (("employee", "name"), ("employee", "email")):
        row = by_query[(anc, desc)]
        real = row[7]
        assert abs(float(row[5]) - real) <= abs(float(row[3]) - real)
