"""Epoch-engine benchmark: O(1) snapshots, incremental checkpoints,
and WAL compaction.

Three measurements over a DBLP-scale tree (full run >= 1e5 nodes):

* **snapshot construction** -- the epoch-pinning
  :meth:`~repro.service.service.EstimationService.snapshot` (O(#predicates)
  reference grabs) against the legacy deep-pin construction it replaced
  (element-list copy + an ``O(g)`` value copy of every maintained
  histogram).  Estimates through the snapshot must be bit-identical to
  the live service.  Acceptance bar: >= 10x faster.

* **incremental vs full checkpoint bytes** -- a checkpoint cut after a
  small batch archives only the splice delta + changed histogram pages
  (epoch-addressed; unchanged pages are manifest references into the
  base checkpoint).  Acceptance bar: < 25% of the bytes of a full
  checkpoint, with recovery bit-identical.

* **compacted replay** -- after a logged workload with periodic
  checkpoints, ``compact()`` drops the dead log prefix and superseded
  checkpoints; recovery from the compacted directory must stay
  bit-identical and beat rebuilding from exported documents.

Writes a ``BENCH_epoch.json`` artifact; ``check_perf_floors.py`` guards
``snapshot_speedup``, ``checkpoint_bytes_speedup``, and
``compacted_replay_speedup`` (floor 1.0x) in CI.

Run:  python benchmarks/bench_epoch.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.datasets import generate_dblp  # noqa: E402
from repro.estimation.estimator import AnswerSizeEstimator  # noqa: E402
from repro.histograms.position import PositionHistogram  # noqa: E402
from repro.labeling.interval import LabeledTree  # noqa: E402
from repro.predicates.base import TagPredicate  # noqa: E402
from repro.predicates.catalog import PredicateCatalog  # noqa: E402
from repro.service import DeleteOp, EstimationService, InsertOp, compact  # noqa: E402
from repro.service.wal import (  # noqa: E402
    LOG_NAME,
    checkpoint_paths,
    list_checkpoints,
    load_checkpoint,
)
from repro.xmltree.parser import parse_document  # noqa: E402
from repro.xmltree.tree import Element  # noqa: E402
from repro.xmltree.writer import write_document  # noqa: E402

QUERIES = ["//article//author", "//article//cite", "//dblp//title"]


def prime(service) -> None:
    for stats in service.catalog.register_all_tags():
        service.position_histogram(stats.predicate)
        service.coverage_histogram(stats.predicate)
    _ = service.estimator.true_histogram


def legacy_snapshot(service):
    """The pre-epoch ServiceSnapshot construction: one element-list
    copy plus an O(g) value copy of every delta-maintained histogram
    (kept here as the measured baseline)."""
    live = service.tree
    tree = LabeledTree(
        live.elements,  # LabeledTree copies the sequence into a new list
        live.start,
        live.end,
        live.level,
        live.parent_index,
        live.max_label,
    )
    catalog = PredicateCatalog(tree)
    catalog._stats = {
        predicate: replace(stats)
        for predicate, stats in service.catalog._stats.items()
    }
    if service.catalog._tag_indices is not None:
        catalog._tag_indices = dict(service.catalog._tag_indices)
    source = service.estimator
    estimator = AnswerSizeEstimator(tree, grid_size=source.grid.size, catalog=catalog)
    estimator.grid = source.grid
    estimator.schema = source.schema

    def value_copy(histogram):
        return PositionHistogram(
            histogram.grid, dict(histogram.cells()), name=histogram.name
        )

    estimator._true_hist = (
        value_copy(source._true_hist) if source._true_hist is not None else None
    )
    estimator._position_cache = {
        predicate: value_copy(histogram)
        for predicate, histogram in source._position_cache.items()
    }
    estimator._coverage_cache = dict(source._coverage_cache)
    estimator._level_cache = dict(source._level_cache)
    estimator._coefficient_cache = dict(source._coefficient_cache)
    return estimator


def small_batch_ops(service, rng, count):
    articles = service.catalog.stats(TagPredicate("article")).node_indices
    ordinals = rng.sample(range(len(articles)), count)
    ops = []
    for k, ordinal in enumerate(ordinals):
        target = service.tree.elements[int(articles[ordinal])]
        if k % 3 == 2:
            ops.append(DeleteOp(target))
        else:
            note = Element("note")
            author = Element("author")
            author.append_text(f"Epoch {ordinal}")
            note.append(author)
            ops.append(InsertOp(target, note))
    return ops


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer ops (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_epoch.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    scale = 0.5 if args.quick else 2.2
    snapshot_iters = 10 if args.quick else 40
    batch_ops = 8 if args.quick else 20
    workload_batches = 4 if args.quick else 10

    document = generate_dblp(seed=7, scale=scale)
    nodes = document.count_nodes()
    print(f"synthetic dblp tree: {nodes} nodes (scale {scale})")

    workdir = Path(tempfile.mkdtemp(prefix="bench_epoch_"))
    try:
        # -- 1. snapshot construction ---------------------------------------
        service = EstimationService(document, grid_size=10, spacing=64)
        prime(service)
        live_values = {q: service.estimate(q).value for q in QUERIES}

        started = time.perf_counter()
        snapshots = [service.snapshot() for _ in range(snapshot_iters)]
        new_seconds = (time.perf_counter() - started) / snapshot_iters
        for q in QUERIES:  # bit-identical live vs snapshot
            assert snapshots[0].estimate(q).value == live_values[q], q
        for snapshot in snapshots:
            snapshot.close()

        started = time.perf_counter()
        for _ in range(max(2, snapshot_iters // 4)):
            legacy = legacy_snapshot(service)
        legacy_seconds = (time.perf_counter() - started) / max(2, snapshot_iters // 4)
        for q in QUERIES:
            assert legacy.estimate(q).value == live_values[q], q
        snapshot_speedup = legacy_seconds / new_seconds
        print(
            f"snapshot construction: epoch pin {new_seconds * 1e6:8.1f} us, "
            f"legacy deep pin {legacy_seconds * 1e6:8.1f} us "
            f"-> {snapshot_speedup:.1f}x"
        )
        service.close()

        # -- 2. incremental vs full checkpoint bytes ------------------------
        wal_dir = workdir / "wal"
        service = EstimationService.open_durable(
            wal_dir,
            generate_dblp(seed=7, scale=scale),
            grid_size=10,
            spacing=64,
            checkpoint_every=10**9,
        )
        prime(service)
        service.checkpoint()  # full base with primed summaries
        full_bytes = sum(
            p.stat().st_size for p in checkpoint_paths(wal_dir, 0)
        )
        rng = random.Random(11)
        service.apply_batch(small_batch_ops(service, rng, batch_ops))
        incr_lsn = service.checkpoint()
        incr_bytes = sum(
            p.stat().st_size for p in checkpoint_paths(wal_dir, incr_lsn)
        )
        assert "incremental" in load_checkpoint(wal_dir, incr_lsn).meta
        fraction = incr_bytes / full_bytes
        print(
            f"checkpoint bytes: full {full_bytes:,}, incremental {incr_bytes:,} "
            f"({fraction:.1%} of full) after a {batch_ops}-op batch"
        )

        # -- 3. compaction + recovery ---------------------------------------
        for _ in range(workload_batches):
            service.apply_batch(small_batch_ops(service, rng, batch_ops))
            service.checkpoint()
        final_values = {q: service.estimate(q).value for q in QUERIES}
        export = workdir / "final.xml"
        export.write_text(write_document(service.documents[0]))
        service.close()

        wal_bytes_before = (wal_dir / LOG_NAME).stat().st_size
        checkpoints_before = len(list_checkpoints(wal_dir))
        stats = compact(wal_dir, keep_checkpoints=2)
        wal_bytes_after = (wal_dir / LOG_NAME).stat().st_size

        started = time.perf_counter()
        recovered = EstimationService.open_durable(wal_dir)
        recovery_seconds = time.perf_counter() - started
        for q in QUERIES:  # bit-identical live vs recovered
            assert recovered.estimate(q).value == final_values[q], q
        recovered.differential_check(QUERIES)
        recovered.close()

        started = time.perf_counter()
        rebuilt = EstimationService(
            parse_document(export.read_text()), grid_size=10, spacing=64
        )
        prime(rebuilt)
        rebuild_seconds = time.perf_counter() - started
        rebuilt.close()
        replay_speedup = rebuild_seconds / recovery_seconds
        print(
            f"compaction: log {wal_bytes_before:,} -> {wal_bytes_after:,} bytes, "
            f"checkpoints {checkpoints_before} -> "
            f"{len(list_checkpoints(wal_dir))}; compacted recovery "
            f"{recovery_seconds:.3f}s vs rebuild {rebuild_seconds:.3f}s "
            f"-> {replay_speedup:.1f}x"
        )

        artifact = {
            "meta": {"nodes": nodes, "quick": args.quick, "grid": 10, "seed": 11},
            "snapshot": {
                "iterations": snapshot_iters,
                "epoch_seconds_per": new_seconds,
                "legacy_seconds_per": legacy_seconds,
            },
            "snapshot_speedup": snapshot_speedup,
            "checkpoint": {
                "full_bytes": full_bytes,
                "incremental_bytes": incr_bytes,
                "incremental_fraction": fraction,
                "batch_ops": batch_ops,
            },
            "checkpoint_bytes_speedup": full_bytes / incr_bytes,
            "compaction": {
                "wal_bytes_before": wal_bytes_before,
                "wal_bytes_after": wal_bytes_after,
                "records_dropped": stats.records_dropped,
                "checkpoints_pruned": len(stats.checkpoints_pruned),
                "recovery_seconds": recovery_seconds,
                "rebuild_seconds": rebuild_seconds,
            },
            "compacted_replay_speedup": replay_speedup,
        }
        Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.out}")

        if not args.quick:
            assert nodes >= 100_000, f"full run must cover >= 1e5 nodes, got {nodes}"
            assert snapshot_speedup >= 10.0, (
                f"snapshot construction {snapshot_speedup:.1f}x below the 10x bar"
            )
            assert fraction < 0.25, (
                f"incremental checkpoint is {fraction:.1%} of a full one "
                f"(bar: < 25%)"
            )
            assert replay_speedup >= 1.0, (
                f"compacted recovery {replay_speedup:.2f}x does not beat rebuild"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
