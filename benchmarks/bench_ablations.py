"""Experiment ABL -- ablations on the design choices DESIGN.md calls out.

1. Ancestor- vs descendant-based estimation (paper Section 3.2 derives
   both): totals agree on guaranteed regions, differ on boundary
   apportioning -- measure both against the real answer.
2. Coverage on/off for no-overlap ancestors: how much accuracy the
   coverage histogram buys (paper Section 4).
3. Parent-child edges estimated as ancestor-descendant: the documented
   approximation of the twig cascade -- measure the gap on / vs //
   queries where the data makes them differ.
"""

from __future__ import annotations

from conftest import emit

from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table


def test_ablation_based_direction(benchmark, dblp_estimator, orgchart_estimator):
    cases = [
        (dblp_estimator, "article", "author"),
        (dblp_estimator, "article", "cite"),
        (orgchart_estimator, "department", "employee"),
        (orgchart_estimator, "manager", "email"),
    ]

    def run_all():
        out = []
        for estimator, anc, desc in cases:
            pa, pd = TagPredicate(anc), TagPredicate(desc)
            anc_based = estimator.estimate_pair(pa, pd, method="ph-join", based="ancestor")
            desc_based = estimator.estimate_pair(pa, pd, method="ph-join", based="descendant")
            real = estimator.real_answer(f"//{anc}//{desc}")
            out.append((anc, desc, anc_based.value, desc_based.value, real))
        return out

    results = benchmark(run_all)

    rows = []
    for anc, desc, anc_value, desc_value, real in results:
        rows.append(
            [
                f"{anc}//{desc}",
                round(anc_value, 1),
                round(desc_value, 1),
                real,
                round(anc_value / real, 2) if real else "-",
                round(desc_value / real, 2) if real else "-",
            ]
        )
        # Both directions target the same quantity: same order of
        # magnitude always.
        assert max(anc_value, desc_value) <= 10 * max(min(anc_value, desc_value), 1)

    table = format_table(
        ["query", "ancestor-based", "descendant-based", "real", "anc/real", "desc/real"],
        rows,
        title="Ablation 1 -- ancestor- vs descendant-based pH-join",
    )
    emit("ablation_based", table)


def test_ablation_coverage_value(benchmark, dblp_estimator):
    """Coverage on/off: error ratio of pH-join vs no-overlap."""
    queries = [("article", "author"), ("article", "cite"), ("article", "cdrom"), ("book", "cdrom")]

    def run_all():
        out = []
        for anc, desc in queries:
            pa, pd = TagPredicate(anc), TagPredicate(desc)
            without = dblp_estimator.estimate_pair(pa, pd, method="ph-join").value
            with_cov = dblp_estimator.estimate_pair(pa, pd, method="no-overlap").value
            real = dblp_estimator.real_answer(f"//{anc}//{desc}")
            out.append((anc, desc, without, with_cov, real))
        return out

    results = benchmark(run_all)

    rows = []
    improvements = []
    for anc, desc, without, with_cov, real in results:
        err_without = abs(without - real) / max(real, 1)
        err_with = abs(with_cov - real) / max(real, 1)
        improvements.append(err_without / max(err_with, 1e-9))
        rows.append(
            [
                f"{anc}//{desc}",
                round(without, 1),
                round(with_cov, 1),
                real,
                round(err_without, 3),
                round(err_with, 3),
            ]
        )
    table = format_table(
        ["query", "pH-join (no coverage)", "no-overlap (coverage)", "real",
         "rel err w/o", "rel err w/"],
        rows,
        title="Ablation 2 -- value of the coverage histogram on no-overlap ancestors",
    )
    emit("ablation_coverage", table)
    # Coverage must help dramatically on this data set (paper Table 2).
    assert max(improvements) > 5


def test_ablation_parent_child_approximation(benchmark, orgchart_estimator):
    """// vs /: the estimator treats both as //, so the / estimate
    equals the // estimate while real answers differ -- quantify it."""
    pairs = [("department", "employee"), ("manager", "department"), ("employee", "name")]

    def run_all():
        out = []
        for anc, desc in pairs:
            est = orgchart_estimator.estimate(f"//{anc}//{desc}").value
            real_desc = orgchart_estimator.real_answer(f"//{anc}//{desc}")
            real_child = orgchart_estimator.real_answer(f"//{anc}/{desc}")
            out.append((anc, desc, est, real_desc, real_child))
        return out

    results = benchmark(run_all)

    rows = []
    for anc, desc, est, real_desc, real_child in results:
        rows.append(
            [
                f"{anc} -> {desc}",
                round(est, 1),
                real_desc,
                real_child,
                round(real_child / real_desc, 2) if real_desc else "-",
            ]
        )
        assert real_child <= real_desc
    table = format_table(
        ["edge", "estimate (// semantics)", "real //", "real /", "child/desc ratio"],
        rows,
        title="Ablation 3 -- parent-child edges approximated as ancestor-descendant",
    )
    emit("ablation_parent_child", table)
