"""Perf floor guard for CI: no recorded speedup may fall below 1.0.

Reads one or more benchmark JSON artifacts (``BENCH_hotpaths.json``,
``BENCH_batch.json``, ...) and collects every numeric value stored
under a key named ``speedup`` or ending in ``_speedup``, at any
nesting depth.  A value below the floor means a "fast path" got slower
than the baseline it exists to beat -- the guard fails the build
rather than letting the regression ride along silently.

Run:  python benchmarks/check_perf_floors.py BENCH_hotpaths.json BENCH_batch.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOOR = 1.0


def collect_speedups(payload, path=""):
    """Yield ``(json_path, value)`` for every recorded speedup."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            where = f"{path}.{key}" if path else key
            if (key == "speedup" or key.endswith("_speedup")) and isinstance(
                value, (int, float)
            ):
                yield where, float(value)
            else:
                yield from collect_speedups(value, where)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            yield from collect_speedups(value, f"{path}[{index}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+", help="benchmark JSON files")
    parser.add_argument(
        "--floor", type=float, default=FLOOR, help="minimum allowed speedup"
    )
    args = parser.parse_args(argv)

    failures = []
    total = 0
    for artifact in args.artifacts:
        path = Path(artifact)
        if not path.exists():
            print(f"perf floor: MISSING artifact {artifact}")
            failures.append((artifact, "missing"))
            continue
        payload = json.loads(path.read_text())
        found = list(collect_speedups(payload))
        if not found:
            print(f"perf floor: {artifact} records no speedups")
            failures.append((artifact, "no speedups recorded"))
            continue
        for where, value in found:
            total += 1
            status = "ok" if value >= args.floor else "FAIL"
            print(f"perf floor: {artifact}:{where} = {value:.2f}x {status}")
            if value < args.floor:
                failures.append((f"{artifact}:{where}", value))

    if failures:
        print(f"perf floor: {len(failures)} failure(s) below {args.floor:.1f}x")
        return 1
    print(f"perf floor: all {total} recorded speedups >= {args.floor:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
