"""Perf floor guard for CI: recorded speedups and overheads must hold.

Reads one or more benchmark JSON artifacts (``BENCH_hotpaths.json``,
``BENCH_batch.json``, ``BENCH_wal.json``, ...) and checks, at any
nesting depth:

* every numeric value stored under a key named ``speedup`` or ending in
  ``_speedup`` must be >= the floor (default 1.0) -- a "fast path"
  below it got slower than the baseline it exists to beat;
* every numeric value stored under a key named ``overhead`` or ending
  in ``_overhead`` must be <= the ceiling (default 1.5) -- a safety
  layer (e.g. the write-ahead log's fsync-before-apply) whose tax grew
  past its budget fails the build instead of riding along silently.

Run:  python benchmarks/check_perf_floors.py BENCH_hotpaths.json BENCH_wal.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOOR = 1.0
OVERHEAD_CEILING = 1.5


def collect_metrics(payload, path=""):
    """Yield ``(kind, json_path, value)`` for every recorded speedup
    (``kind == "speedup"``) and overhead (``kind == "overhead"``)."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            where = f"{path}.{key}" if path else key
            is_number = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
            if (key == "speedup" or key.endswith("_speedup")) and is_number:
                yield "speedup", where, float(value)
            elif (key == "overhead" or key.endswith("_overhead")) and is_number:
                yield "overhead", where, float(value)
            else:
                yield from collect_metrics(value, where)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            yield from collect_metrics(value, f"{path}[{index}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+", help="benchmark JSON files")
    parser.add_argument(
        "--floor", type=float, default=FLOOR, help="minimum allowed speedup"
    )
    parser.add_argument(
        "--overhead-ceiling",
        type=float,
        default=OVERHEAD_CEILING,
        help="maximum allowed overhead ratio",
    )
    args = parser.parse_args(argv)

    failures = []
    total = 0
    for artifact in args.artifacts:
        path = Path(artifact)
        if not path.exists():
            print(f"perf floor: MISSING artifact {artifact}")
            failures.append((artifact, "missing"))
            continue
        payload = json.loads(path.read_text())
        found = list(collect_metrics(payload))
        if not found:
            print(f"perf floor: {artifact} records no speedups or overheads")
            failures.append((artifact, "no metrics recorded"))
            continue
        for kind, where, value in found:
            total += 1
            if kind == "speedup":
                ok = value >= args.floor
                bound = f">= {args.floor:.1f}x"
            else:
                ok = value <= args.overhead_ceiling
                bound = f"<= {args.overhead_ceiling:.1f}x"
            status = "ok" if ok else "FAIL"
            print(
                f"perf floor: {artifact}:{where} = {value:.2f}x "
                f"({kind} {bound}) {status}"
            )
            if not ok:
                failures.append((f"{artifact}:{where}", value))

    if failures:
        print(f"perf floor: {len(failures)} failure(s)")
        return 1
    print(f"perf floor: all {total} recorded metrics within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
