"""Perf floor guard for CI: recorded speedups and overheads must hold.

Reads one or more benchmark JSON artifacts (``BENCH_hotpaths.json``,
``BENCH_batch.json``, ``BENCH_wal.json``, ...) and checks, at any
nesting depth:

* every numeric value stored under a key named ``speedup`` or ending in
  ``_speedup`` must be >= the floor (default 1.0) -- a "fast path"
  below it got slower than the baseline it exists to beat;
* every numeric value stored under a key named ``overhead`` or ending
  in ``_overhead`` must be <= the ceiling (default 1.5) -- a safety
  layer (e.g. the write-ahead log's fsync-before-apply) whose tax grew
  past its budget fails the build instead of riding along silently;
* an artifact may additionally embed its own bounds in top-level
  ``"floors"`` / ``"ceilings"`` maps (``{metric_key: bound}``): every
  numeric value stored anywhere in the artifact under a listed key is
  then held to that bound, on top of the naming conventions above.
  This is how a benchmark ships acceptance bars stricter than the
  global 1.0x/1.5x defaults (e.g. ``BENCH_mmap.json`` requires
  ``warm_start_speedup >= 2.0`` and ``lazy_rss_ratio <= 0.6``).

Run:  python benchmarks/check_perf_floors.py BENCH_hotpaths.json BENCH_wal.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLOOR = 1.0
OVERHEAD_CEILING = 1.5


def embedded_bounds(payload) -> tuple[dict, dict]:
    """The artifact's own ``"floors"`` / ``"ceilings"`` maps, if any."""
    floors = ceilings = {}
    if isinstance(payload, dict):
        if isinstance(payload.get("floors"), dict):
            floors = {
                str(k): float(v)
                for k, v in payload["floors"].items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
        if isinstance(payload.get("ceilings"), dict):
            ceilings = {
                str(k): float(v)
                for k, v in payload["ceilings"].items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
    return floors, ceilings


def collect_metrics(payload, path="", floors=(), ceilings=()):
    """Yield ``(kind, json_path, value, bound)`` for every recorded
    speedup / overhead (conventional ``None`` bound: the CLI defaults
    apply) and every value under an embedded-bound key."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            where = f"{path}.{key}" if path else key
            if not path and key in ("floors", "ceilings"):
                continue  # the bound declarations, not measurements
            is_number = isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
            if is_number and key in floors:
                yield "speedup", where, float(value), floors[key]
            elif is_number and key in ceilings:
                yield "overhead", where, float(value), ceilings[key]
            elif (key == "speedup" or key.endswith("_speedup")) and is_number:
                yield "speedup", where, float(value), None
            elif (key == "overhead" or key.endswith("_overhead")) and is_number:
                yield "overhead", where, float(value), None
            else:
                yield from collect_metrics(value, where, floors, ceilings)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            yield from collect_metrics(value, f"{path}[{index}]", floors, ceilings)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+", help="benchmark JSON files")
    parser.add_argument(
        "--floor", type=float, default=FLOOR, help="minimum allowed speedup"
    )
    parser.add_argument(
        "--overhead-ceiling",
        type=float,
        default=OVERHEAD_CEILING,
        help="maximum allowed overhead ratio",
    )
    args = parser.parse_args(argv)

    failures = []
    total = 0
    for artifact in args.artifacts:
        path = Path(artifact)
        if not path.exists():
            print(f"perf floor: MISSING artifact {artifact}")
            failures.append((artifact, "missing"))
            continue
        payload = json.loads(path.read_text())
        floors, ceilings = embedded_bounds(payload)
        found = list(collect_metrics(payload, floors=floors, ceilings=ceilings))
        if not found:
            print(f"perf floor: {artifact} records no speedups or overheads")
            failures.append((artifact, "no metrics recorded"))
            continue
        for kind, where, value, limit in found:
            total += 1
            if kind == "speedup":
                limit = args.floor if limit is None else limit
                ok = value >= limit
                bound = f">= {limit:.1f}x"
            else:
                limit = args.overhead_ceiling if limit is None else limit
                ok = value <= limit
                bound = f"<= {limit:.1f}x"
            status = "ok" if ok else "FAIL"
            print(
                f"perf floor: {artifact}:{where} = {value:.2f}x "
                f"({kind} {bound}) {status}"
            )
            if not ok:
                failures.append((f"{artifact}:{where}", value))

    if failures:
        print(f"perf floor: {len(failures)} failure(s)")
        return 1
    print(f"perf floor: all {total} recorded metrics within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
