"""Experiment T2 -- paper Table 2: simple query estimates on DBLP.

For each (ancestor, descendant) pair the paper reports: the naive
product, the descendant-count upper bound, the overlap (pH-join)
estimate with its time, the no-overlap estimate with its time, and the
real result.  The benchmarked kernel is the no-overlap estimator over
the four queries (summaries pre-built, as in the paper's setting).
"""

from __future__ import annotations

from conftest import emit

from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table
from repro.utils.timing import median_time
from repro.workloads import DBLP_SIMPLE_QUERIES

PAPER_TABLE2 = {
    # (anc, desc): (naive, desc_num, overlap_est, no_overlap_est, real)
    ("article", "author"): (305_696_366, 41_501, 2_415_480, 14_627, 14_644),
    ("article", "cdrom"): (12_684_252, 1_722, 4_379, 112, 130),
    ("article", "cite"): (243_792_502, 33_097, 671_722, 3_958, 5_114),
    ("book", "cdrom"): (702_576, 1_722, 179, 4, 3),
}


def warm(estimator):
    for anc, desc in DBLP_SIMPLE_QUERIES:
        estimator.position_histogram(TagPredicate(anc))
        estimator.position_histogram(TagPredicate(desc))
        estimator.coverage_histogram(TagPredicate(anc))


def test_table2_simple_queries(benchmark, dblp_estimator):
    warm(dblp_estimator)

    def estimate_all_no_overlap():
        return [
            dblp_estimator.estimate_pair(
                TagPredicate(anc), TagPredicate(desc), method="no-overlap"
            ).value
            for anc, desc in DBLP_SIMPLE_QUERIES
        ]

    benchmark(estimate_all_no_overlap)

    rows = []
    for anc, desc in DBLP_SIMPLE_QUERIES:
        pa, pd = TagPredicate(anc), TagPredicate(desc)
        naive = dblp_estimator.estimate_pair(pa, pd, method="naive").value
        bound = dblp_estimator.estimate_pair(pa, pd, method="upper-bound").value
        overlap_result, overlap_time = median_time(
            lambda: dblp_estimator.estimate_pair(pa, pd, method="ph-join"), 5
        )
        nov_result, nov_time = median_time(
            lambda: dblp_estimator.estimate_pair(pa, pd, method="no-overlap"), 5
        )
        real = dblp_estimator.real_answer(f"//{anc}//{desc}")
        rows.append(
            [
                anc,
                desc,
                naive,
                bound,
                round(overlap_result.value, 1),
                f"{overlap_time:.6f}",
                round(nov_result.value, 1),
                f"{nov_time:.6f}",
                real,
            ]
        )
        # The paper's regime must hold on the regenerated data set.
        assert abs(nov_result.value - real) <= abs(overlap_result.value - real)
        assert overlap_result.value < naive

    table = format_table(
        [
            "Ance",
            "Desc",
            "Naive",
            "Desc Num",
            "Overlap Est",
            "Ovl Time(s)",
            "No-Ovl Est",
            "NoOvl Time(s)",
            "Real",
        ],
        rows,
        title="Table 2 -- DBLP simple query answer-size estimation (10x10 grids)",
    )
    paper = format_table(
        ["Ance", "Desc", "Naive", "Desc Num", "Overlap Est", "No-Ovl Est", "Real"],
        [[a, d, *values] for (a, d), values in PAPER_TABLE2.items()],
        title="Paper's Table 2 (original 0.5M-node DBLP), for shape comparison",
    )
    emit("table2", table + "\n\n" + paper)
