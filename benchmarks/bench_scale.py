"""Million-node scale benchmark: flat-array kernels and the end-to-end
service story.

Two tiers of measurement:

* **Kernel micro-benches** -- each vectorized hot path against the
  sequential Python implementation it replaced (retained in the source
  purely as the bit-identity reference).  Outputs are asserted equal
  (bitwise for floats) before any timing is trusted, and the inputs are
  deliberately large *even in ``--quick`` mode* so the recorded ratios
  mean something:

  - ``splice_respread_speedup``: :func:`spread_labels` (the label
    respread behind insert planning and local rebalance) vs. the
    enter/exit stack walk, over a ~50k-node region.
  - ``page_merge_speedup``: :func:`merge_page` vs. the dict-based merge
    over a 120k-cell page with four delta layers.
  - ``coverage_rederive_speedup``: :func:`coverage_from_numerators` vs.
    the per-entry loop on a 64x64 grid.
  - ``wal_encode_speedup``: the v2 binary WAL codec's encode (the
    latency-critical, fsync'd append path) vs. the v1 JSON encode of
    the same 3000-op batch record.  The full round-trip and payload
    size are reported as unguarded ratios (decode builds the same
    Python op dicts either way, so it tracks ``json.loads``).

* **Scale story** -- an XMark-like tree of >= 1e6 nodes (``--quick``
  drops to ~1e4 for CI): durable build with every per-tag statistic
  primed, batched updates, O(1) snapshots, checkpoint, crash recovery,
  and the sharded statistics build on a 4-worker pool
  (``build_ratio_w4`` = serial seconds / sharded seconds).  Peak RSS
  lands in ``meta``.

Writes a ``BENCH_scale.json`` artifact; ``check_perf_floors.py`` guards
every ``*_speedup`` key, and the full run asserts each kernel >= 2x and
the tree >= 1e6 nodes.

Run:  python benchmarks/bench_scale.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import resource
import shutil
import sys
import tempfile
import time
import zlib
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.datasets import generate_xmark  # noqa: E402
from repro.histograms.coverage import (  # noqa: E402
    CoverageNumerators,
    _coverage_from_numerators_items,
    coverage_from_numerators,
)
from repro.histograms.epoch import (  # noqa: E402
    HistogramPage,
    _merge_page_dict,
    merge_page,
)
from repro.histograms.grid import GridSpec  # noqa: E402
from repro.histograms.parallel import (  # noqa: E402
    build_statistics_parallel,
    create_pool,
)
from repro.histograms.truehist import build_true_histogram  # noqa: E402
from repro.labeling.dynamic import (  # noqa: E402
    _spread_labels_python,
    spread_labels,
)
from repro.labeling.interval import label_document  # noqa: E402
from repro.predicates.base import TagPredicate  # noqa: E402
from repro.service import DeleteOp, EstimationService, InsertOp  # noqa: E402
from repro.service.wal import (  # noqa: E402
    _decode_payload_v2,
    _encode_payload_v2,
)
from repro.xmltree.tree import Element  # noqa: E402

QUERIES = [
    "//item//parlist",
    "//people//person",
    "//open_auction//increase",
    "//site//name",
]
KERNEL_TREE_SCALE = 30  # ~50k nodes: kernel inputs stay large in --quick


def timed(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def prime(service) -> None:
    """Every per-tag statistic the serving tier maintains."""
    for stats in service.catalog.register_all_tags():
        service.position_histogram(stats.predicate)
        service.coverage_histogram(stats.predicate)
    _ = service.estimator.true_histogram


# -- kernel micro-benches ---------------------------------------------------


def bench_respread(tree) -> dict:
    # The region a root-level rebalance would respread: everything
    # under the document root, hole reserved mid-slice.
    lo, hi = 1, len(tree)
    depth = tree.level[lo:hi] - int(tree.level[0])
    region_parents = tree.parent_index[lo:hi]
    pslot = np.where(region_parents == 0, -1, region_parents - lo)
    base, stride = int(tree.start[0]), 3
    hole_event, hole_width = len(depth), 10

    kernel = spread_labels(depth, pslot, base, stride, hole_event, hole_width)
    reference = _spread_labels_python(
        depth, pslot, base, stride, hole_event, hole_width
    )
    assert np.array_equal(kernel[0], reference[0])
    assert np.array_equal(kernel[1], reference[1])

    kernel_seconds = timed(
        lambda: spread_labels(depth, pslot, base, stride, hole_event, hole_width),
        5,
    )
    reference_seconds = timed(
        lambda: _spread_labels_python(
            depth, pslot, base, stride, hole_event, hole_width
        ),
        3,
    )
    return {
        "nodes": int(len(depth)),
        "kernel_seconds": kernel_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / kernel_seconds,
    }


def bench_merge() -> dict:
    rng = random.Random(9)
    page = HistogramPage.from_mapping(
        {c: rng.uniform(0.5, 9.0) for c in rng.sample(range(10**6), 120_000)}
    )
    layers = [
        {rng.randrange(10**6): rng.uniform(-2.0, 2.0) for _ in range(25_000)}
        for _ in range(4)
    ]
    kernel = merge_page(page, layers)
    reference = _merge_page_dict(page, layers)
    assert np.array_equal(kernel.codes, reference.codes)
    assert np.array_equal(
        kernel.counts.view(np.int64), reference.counts.view(np.int64)
    )
    kernel_seconds = timed(lambda: merge_page(page, layers), 5)
    reference_seconds = timed(lambda: _merge_page_dict(page, layers), 3)
    return {
        "page_cells": len(page),
        "layers": len(layers),
        "kernel_seconds": kernel_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / kernel_seconds,
    }


def bench_coverage(tree) -> dict:
    rng = random.Random(17)
    g = 64
    grid = GridSpec(g, tree.max_label)
    true_hist = build_true_histogram(tree, grid)
    mapping = {}
    for _ in range(40_000):
        i, m = rng.randrange(g), rng.randrange(g)
        key = (i, rng.randrange(i, g), m, rng.randrange(m, g))
        ceiling = int(true_hist.count(key[0], key[1]))
        if ceiling > 0:
            mapping[key] = rng.randrange(1, ceiling + 1)
    numerators = CoverageNumerators.from_mapping(g, mapping)
    fast = coverage_from_numerators(numerators, true_hist)
    reference = _coverage_from_numerators_items(mapping, true_hist)
    assert dict(fast.entries()) == dict(reference.entries())
    kernel_seconds = timed(
        lambda: coverage_from_numerators(numerators, true_hist), 5
    )
    reference_seconds = timed(
        lambda: _coverage_from_numerators_items(mapping, true_hist), 3
    )
    return {
        "grid": g,
        "entries": len(mapping),
        "kernel_seconds": kernel_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / kernel_seconds,
    }


def bench_wal_codec() -> dict:
    rng = random.Random(3)
    ops = []
    for k in range(3000):
        if rng.random() < 0.6:
            ops.append(
                {
                    "kind": "insert",
                    "parent": ["index", rng.randrange(10**6)],
                    "xml": f"<note><author>Author {k}</author></note>",
                    "position": rng.choice([None, 0, 3]),
                }
            )
        else:
            ops.append({"kind": "delete", "node": ["op", k, 2]})
    record = {"lsn": 5, "type": "batch", "single": False, "ops": ops}

    binary = _encode_payload_v2(record)
    as_json = json.dumps(record, separators=(",", ":")).encode("utf-8")
    assert _decode_payload_v2(binary) == json.loads(as_json) == record

    def encode_v2():
        zlib.crc32(_encode_payload_v2(record))

    def encode_json():
        zlib.crc32(json.dumps(record, separators=(",", ":")).encode("utf-8"))

    encode_seconds = timed(encode_v2, 20)
    json_encode_seconds = timed(encode_json, 20)
    roundtrip_seconds = timed(
        lambda: _decode_payload_v2(_encode_payload_v2(record)), 20
    )
    json_roundtrip_seconds = timed(
        lambda: json.loads(json.dumps(record, separators=(",", ":"))), 20
    )
    return {
        "ops": len(ops),
        "binary_bytes": len(binary),
        "json_bytes": len(as_json),
        "bytes_ratio": len(as_json) / len(binary),
        "encode_seconds": encode_seconds,
        "json_encode_seconds": json_encode_seconds,
        "wal_encode_speedup": json_encode_seconds / encode_seconds,
        "roundtrip_seconds": roundtrip_seconds,
        "json_roundtrip_seconds": json_roundtrip_seconds,
        "roundtrip_ratio": json_roundtrip_seconds / roundtrip_seconds,
    }


# -- the scale story --------------------------------------------------------


def make_note() -> Element:
    note = Element("note")
    author = Element("author")
    author.append_text("scale bench")
    note.append(author)
    return note


def scale_story(scale: float, workers: int, quick: bool, workdir: Path) -> dict:
    started = time.perf_counter()
    document = generate_xmark(seed=23, scale=scale)
    generate_seconds = time.perf_counter() - started
    nodes = document.count_nodes()
    print(f"xmark tree: {nodes} nodes (scale {scale}, {generate_seconds:.1f}s)")

    wal_dir = workdir / "wal"
    started = time.perf_counter()
    service = EstimationService.open_durable(
        wal_dir, document, grid_size=10, spacing=64, checkpoint_every=10**9
    )
    prime(service)
    build_seconds = time.perf_counter() - started
    tags = sum(1 for _ in service.catalog.register_all_tags())
    print(f"durable build + prime: {build_seconds:.2f}s ({tags} tags)")

    # Batched updates addressed at person elements: two insert waves,
    # then a wave deleting half the inserted notes.
    rng = random.Random(41)
    people = service.catalog.stats(TagPredicate("person")).node_indices
    batch_size = 25
    parent_count = 2 * batch_size if quick else 4 * batch_size
    parents = [
        service.tree.elements[int(people[ordinal])]
        for ordinal in rng.sample(range(len(people)), parent_count)
    ]
    inserted: list[Element] = []
    batches = []
    for start in range(0, parent_count, batch_size):
        batch = []
        for parent in parents[start : start + batch_size]:
            note = make_note()
            inserted.append(note)
            batch.append(InsertOp(parent, note))
        batches.append(batch)
    doomed = inserted[::2]
    batches += [
        [DeleteOp(note) for note in doomed[start : start + batch_size]]
        for start in range(0, len(doomed), batch_size)
    ]
    updates = sum(len(batch) for batch in batches)
    started = time.perf_counter()
    for batch in batches:
        service.apply_batch(batch)
    update_seconds = time.perf_counter() - started
    print(
        f"apply_batch: {updates} updates in {len(batches)} batches, "
        f"{updates / update_seconds:.1f} updates/s"
    )

    live = {q: service.estimate(q).value for q in QUERIES}

    snapshot_iters = 20
    started = time.perf_counter()
    snapshots = [service.snapshot() for _ in range(snapshot_iters)]
    snapshot_seconds = (time.perf_counter() - started) / snapshot_iters
    for query in QUERIES:
        assert snapshots[0].estimate(query).value == live[query], query
    for snapshot in snapshots:
        snapshot.close()
    print(f"snapshot: {snapshot_seconds * 1e6:.1f} us")

    started = time.perf_counter()
    checkpoint_lsn = service.checkpoint()
    checkpoint_seconds = time.perf_counter() - started
    print(f"checkpoint (lsn {checkpoint_lsn}): {checkpoint_seconds:.2f}s")

    # One more logged batch past the checkpoint so recovery replays.
    survivors = inserted[1::2]
    service.apply_batch([DeleteOp(note) for note in survivors[:batch_size]])
    final = {q: service.estimate(q).value for q in QUERIES}
    final_nodes = len(service)
    service.close()

    started = time.perf_counter()
    recovered = EstimationService.open_durable(wal_dir)
    recovery_seconds = time.perf_counter() - started
    info = recovered.recovery_info
    assert len(recovered) == final_nodes
    for query in QUERIES:
        assert recovered.estimate(query).value == final[query], query
    if quick:
        recovered.differential_check(QUERIES)
    print(
        f"recovery: checkpoint lsn {info.checkpoint_lsn}, "
        f"{info.batches_replayed} batch(es) replayed, {recovery_seconds:.2f}s"
    )

    # Sharded statistics build on the recovered tree, checked against
    # the maintained TRUE histogram before timing.
    tree, grid = recovered.tree, recovered.estimator.grid
    true_cells = dict(recovered.estimator.true_histogram.cells())
    pool = create_pool(workers)
    try:
        built = build_statistics_parallel(
            tree, grid, n_workers=workers, pool=pool
        )
        assert dict(built.true_histogram.cells()) == true_cells
        serial_seconds = timed(
            lambda: build_statistics_parallel(tree, grid, n_workers=1), 2
        )
        sharded_seconds = timed(
            lambda: build_statistics_parallel(
                tree, grid, n_workers=workers, pool=pool
            ),
            2,
        )
    finally:
        pool.terminate()
        pool.join()
    recovered.close()
    print(
        f"statistics build: serial {serial_seconds:.2f}s, "
        f"sharded x{workers} {sharded_seconds:.2f}s "
        f"-> {serial_seconds / sharded_seconds:.2f}x"
    )

    return {
        "nodes": nodes,
        "final_nodes": final_nodes,
        "tags": tags,
        "generate_seconds": generate_seconds,
        "build_seconds": build_seconds,
        "updates": updates,
        "batches": len(batches),
        "update_seconds": update_seconds,
        "updates_per_sec": updates / update_seconds,
        "snapshot_us": snapshot_seconds * 1e6,
        "checkpoint_seconds": checkpoint_seconds,
        "recovery_seconds": recovery_seconds,
        "batches_replayed": info.batches_replayed,
        "serial_build_seconds": serial_seconds,
        "sharded_build_seconds": sharded_seconds,
        "build_ratio_w4": serial_seconds / sharded_seconds,
        "workers": workers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="~1e4-node story for CI (kernel inputs stay full-size)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_scale.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    kernel_tree = label_document(
        generate_xmark(seed=23, scale=KERNEL_TREE_SCALE), spacing=64
    )
    kernels = {
        "splice_respread": bench_respread(kernel_tree),
        "page_merge": bench_merge(),
        "coverage_rederive": bench_coverage(kernel_tree),
        "wal_codec": bench_wal_codec(),
    }
    for name in ("splice_respread", "page_merge", "coverage_rederive"):
        print(f"{name}: {kernels[name]['speedup']:.1f}x")
    print(
        f"wal_codec: encode {kernels['wal_codec']['wal_encode_speedup']:.2f}x, "
        f"round-trip {kernels['wal_codec']['roundtrip_ratio']:.2f}x, "
        f"bytes {kernels['wal_codec']['bytes_ratio']:.2f}x"
    )

    workdir = Path(tempfile.mkdtemp(prefix="bench_scale_"))
    try:
        story = scale_story(
            scale=6 if args.quick else 640,
            workers=4,
            quick=args.quick,
            workdir=workdir,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    artifact = {
        "meta": {
            "nodes": story["nodes"],
            "quick": args.quick,
            "grid": 10,
            "kernel_tree_nodes": len(kernel_tree),
            "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            / 1024.0,
        },
        "kernels": kernels,
        "scale": story,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
    print(
        f"wrote {args.out} (peak RSS "
        f"{artifact['meta']['peak_rss_mb']:.0f} MB)"
    )

    if not args.quick:
        assert story["nodes"] >= 1_000_000, (
            f"full run must cover >= 1e6 nodes, got {story['nodes']}"
        )
        for name in ("splice_respread", "page_merge", "coverage_rederive"):
            speedup = kernels[name]["speedup"]
            assert speedup >= 2.0, f"{name} kernel {speedup:.2f}x below 2x"
        encode = kernels["wal_codec"]["wal_encode_speedup"]
        assert encode >= 2.0, f"wal encode {encode:.2f}x below 2x"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
