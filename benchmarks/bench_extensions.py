"""Experiment EXT -- the paper's future-work extensions, implemented.

The conclusion of the paper lists open issues: estimation for
parent-child queries, and histograms with non-uniform grid cells; its
Section 3.3 sketches precomputing the per-cell multiplicative
coefficients as a space-time tradeoff.  This bench measures all three:

1. parent-child (``/``) estimation via level-augmented histograms,
   against the real ``/`` answer and against naively reusing the ``//``
   estimate;
2. equi-depth vs uniform grids at equal grid size;
3. precomputed-coefficient pH-join vs recomputing per query.
"""

from __future__ import annotations

from conftest import emit

from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table
from repro.utils.timing import median_time


def test_extension_parent_child(benchmark, orgchart_estimator, dblp_estimator):
    cases = [
        (orgchart_estimator, "manager", "department"),
        (orgchart_estimator, "department", "employee"),
        (orgchart_estimator, "employee", "name"),
        (dblp_estimator, "article", "author"),
    ]

    def run_all():
        out = []
        for estimator, anc, desc in cases:
            pa, pd = TagPredicate(anc), TagPredicate(desc)
            child = estimator.estimate_pair(pa, pd, method="ph-join-child").value
            desc_est = estimator.estimate_pair(pa, pd, method="ph-join").value
            real_child = estimator.real_answer(f"//{anc}/{desc}")
            real_desc = estimator.real_answer(f"//{anc}//{desc}")
            out.append((anc, desc, child, desc_est, real_child, real_desc))
        return out

    results = benchmark(run_all)

    rows = []
    for anc, desc, child, desc_est, real_child, real_desc in results:
        rows.append(
            [
                f"{anc}/{desc}",
                round(child, 1),
                real_child,
                round(desc_est, 1),
                real_desc,
                round(child / real_child, 2) if real_child else "-",
            ]
        )
        # The child estimate must be at least as close to the real /
        # answer as the // estimate is (the naive fallback).
        assert abs(child - real_child) <= abs(desc_est - real_child) + 1e-9
    table = format_table(
        ["edge", "child est", "real /", "desc est", "real //", "child est/real"],
        rows,
        title="Extension 1 -- parent-child estimation via level-augmented histograms",
    )
    emit("extension_parent_child", table)


def test_extension_equi_depth_grid(benchmark, dblp_estimator, orgchart_estimator):
    cases = [
        (dblp_estimator.tree, "article", "cite", "//article//cite"),
        (dblp_estimator.tree, "article", "author", "//article//author"),
        (orgchart_estimator.tree, "department", "email", "//department//email"),
        (orgchart_estimator.tree, "manager", "employee", "//manager//employee"),
    ]
    grid_size = 10

    def run_all():
        out = []
        for tree, anc, desc, xpath in cases:
            uniform = AnswerSizeEstimator(tree, grid_size=grid_size)
            shaped = AnswerSizeEstimator(tree, grid_size=grid_size, grid="equi-depth")
            pa, pd = TagPredicate(anc), TagPredicate(desc)
            u = uniform.estimate_pair(pa, pd, method="ph-join").value
            e = shaped.estimate_pair(pa, pd, method="ph-join").value
            real = uniform.real_answer(xpath)
            out.append((xpath, u, e, real))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for xpath, u, e, real in results:
        rows.append(
            [
                xpath,
                round(u, 1),
                round(e, 1),
                real,
                round(u / real, 3) if real else "-",
                round(e / real, 3) if real else "-",
            ]
        )
        # Equi-depth must stay in the same accuracy regime as uniform.
        assert abs(e - real) <= 3 * abs(u - real) + 0.3 * real
    table = format_table(
        ["query", "uniform est", "equi-depth est", "real", "uni/real", "eqd/real"],
        rows,
        title=f"Extension 2 -- equi-depth vs uniform grids (g={grid_size})",
    )
    emit("extension_equi_depth", table)


def test_extension_precomputed_coefficients(benchmark, dblp_estimator):
    pa, pd = TagPredicate("article"), TagPredicate("author")
    dblp_estimator.join_coefficients(pd)  # warm the cache

    benchmark(
        lambda: dblp_estimator.estimate_pair(pa, pd, method="ph-join-precomputed")
    )

    _, plain_time = median_time(
        lambda: dblp_estimator.estimate_pair(pa, pd, method="ph-join"), 9
    )
    _, pre_time = median_time(
        lambda: dblp_estimator.estimate_pair(pa, pd, method="ph-join-precomputed"), 9
    )
    plain_value = dblp_estimator.estimate_pair(pa, pd, method="ph-join").value
    pre_value = dblp_estimator.estimate_pair(
        pa, pd, method="ph-join-precomputed"
    ).value
    table = format_table(
        ["variant", "estimate", "time (us)"],
        [
            ["recompute per query", round(plain_value, 1), f"{plain_time * 1e6:.1f}"],
            ["precomputed coefficients", round(pre_value, 1), f"{pre_time * 1e6:.1f}"],
        ],
        title="Extension 3 -- precomputed join coefficients (paper Section 3.3)",
    )
    emit("extension_precomputed", table)
    assert abs(pre_value - plain_value) < 1e-6
    assert pre_time <= plain_time * 1.5
