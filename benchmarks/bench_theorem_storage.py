"""Experiments TH1/TH2 -- Theorems 1 and 2: O(g) storage.

Theorem 1: a position histogram over a g x g grid has O(g) non-zero
cells.  Theorem 2: a coverage histogram has O(g) partial (non-0/1)
entries.  This bench sweeps g over both data sets and reports the
cells-per-g density, which must stay bounded as g grows.
"""

from __future__ import annotations

from conftest import emit

from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table

GRID_SIZES = (5, 10, 20, 40, 80)


def measure(tree, tag: str, grid_size: int):
    estimator = AnswerSizeEstimator(tree, grid_size=grid_size)
    predicate = TagPredicate(tag)
    hist = estimator.position_histogram(predicate)
    coverage = estimator.coverage_histogram(predicate)
    return {
        "nonzero": hist.nonzero_cell_count(),
        "partial": coverage.partial_entry_count() if coverage else 0,
    }


def test_theorem1_and_2_storage_linear(benchmark, dblp_estimator, orgchart_estimator):
    benchmark(lambda: measure(dblp_estimator.tree, "article", 40))

    rows = []
    for dataset_name, tree, tag in (
        ("dblp", dblp_estimator.tree, "article"),
        ("dblp", dblp_estimator.tree, "author"),
        ("orgchart", orgchart_estimator.tree, "employee"),
        ("orgchart", orgchart_estimator.tree, "department"),
    ):
        for g in GRID_SIZES:
            m = measure(tree, tag, g)
            rows.append(
                [
                    dataset_name,
                    tag,
                    g,
                    m["nonzero"],
                    round(m["nonzero"] / g, 2),
                    m["partial"],
                    round(m["partial"] / g, 2),
                ]
            )
            # Theorem bounds with generous constants.
            assert m["nonzero"] <= 5 * g
            assert m["partial"] <= 8 * g

    table = format_table(
        [
            "dataset",
            "predicate",
            "g",
            "non-zero cells",
            "cells/g",
            "partial cvg entries",
            "partial/g",
        ],
        rows,
        title="Theorems 1-2 -- summary sizes grow linearly in grid size",
    )
    emit("theorem_storage", table)
