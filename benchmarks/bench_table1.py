"""Experiment T1 -- paper Table 1: DBLP predicate characteristics.

Regenerates the predicate table (name, definition, node count, overlap
property) for the DBLP-like data set, including the paper's
element-content predicates (``conf``/``journal`` prefixes) and decade
compounds.  The benchmarked kernel is summary construction: building the
position histogram for every registered predicate.
"""

from __future__ import annotations

from conftest import emit

from repro.predicates.base import ContentPrefixPredicate, NumericRangePredicate
from repro.utils.tables import format_table

PAPER_ROWS = {
    # predicate -> (paper count, paper overlap property)
    "article": (7366, "no overlap"),
    "author": (41501, "no overlap"),
    "book": (408, "no overlap"),
    "cdrom": (1722, "no overlap"),
    "cite": (33097, "no overlap"),
    "title": (19921, "no overlap"),
    "url": (19542, "no overlap"),
    "year": (19914, "no overlap"),
}


def register_predicates(estimator):
    """The paper's predicate mix: all tags + prefixes + decades."""
    from repro.predicates.base import TagPredicate

    predicates = [TagPredicate(tag) for tag in PAPER_ROWS]
    predicates.append(ContentPrefixPredicate("conf", tag="cite"))
    predicates.append(ContentPrefixPredicate("journal", tag="cite"))
    predicates.append(NumericRangePredicate(1980, 1989, tag="year", label="1980's"))
    predicates.append(NumericRangePredicate(1990, 1999, tag="year", label="1990's"))
    for predicate in predicates:
        estimator.catalog.register(predicate)
    return predicates


def test_table1_dblp_predicates(benchmark, dblp_estimator):
    predicates = register_predicates(dblp_estimator)

    def build_all_histograms():
        # Fresh estimator state each round: rebuild the histograms.
        from repro.histograms.position import build_position_histogram

        out = []
        for predicate in predicates:
            stats = dblp_estimator.catalog.stats(predicate)
            out.append(
                build_position_histogram(
                    dblp_estimator.tree,
                    stats.node_indices,
                    dblp_estimator.grid,
                    name=predicate.name,
                )
            )
        return out

    histograms = benchmark(build_all_histograms)

    rows = []
    total_bytes = 0
    for predicate, histogram in zip(predicates, histograms):
        stats = dblp_estimator.catalog.stats(predicate)
        overlap = "no overlap" if stats.no_overlap else "overlap"
        if predicate.name in PAPER_ROWS:
            paper_count, paper_overlap = PAPER_ROWS[predicate.name]
            assert overlap == paper_overlap
        else:
            paper_count = "-"
        report = dblp_estimator.storage_bytes(predicate)
        total_bytes += report["position"] + report["coverage"]
        rows.append(
            [
                predicate.name,
                predicate.description(),
                stats.count,
                overlap,
                paper_count,
            ]
        )

    node_count = len(dblp_estimator.tree)
    table = format_table(
        ["Predicate Name", "Predicate", "Node Count", "Overlap Property", "Paper Count"],
        rows,
        title=(
            f"Table 1 -- DBLP predicate characteristics "
            f"(ours: {node_count:,} nodes vs paper ~0.5M; "
            f"summary storage {total_bytes:,} bytes)"
        ),
    )
    emit("table1", table)

    # Structural assertions mirroring the paper's table.
    by_name = {row[0]: row for row in rows}
    assert by_name["author"][2] > by_name["article"][2]
    assert all(row[3] == "no overlap" for row in rows if row[0] in PAPER_ROWS)
