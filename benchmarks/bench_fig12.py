"""Experiment F12 -- paper Fig. 12: storage and accuracy vs grid size,
no-overlap predicates (article//cdrom on DBLP).

Both predicates are no-overlap, so each stores a position histogram and
a coverage histogram.  The paper's claims: total storage remains linear
in g (constant factor 2-3), and the estimate converges fast -- within
1 +/- 0.05 of the real answer from grid size ~5 on, because coverage
captures the extra structural information.
"""

from __future__ import annotations

from conftest import emit

from repro.estimation import AnswerSizeEstimator
from repro.histograms.storage import coverage_storage_bytes, position_storage_bytes
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table

GRID_SIZES = (2, 5, 10, 15, 20, 30, 40, 50)


def sweep_point(tree, grid_size: int, real: int):
    estimator = AnswerSizeEstimator(tree, grid_size=grid_size)
    article, cdrom = TagPredicate("article"), TagPredicate("cdrom")
    hist_article = estimator.position_histogram(article)
    hist_cdrom = estimator.position_histogram(cdrom)
    cvg_article = estimator.coverage_histogram(article)
    cvg_cdrom = estimator.coverage_histogram(cdrom)
    assert cvg_article is not None and cvg_cdrom is not None
    estimate = estimator.estimate_pair(article, cdrom, method="no-overlap").value
    return {
        "g": grid_size,
        "hist_article": position_storage_bytes(hist_article),
        "cvg_article": coverage_storage_bytes(cvg_article),
        "hist_cdrom": position_storage_bytes(hist_cdrom),
        "cvg_cdrom": coverage_storage_bytes(cvg_cdrom),
        "ratio": estimate / real,
    }


def test_fig12_storage_and_accuracy_no_overlap(benchmark, dblp_estimator):
    tree = dblp_estimator.tree
    real = dblp_estimator.real_answer("//article//cdrom")

    benchmark(lambda: sweep_point(tree, 20, real))

    points = [sweep_point(tree, g, real) for g in GRID_SIZES]
    rows = [
        [
            p["g"],
            p["hist_article"],
            p["cvg_article"],
            p["hist_cdrom"],
            p["cvg_cdrom"],
            round(p["ratio"], 3),
        ]
        for p in points
    ]
    table = format_table(
        [
            "grid size",
            "Hist Article",
            "Cvg Article",
            "Hist Cdrom",
            "Cvg Cdrom",
            "estimate/real",
        ],
        rows,
        title=(
            "Fig. 12 -- storage requirement and estimation accuracy vs grid "
            f"size, no-overlap predicates (article//cdrom, real={real})"
        ),
    )
    emit("fig12", table)

    # Linear total storage (cells per g bounded) ...
    for p in points:
        total = (
            p["hist_article"] + p["cvg_article"] + p["hist_cdrom"] + p["cvg_cdrom"]
        )
        assert total <= 60 * p["g"] + 200, f"g={p['g']}: {total} bytes"
    # ... and the paper's fast convergence: within 1 +/- 0.15 from g=10.
    for p in points:
        if p["g"] >= 10:
            assert abs(p["ratio"] - 1.0) <= 0.15, f"g={p['g']}: {p['ratio']}"
