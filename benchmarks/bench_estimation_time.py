"""Experiment TIME -- estimation cost (paper Sections 3.3 and 5).

The paper reports per-query estimation times of a few tenths of a
millisecond and argues pH-join needs O(g) work versus the naive nested
loop's repeated summations.  This bench measures all three pH-join
implementations across grid sizes, demonstrating:

* the vectorised and literal pH-join stay microseconds-to-sub-ms;
* the O(g^4) reference nested loop blows up with g, motivating the
  partial-sum algorithm exactly as the paper argues.
"""

from __future__ import annotations

from conftest import emit

from repro.estimation import AnswerSizeEstimator
from repro.estimation.phjoin import ph_join, ph_join_literal, reference_region_estimate
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table
from repro.utils.timing import median_time

GRID_SIZES = (5, 10, 20, 40)


def test_estimation_time_scaling(benchmark, dblp_estimator):
    tree = dblp_estimator.tree
    rows = []
    for g in GRID_SIZES:
        estimator = AnswerSizeEstimator(tree, grid_size=g)
        hist_anc = estimator.position_histogram(TagPredicate("article"))
        hist_desc = estimator.position_histogram(TagPredicate("author"))

        _, fast_time = median_time(lambda: ph_join(hist_anc, hist_desc), 9)
        _, literal_time = median_time(
            lambda: ph_join_literal(hist_anc, hist_desc), 5
        )
        _, reference_time = median_time(
            lambda: reference_region_estimate(hist_anc, hist_desc), 3
        )
        rows.append(
            [
                g,
                f"{fast_time * 1e6:.1f}",
                f"{literal_time * 1e6:.1f}",
                f"{reference_time * 1e6:.1f}",
            ]
        )
        # Paper claim: miniscule cost.  Even the literal three-pass loop
        # must stay under 50 ms at g=40 on any plausible hardware.
        assert fast_time < 0.050
        assert literal_time < 0.050

    # Benchmark the production estimator at the paper's default grid.
    estimator10 = AnswerSizeEstimator(tree, grid_size=10)
    h1 = estimator10.position_histogram(TagPredicate("article"))
    h2 = estimator10.position_histogram(TagPredicate("author"))
    benchmark(lambda: ph_join(h1, h2))

    table = format_table(
        ["grid size", "pH-join vec (us)", "pH-join literal (us)", "naive-loop ref (us)"],
        rows,
        title="Estimation time vs grid size (article//author, DBLP)",
    )
    emit("estimation_time", table)
