"""Serve-tier benchmark: admission batching under concurrent clients.

Three measurements over a live TCP server (line-delimited JSON
protocol, real sockets, durable WAL-attached service):

* **estimate latency** -- p50/p99 of lock-free (weak) estimates
  through :class:`~repro.service.client.ServiceClient` at 1, 4, and 16
  concurrent clients.  Weak reads run against the engine's pinned
  epoch view and never queue behind writers.

* **admission throughput** -- sustained insert throughput with 16
  concurrent writers when the admission batcher coalesces (one
  ``apply_batch`` + one WAL fsync per group, ``max_ops=64``) against
  the serialized baseline (``max_ops=1``: every op its own flush and
  fsync).  Acceptance bar on the full run: the coalesced server
  sustains >= 2x the serialized throughput;
  ``admission_throughput_speedup`` is floored at 1.0x in CI.

* **read isolation under a write burst** -- one reader hammers weak
  estimates while 16 writers burst inserts; a snapshot pinned before
  the burst must answer bit-identically throughout, and the reader's
  p99 latency is held to a fixed 50 ms budget
  (``read_p99_budget_overhead`` <= 1.5 in CI: reads never stall
  behind the write queue).

Writes a ``BENCH_server.json`` artifact; ``check_perf_floors.py``
guards ``admission_throughput_speedup`` and
``read_p99_budget_overhead``.

Run:  python benchmarks/bench_server.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_dblp  # noqa: E402
from repro.service import EstimationService, ServiceClient  # noqa: E402
from repro.service.server import serve_forever  # noqa: E402

QUERIES = ["//article//author", "//article//cite", "//dblp//title"]

#: Fixed per-request latency budget for reads during a write burst (s).
READ_BUDGET_SECONDS = 0.050


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def build_service(workdir: Path, name: str, scale: float) -> EstimationService:
    service = EstimationService.open_durable(
        workdir / name,
        generate_dblp(seed=7, scale=scale),
        grid_size=10,
        spacing=64,
        checkpoint_every=10**9,  # measure the log path, not checkpoints
    )
    for stats in service.catalog.register_all_tags():
        service.position_histogram(stats.predicate)
    service.estimate_many(QUERIES)
    return service


def run_clients(count: int, work, timeout: float = 300.0) -> float:
    """Run ``work(k, barrier)`` on ``count`` threads; returns wall
    seconds from the post-connect barrier to the last join."""
    barrier = threading.Barrier(count + 1)
    errors: list[BaseException] = []

    def runner(k: int) -> None:
        try:
            work(k, barrier)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=runner, args=(k,)) for k in range(count)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout)
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def measure_estimate_latency(server, clients: int, per_client: int) -> dict:
    lock = threading.Lock()
    samples: list[float] = []

    def work(k: int, barrier) -> None:
        with ServiceClient(server.host, server.port) as db:
            barrier.wait()
            local = []
            for i in range(per_client):
                query = QUERIES[i % len(QUERIES)]
                started = time.perf_counter()
                db.estimate(query)
                local.append(time.perf_counter() - started)
            with lock:
                samples.extend(local)

    run_clients(clients, work)
    return {
        "clients": clients,
        "requests": len(samples),
        "p50_ms": percentile(samples, 0.50) * 1e3,
        "p99_ms": percentile(samples, 0.99) * 1e3,
        "mean_ms": statistics.fmean(samples) * 1e3,
    }


def measure_update_throughput(
    workdir: Path, name: str, scale: float, *, max_ops: int, clients: int,
    ops_per_client: int,
) -> dict:
    service = build_service(workdir, name, scale)
    engine, server = serve_forever(
        service, max_ops=max_ops, linger=0.002 if max_ops > 1 else None
    )
    try:

        def work(k: int, barrier) -> None:
            with ServiceClient(server.host, server.port) as db:
                barrier.wait()
                for i in range(ops_per_client):
                    db.insert("article", f"<note><author>W{k}.{i}</author></note>")

        elapsed = run_clients(clients, work)
        total = clients * ops_per_client
        assert engine.stats.ops_admitted == total
        return {
            "max_ops": max_ops,
            "clients": clients,
            "ops": total,
            "seconds": elapsed,
            "ops_per_second": total / elapsed,
            "flushes": engine.stats.flushes,
            "largest_group": engine.stats.largest_group,
            "mean_group": total / max(1, engine.stats.flushes),
        }
    finally:
        server.stop()
        server.join(timeout=10)
        engine.close()
        service.close()


def measure_read_isolation(
    workdir: Path, scale: float, *, writers: int, ops_per_writer: int
) -> dict:
    service = build_service(workdir, "isolation", scale)
    engine, server = serve_forever(service, max_ops=64, linger=0.002)
    try:
        control = ServiceClient(server.host, server.port)
        pinned_values = {q: control.estimate(q, strong=True) for q in QUERIES}
        snapshot = control.snapshot()

        read_latencies: list[float] = []
        writers_done = threading.Event()

        def reader() -> None:
            with ServiceClient(server.host, server.port) as db:
                while not writers_done.is_set():
                    started = time.perf_counter()
                    db.estimate(QUERIES[0])
                    read_latencies.append(time.perf_counter() - started)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()

        def work(k: int, barrier) -> None:
            with ServiceClient(server.host, server.port) as db:
                barrier.wait()
                for i in range(ops_per_writer):
                    db.insert("article", f"<note><author>B{k}.{i}</author></note>")

        burst_seconds = run_clients(writers, work)
        writers_done.set()
        reader_thread.join(60)

        # The snapshot pinned before the burst answers bit-identically.
        drift = {
            q: abs(snapshot.estimate(q) - pinned_values[q]) for q in QUERIES
        }
        assert all(v == 0.0 for v in drift.values()), drift
        snapshot.release()
        live_moved = any(
            control.estimate(q, strong=True) != pinned_values[q] for q in QUERIES
        )
        assert live_moved, "the write burst never changed a live answer"
        control.close()

        p99 = percentile(read_latencies, 0.99)
        return {
            "writers": writers,
            "burst_ops": writers * ops_per_writer,
            "burst_seconds": burst_seconds,
            "reads_during_burst": len(read_latencies),
            "read_p50_ms": percentile(read_latencies, 0.50) * 1e3,
            "read_p99_ms": p99 * 1e3,
            "budget_ms": READ_BUDGET_SECONDS * 1e3,
            "snapshot_bit_identical": True,
        }, p99 / READ_BUDGET_SECONDS
    finally:
        server.stop()
        server.join(timeout=10)
        engine.close()
        service.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer ops (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_server.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    scale = 0.15 if args.quick else 0.8
    latency_fanouts = [1, 4] if args.quick else [1, 4, 16]
    latency_per_client = 40 if args.quick else 150
    throughput_clients = 4 if args.quick else 16
    ops_per_client = 20 if args.quick else 60
    burst_writers = 4 if args.quick else 16
    ops_per_writer = 15 if args.quick else 40

    workdir = Path(tempfile.mkdtemp(prefix="bench_server_"))
    try:
        # -- 1. estimate latency by fan-out ---------------------------------
        service = build_service(workdir, "latency", scale)
        nodes = len(service)
        print(f"synthetic dblp tree: {nodes} nodes (scale {scale})")
        engine, server = serve_forever(service, max_ops=64, linger=0.002)
        latency = []
        try:
            for fanout in latency_fanouts:
                row = measure_estimate_latency(server, fanout, latency_per_client)
                latency.append(row)
                print(
                    f"estimate latency @ {row['clients']:2d} clients: "
                    f"p50 {row['p50_ms']:6.2f} ms, p99 {row['p99_ms']:6.2f} ms "
                    f"({row['requests']} requests)"
                )
        finally:
            server.stop()
            server.join(timeout=10)
            engine.close()
            service.close()

        # -- 2. admission throughput: coalesced vs serialized ---------------
        serialized = measure_update_throughput(
            workdir, "serialized", scale, max_ops=1,
            clients=throughput_clients, ops_per_client=ops_per_client,
        )
        coalesced = measure_update_throughput(
            workdir, "coalesced", scale, max_ops=64,
            clients=throughput_clients, ops_per_client=ops_per_client,
        )
        throughput_speedup = (
            coalesced["ops_per_second"] / serialized["ops_per_second"]
        )
        print(
            f"update throughput @ {throughput_clients} clients: serialized "
            f"{serialized['ops_per_second']:7.1f} ops/s "
            f"({serialized['flushes']} flushes), coalesced "
            f"{coalesced['ops_per_second']:7.1f} ops/s "
            f"({coalesced['flushes']} flushes, largest group "
            f"{coalesced['largest_group']}) -> {throughput_speedup:.1f}x"
        )

        # -- 3. read isolation under a write burst --------------------------
        isolation, read_overhead = measure_read_isolation(
            workdir, scale, writers=burst_writers, ops_per_writer=ops_per_writer
        )
        print(
            f"read isolation @ {burst_writers} bursting writers: read p99 "
            f"{isolation['read_p99_ms']:.2f} ms (budget "
            f"{isolation['budget_ms']:.0f} ms, {read_overhead:.2f}x), "
            f"snapshot bit-identical across "
            f"{isolation['burst_ops']} writes"
        )

        artifact = {
            "meta": {"nodes": nodes, "quick": args.quick, "grid": 10, "seed": 7},
            "estimate_latency": latency,
            "throughput": {
                "serialized": serialized,
                "coalesced": coalesced,
            },
            "admission_throughput_speedup": throughput_speedup,
            "read_isolation": isolation,
            "read_p99_budget_overhead": read_overhead,
        }
        Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
        print(f"wrote {args.out}")

        if not args.quick:
            assert throughput_speedup >= 2.0, (
                f"coalesced admission {throughput_speedup:.2f}x below the "
                f"2x acceptance bar"
            )
            assert coalesced["largest_group"] >= 2, "no coalescing happened"
            assert read_overhead <= 1.5, (
                f"read p99 {isolation['read_p99_ms']:.1f} ms blew the "
                f"{isolation['budget_ms']:.0f} ms budget"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
