"""Service benchmark: incremental maintenance vs. rebuild-per-update.

An online estimator must absorb document updates without rebuilding its
statistics; this bench quantifies the payoff on a DBLP-scale tree
(>= 1e5 nodes by default):

* **rebuild-per-update** -- after every insert/delete, relabel the
  document and rebuild the histograms the workload needs (what the
  offline pipeline would have to do), then answer one estimate;
* **incremental** -- one long-lived :class:`EstimationService` absorbing
  the same update stream with delta maintenance, answering the same
  estimates.

Both sides apply an identical deterministic update sequence to
identically generated documents.  Before timing, the incremental side's
correctness is asserted with
:meth:`~repro.service.EstimationService.differential_check` (bit-identical
summaries vs. a from-scratch build).  Writes a ``BENCH_service.json``
artifact with updates/sec, estimate latency, and the speedup; the full
run asserts the >= 10x acceptance bar.

Run:  python benchmarks/bench_service.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_dblp  # noqa: E402
from repro.estimation import AnswerSizeEstimator  # noqa: E402
from repro.labeling import label_document  # noqa: E402
from repro.predicates.base import TagPredicate  # noqa: E402
from repro.service import EstimationService  # noqa: E402
from repro.xmltree.tree import Element  # noqa: E402

HOT_TAGS = ["article", "author", "title", "cite"]
QUERIES = ["//article//author", "//article//cite", "//dblp//title"]


def update_stream(rng: random.Random, count: int):
    """A deterministic mixed insert/delete description stream.

    Each op is ``("insert", article_ordinal, subtree_factory_seed)`` or
    ``("delete", article_ordinal)``; ordinals index the current article
    list, so the same stream replays identically on any equal document.
    """
    ops = []
    for _ in range(count):
        if rng.random() < 0.6:
            ops.append(("insert", rng.random(), rng.randrange(1, 4)))
        else:
            ops.append(("delete", rng.random()))
    return ops


def make_subtree(size: int) -> Element:
    """A small citation blurb: 1-3 authors under a note element."""
    root = Element("note")
    for k in range(size):
        author = Element("author")
        author.append_text(f"Author {k}")
        root.append(author)
    return root


def pick_article(indices, fraction: float) -> int:
    return int(indices[int(fraction * (len(indices) - 1))])


def prime(estimator: AnswerSizeEstimator) -> None:
    """Build the histograms the estimate workload touches."""
    for tag in HOT_TAGS:
        estimator.position_histogram(TagPredicate(tag))
    estimator.coverage_histogram(TagPredicate("article"))


def run_incremental(document, grid: int, ops, check: bool):
    service = EstimationService(document, grid_size=grid, spacing=64)
    prime(service.estimator)
    article = TagPredicate("article")

    applied = 0
    t0 = time.perf_counter()
    for op in ops:
        articles = service.catalog.stats(article).node_indices
        if op[0] == "insert":
            target = pick_article(articles, op[1])
            service.insert_subtree(target, make_subtree(op[2]))
        else:
            target = pick_article(articles, op[1])
            service.delete_subtree(target)
        applied += 1
    update_seconds = time.perf_counter() - t0

    if check:
        service.differential_check(QUERIES)

    t0 = time.perf_counter()
    values = [service.estimate(q).value for q in QUERIES]
    estimate_seconds = (time.perf_counter() - t0) / len(QUERIES)
    return {
        "updates": applied,
        "update_seconds": update_seconds,
        "updates_per_sec": applied / update_seconds,
        "estimate_latency_seconds": estimate_seconds,
        "rebuilds": service.stats.rebuilds,
        "final_nodes": len(service),
        "estimates": values,
    }


def run_rebuild(document, grid: int, ops):
    """Rebuild-per-update baseline: relabel + rebuild after every op."""
    article = TagPredicate("article")

    def fresh_estimator():
        tree = label_document(document)
        estimator = AnswerSizeEstimator(tree, grid_size=grid)
        prime(estimator)
        return estimator

    estimator = fresh_estimator()
    applied = 0
    t0 = time.perf_counter()
    for op in ops:
        articles = estimator.catalog.stats(article).node_indices
        target = pick_article(articles, op[1])
        element = estimator.tree.elements[target]
        if op[0] == "insert":
            element.append(make_subtree(op[2]))
        else:
            element.parent.children.remove(element)
            element.parent = None
        estimator = fresh_estimator()
        applied += 1
    update_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    values = [estimator.estimate(q).value for q in QUERIES]
    estimate_seconds = (time.perf_counter() - t0) / len(QUERIES)
    return {
        "updates": applied,
        "update_seconds": update_seconds,
        "updates_per_sec": applied / update_seconds,
        "estimate_latency_seconds": estimate_seconds,
        "final_nodes": len(estimator.tree),
        "estimates": values,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer ops (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_service.json"),
        help="where to write the JSON trajectory artifact",
    )
    args = parser.parse_args(argv)

    scale = 0.25 if args.quick else 2.2
    incremental_ops = 40 if args.quick else 200
    rebuild_ops = 3 if args.quick else 5

    rng = random.Random(11)
    ops = update_stream(rng, incremental_ops)

    document = generate_dblp(seed=7, scale=scale)
    nodes = document.count_nodes()
    print(f"synthetic dblp tree: {nodes} nodes (scale {scale})")

    incremental = run_incremental(document, grid=10, ops=ops, check=True)
    print(
        f"incremental      {incremental['updates']:4d} updates  "
        f"{incremental['updates_per_sec']:10.1f} updates/s  "
        f"estimate {incremental['estimate_latency_seconds'] * 1e3:.3f} ms  "
        f"(differential check passed, {incremental['rebuilds']} rebuilds)"
    )

    rebuild_doc = generate_dblp(seed=7, scale=scale)
    rebuild = run_rebuild(rebuild_doc, grid=10, ops=ops[:rebuild_ops])
    print(
        f"rebuild-per-op   {rebuild['updates']:4d} updates  "
        f"{rebuild['updates_per_sec']:10.1f} updates/s  "
        f"estimate {rebuild['estimate_latency_seconds'] * 1e3:.3f} ms"
    )

    speedup = incremental["updates_per_sec"] / rebuild["updates_per_sec"]
    print(f"incremental speedup: {speedup:.1f}x")

    artifact = {
        "meta": {"nodes": nodes, "quick": args.quick, "grid": 10, "seed": 11},
        "incremental": incremental,
        "rebuild_per_update": rebuild,
        "speedup": speedup,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
    print(f"wrote {args.out}")

    if not args.quick:
        assert nodes >= 100_000, f"full run must cover >= 1e5 nodes, got {nodes}"
        assert speedup >= 10.0, f"speedup {speedup:.1f}x below the 10x acceptance bar"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
