"""Experiment F7/F8 -- the paper's running example (Figs. 1, 7, 8).

faculty//TA on the Fig. 1 document with 2x2 histograms: the paper
quotes naive 15, schema upper bound 5, primitive estimate 0.6,
no-overlap estimate 1.9, real 2.  The benchmarked kernel is the full
pipeline on the tiny document (labeling + summaries + both estimates).
"""

from __future__ import annotations

from conftest import emit

from repro.datasets import paper_example_document
from repro.estimation import AnswerSizeEstimator
from repro.labeling import label_document
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table


def run_example():
    tree = label_document(paper_example_document())
    estimator = AnswerSizeEstimator(tree, grid_size=2)
    fac, ta = TagPredicate("faculty"), TagPredicate("TA")
    return {
        "naive": estimator.estimate_pair(fac, ta, method="naive").value,
        "upper-bound": estimator.estimate_pair(fac, ta, method="upper-bound").value,
        "overlap": estimator.estimate_pair(fac, ta, method="ph-join").value,
        "no-overlap": estimator.estimate_pair(fac, ta, method="no-overlap").value,
        "real": estimator.real_answer("//faculty//TA"),
    }


def test_fig7_worked_example(benchmark):
    values = benchmark(run_example)

    paper = {"naive": 15, "upper-bound": 5, "overlap": 0.6, "no-overlap": 1.9, "real": 2}
    rows = [
        [name, round(values[name], 3), paper[name]]
        for name in ("naive", "upper-bound", "overlap", "no-overlap", "real")
    ]
    table = format_table(
        ["Estimator", "Ours", "Paper"],
        rows,
        title="Figs. 7-8 -- faculty//TA worked example (2x2 grid, Fig. 1 document)",
    )
    emit("fig7_example", table)

    assert values["naive"] == 15
    assert values["upper-bound"] == 5
    assert values["real"] == 2
    assert 0.2 <= values["overlap"] <= 1.5
    assert 1.5 <= values["no-overlap"] <= 2.4
