"""Experiment ORD -- ordered-semantics estimation (future-work item).

The conclusion of the paper defers "queries with ordered semantics" to
the tech report.  Position histograms support a following/preceding
estimator with the same machinery (see
:mod:`repro.estimation.ordered`); this bench validates it across both
data sets and sweeps grid size to show the boundary half-weight error
vanishing as cells shrink.
"""

from __future__ import annotations

from conftest import emit

from repro.estimation import AnswerSizeEstimator
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table

PAIRS = [
    ("dblp", "article", "book"),
    ("dblp", "cite", "cdrom"),
    ("orgchart", "employee", "email"),
    ("orgchart", "department", "employee"),
]


def test_ordered_following_estimation(benchmark, dblp_estimator, orgchart_estimator):
    estimators = {"dblp": dblp_estimator, "orgchart": orgchart_estimator}

    def run_all():
        out = []
        for dataset, before_tag, after_tag in PAIRS:
            estimator = estimators[dataset]
            before, after = TagPredicate(before_tag), TagPredicate(after_tag)
            estimate = estimator.estimate_following(before, after)
            real = estimator.real_following(before, after)
            out.append((dataset, before_tag, after_tag, estimate.value, real))
        return out

    results = benchmark(run_all)

    rows = []
    for dataset, before_tag, after_tag, value, real in results:
        rows.append(
            [
                dataset,
                f"{before_tag} << {after_tag}",
                round(value, 1),
                real,
                round(value / real, 3) if real else "-",
            ]
        )
        if real > 100:
            assert abs(value - real) / real < 0.3
    table = format_table(
        ["dataset", "order pattern", "estimate", "real", "est/real"],
        rows,
        title="Ordered semantics -- following-pair estimation (10x10 grids)",
    )

    # Grid sweep: the boundary error shrinks with finer grids.
    sweep_rows = []
    before, after = TagPredicate("article"), TagPredicate("book")
    real = dblp_estimator.real_following(before, after)
    for g in (2, 5, 10, 20, 40):
        estimator = AnswerSizeEstimator(dblp_estimator.tree, grid_size=g)
        value = estimator.estimate_following(before, after).value
        sweep_rows.append([g, round(value, 1), real, round(value / real, 4)])
    sweep = format_table(
        ["grid size", "estimate", "real", "est/real"],
        sweep_rows,
        title="article << book accuracy vs grid size",
    )
    emit("ordered", table + "\n\n" + sweep)

    first_ratio = abs(sweep_rows[0][3] - 1.0)
    last_ratio = abs(sweep_rows[-1][3] - 1.0)
    assert last_ratio <= first_ratio + 1e-9
