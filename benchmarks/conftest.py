"""Shared fixtures and reporting helpers for the experiment benches.

Every bench regenerates one table or figure of the paper.  Rendered
tables are written to ``benchmarks/results/*.txt`` (and echoed to
stdout) so the paper-vs-measured comparison in EXPERIMENTS.md can be
refreshed from the files.

The data sets here are larger than the unit-test fixtures: Table 1's
DBLP snapshot had ~0.5M nodes; we default to ~55k (scale 1.0) to keep a
bench run under a minute while preserving all structural ratios.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import generate_dblp, generate_orgchart, paper_example_document
from repro.estimation import AnswerSizeEstimator
from repro.labeling import label_document

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered experiment table and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def dblp_estimator() -> AnswerSizeEstimator:
    tree = label_document(generate_dblp(seed=7, scale=1.0))
    return AnswerSizeEstimator(tree, grid_size=10)


@pytest.fixture(scope="session")
def orgchart_estimator() -> AnswerSizeEstimator:
    tree = label_document(generate_orgchart(seed=42))
    return AnswerSizeEstimator(tree, grid_size=10)


@pytest.fixture(scope="session")
def paper_estimator() -> AnswerSizeEstimator:
    tree = label_document(paper_example_document())
    return AnswerSizeEstimator(tree, grid_size=2)
