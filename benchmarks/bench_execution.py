"""Experiment EXEC -- estimate-driven plans vs measured execution work.

Runs every connected join order for each twig through the physical
executor (stack-tree joins + binding expansion) and compares the
*measured* work of the estimate-chosen plan against the best and worst
measured plans.  This is the full version of the paper's motivating
story: estimates -> plan choice -> actual execution savings.
"""

from __future__ import annotations

from conftest import emit

from repro.engine import PlanExecutor
from repro.optimizer import Optimizer
from repro.optimizer.plans import enumerate_plans
from repro.query.xpath import parse_xpath
from repro.utils.tables import format_table

WORKLOAD = [
    ("dblp", "//article[.//cdrom]//author"),
    ("dblp", "//article[.//author]//cite"),
    ("dblp", "//inproceedings[.//author][.//cite]//title"),
    ("orgchart", "//manager//department[.//employee]//email"),
]


def test_execution_validates_plan_choice(benchmark, dblp_estimator, orgchart_estimator):
    estimators = {"dblp": dblp_estimator, "orgchart": orgchart_estimator}

    def run_all():
        out = []
        for dataset, xpath in WORKLOAD:
            estimator = estimators[dataset]
            pattern = parse_xpath(xpath)
            optimizer = Optimizer(estimator)
            executor = PlanExecutor(estimator.tree, estimator.catalog)
            choice = optimizer.choose_plan(pattern)

            works = {}
            match_counts = set()
            for plan in enumerate_plans(pattern):
                table, stats = executor.execute(pattern, plan)
                works[plan.steps] = stats.total_work
                match_counts.add(len(table))
            assert len(match_counts) == 1  # every order computes the same twig

            chosen = works[choice.best.plan.steps]
            out.append(
                (
                    dataset,
                    xpath,
                    match_counts.pop(),
                    chosen,
                    min(works.values()),
                    max(works.values()),
                )
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for dataset, xpath, matches, chosen, best, worst in results:
        rows.append(
            [
                dataset,
                xpath,
                matches,
                chosen,
                best,
                worst,
                round(chosen / best, 2),
                round(worst / best, 2),
            ]
        )
        # The estimate-driven plan must land near the measured optimum,
        # and the spread must show that plan choice actually matters.
        assert chosen <= best * 2.0, xpath
    table = format_table(
        [
            "dataset",
            "query",
            "matches",
            "chosen work",
            "best work",
            "worst work",
            "chosen/best",
            "worst/best",
        ],
        rows,
        title="Measured execution work: estimate-chosen plan vs best/worst join order",
    )
    emit("execution", table)
