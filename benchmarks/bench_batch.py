"""Batch-tier benchmark: batched updates and sharded statistics builds.

Two measurements over a DBLP-scale tree (>= 1e5 nodes in the full run):

* **batched vs. per-update application** -- the same element-addressed
  update stream (mixed subtree inserts and deletes) applied through
  ``insert_subtree``/``delete_subtree`` one call at a time, and through
  ``apply_batch`` in fixed-size batches.  Both sides finish in exactly
  the same database state; before timing is trusted, both must pass
  ``differential_check`` (every maintained summary bit-identical to a
  from-scratch build).  Target: >= 5x more updates/second batched.

* **sharded parallel build vs. the serial build path** -- the full
  statistics set (labels, per-tag catalog index, per-tag position
  histograms, TRUE, coverage for every no-overlap tag) built the way
  the service's rebuild worked before the batch tier existed (Python
  DFS relabel + lazy per-predicate builds), against the sharded path
  (vectorised arithmetic relabel + per-shard builds merged by integer
  addition) on a 4-worker process pool.  The sharded result is checked
  cell-for-cell against the serial one before timing.  Target: >= 2x.
  (On a single-core host the win comes from the vectorised relabel and
  the nearest-member coverage formulation; extra cores scale the shard
  phase on top.)

Writes a ``BENCH_batch.json`` artifact; the full run asserts the
acceptance bars.

Run:  python benchmarks/bench_batch.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.datasets import generate_dblp  # noqa: E402
from repro.estimation import AnswerSizeEstimator  # noqa: E402
from repro.histograms.coverage import build_coverage_numerators  # noqa: E402
from repro.histograms.parallel import build_statistics_parallel, create_pool  # noqa: E402
from repro.labeling import label_forest, relabel_preorder  # noqa: E402
from repro.predicates.base import TagPredicate  # noqa: E402
from repro.service import DeleteOp, EstimationService, InsertOp  # noqa: E402
from repro.xmltree.tree import Element  # noqa: E402

HOT_TAGS = ["article", "author", "title", "cite"]
QUERIES = ["//article//author", "//article//cite", "//dblp//title"]


def make_subtree(size: int) -> Element:
    root = Element("note")
    for k in range(size):
        author = Element("author")
        author.append_text(f"Author {k}")
        root.append(author)
    return root


def prime(service: EstimationService) -> None:
    for tag in HOT_TAGS:
        service.position_histogram(TagPredicate(tag))
    service.coverage_histogram(TagPredicate("article"))
    _ = service.estimator.true_histogram


def update_stream(rng: random.Random, count: int, article_count: int):
    """``(kind, article_ordinal, subtree_size)`` descriptions.

    Article ordinals are sampled without replacement so no article is
    updated twice: the stream replays identically element-addressed on
    any equal document, and neither side hits a gap-exhaustion rebuild
    (which would re-bucket labels and make the comparison about rebuild
    timing instead of maintenance cost).
    """
    ordinals = rng.sample(range(article_count), count)
    ops = []
    for ordinal in ordinals:
        if rng.random() < 0.6:
            ops.append(("insert", ordinal, rng.randrange(1, 4)))
        else:
            ops.append(("delete", ordinal, 0))
    return ops


def resolve_targets(service: EstimationService, ops):
    """Element handles for the whole stream, against the initial state.

    Valid because each article is targeted at most once: a handle can
    only go stale if an earlier op deletes its subtree.
    """
    articles = service.catalog.stats(TagPredicate("article")).node_indices
    resolved = []
    for kind, ordinal, size in ops:
        element = service.tree.elements[int(articles[ordinal])]
        resolved.append((kind, element, size))
    return resolved


def run_sequential(document, ops, batch_size):
    service = EstimationService(document, grid_size=10, spacing=64)
    prime(service)
    stream = resolve_targets(service, ops)
    elapsed = 0.0
    for start in range(0, len(stream), batch_size):
        t0 = time.perf_counter()
        for kind, element, size in stream[start : start + batch_size]:
            if kind == "insert":
                service.insert_subtree(element, make_subtree(size))
            else:
                service.delete_subtree(element)
        elapsed += time.perf_counter() - t0
    service.differential_check(QUERIES)
    return service, {
        "updates": len(ops),
        "update_seconds": elapsed,
        "updates_per_sec": len(ops) / elapsed,
        "rebuilds": service.stats.rebuilds,
        "final_nodes": len(service),
    }


def run_batched(document, ops, batch_size):
    service = EstimationService(document, grid_size=10, spacing=64)
    prime(service)
    stream = resolve_targets(service, ops)
    elapsed = 0.0
    batches = 0
    for start in range(0, len(stream), batch_size):
        batch = [
            InsertOp(element, make_subtree(size))
            if kind == "insert"
            else DeleteOp(element)
            for kind, element, size in stream[start : start + batch_size]
        ]
        t0 = time.perf_counter()
        service.apply_batch(batch)
        elapsed += time.perf_counter() - t0
        batches += 1
    service.differential_check(QUERIES)
    return service, {
        "updates": len(ops),
        "batches": batches,
        "batch_size": batch_size,
        "update_seconds": elapsed,
        "updates_per_sec": len(ops) / elapsed,
        "rebuilds": service.stats.rebuilds,
        "final_nodes": len(service),
    }


def serial_full_build(documents, grid_size):
    """The pre-batch-tier build path: DFS labeling + lazy per-predicate
    builds of everything the service serves."""
    tree = label_forest(documents, spacing=64)
    estimator = AnswerSizeEstimator(tree, grid_size=grid_size)
    rows = estimator.catalog.register_all_tags()
    for row in rows:
        estimator.position_histogram(row.predicate)
    _ = estimator.true_histogram
    for row in rows:
        if row.no_overlap:
            estimator.coverage_histogram(row.predicate)
    return tree, estimator


def check_build_identity(tree, estimator, built):
    rows = list(estimator.catalog)
    assert set(built.tag_indices) == {row.predicate.name for row in rows}
    for row in rows:
        tag = row.predicate.name
        assert np.array_equal(built.tag_indices[tag], row.node_indices), tag
        assert built.no_overlap[tag] == row.no_overlap, tag
        assert dict(built.position[tag].cells()) == dict(
            estimator.position_histogram(row.predicate).cells()
        ), tag
        if row.no_overlap:
            assert built.coverage_numerators[tag] == build_coverage_numerators(
                tree, row.node_indices, estimator.grid
            ), tag
    assert dict(built.true_histogram.cells()) == dict(
        estimator.true_histogram.cells()
    )


def bench_parallel_build(documents, grid_size, workers, repeats):
    serial_seconds = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        tree, estimator = serial_full_build(documents, grid_size)
        serial_seconds.append(time.perf_counter() - t0)

    pool = create_pool(workers)
    try:
        built = build_statistics_parallel(
            tree, estimator.grid, n_workers=workers, pool=pool
        )
        check_build_identity(tree, estimator, built)
        sharded_seconds = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            relabel_preorder(tree, spacing=64)
            built = build_statistics_parallel(
                tree, estimator.grid, n_workers=workers, pool=pool
            )
            sharded_seconds.append(time.perf_counter() - t0)
    finally:
        pool.terminate()
        pool.join()

    serial_best = min(serial_seconds)
    sharded_best = min(sharded_seconds)
    return {
        "workers": workers,
        "shards": built.shards,
        "repeats": repeats,
        "serial_seconds": serial_best,
        "sharded_seconds": sharded_best,
        "speedup": serial_best / sharded_best,
        "bit_identical": True,
        "tags": len(built.tag_indices),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree / fewer ops (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_batch.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    # Quick mode still needs enough tree for the sharded build's win to
    # clear pool overhead with margin (the CI floor guard wants >= 1x).
    scale = 0.6 if args.quick else 2.2
    op_count = 40 if args.quick else 320
    batch_size = 20 if args.quick else 80
    repeats = 3 if args.quick else 3

    rng = random.Random(11)
    document = generate_dblp(seed=7, scale=scale)
    nodes = document.count_nodes()
    article_count = sum(1 for e in document.iter_elements() if e.tag == "article")
    print(f"synthetic dblp tree: {nodes} nodes, {article_count} articles (scale {scale})")

    ops = update_stream(rng, op_count, article_count)

    _, sequential = run_sequential(generate_dblp(seed=7, scale=scale), ops, batch_size)
    print(
        f"per-update       {sequential['updates']:4d} updates  "
        f"{sequential['updates_per_sec']:10.1f} updates/s  "
        f"(differential check passed, {sequential['rebuilds']} rebuilds)"
    )
    batched_service, batched = run_batched(
        generate_dblp(seed=7, scale=scale), ops, batch_size
    )
    print(
        f"batched x{batched['batch_size']:<4d}    {batched['updates']:4d} updates  "
        f"{batched['updates_per_sec']:10.1f} updates/s  "
        f"(differential check passed, {batched['rebuilds']} rebuilds)"
    )
    assert batched["final_nodes"] == sequential["final_nodes"]
    update_speedup = batched["updates_per_sec"] / sequential["updates_per_sec"]
    print(f"batched update speedup: {update_speedup:.1f}x")

    build = bench_parallel_build([generate_dblp(seed=7, scale=scale)], 10, 4, repeats)
    print(
        f"statistics build: serial {build['serial_seconds']:.3f}s, "
        f"sharded x{build['workers']} {build['sharded_seconds']:.3f}s "
        f"-> {build['speedup']:.1f}x (bit-identical over {build['tags']} tags)"
    )

    artifact = {
        "meta": {
            "nodes": nodes,
            "articles": article_count,
            "quick": args.quick,
            "grid": 10,
            "seed": 11,
        },
        "per_update": sequential,
        "batched": batched,
        "batched_update_speedup": update_speedup,
        "parallel_build": build,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=1) + "\n")
    print(f"wrote {args.out}")

    if not args.quick:
        assert nodes >= 100_000, f"full run must cover >= 1e5 nodes, got {nodes}"
        assert update_speedup >= 5.0, (
            f"batched speedup {update_speedup:.1f}x below the 5x acceptance bar"
        )
        assert build["speedup"] >= 2.0, (
            f"build speedup {build['speedup']:.1f}x below the 2x acceptance bar"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
