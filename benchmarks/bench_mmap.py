"""Out-of-core storage benchmark: mmap-backed lazy warm start vs .npz.

One durable XMark-scale service is built and fully checkpointed twice
-- once in the page-file container, once in the legacy ``.npz``
spelling -- then each warm-start mode runs in its **own subprocess**
(``ru_maxrss`` is a process-wide high-water mark, so modes cannot share
a process without polluting each other's peak):

* ``npz``       -- eager ``open_durable`` over the ``.npz`` checkpoint:
                   the legacy bulk load (decompress every member, build
                   every ``Element``);
* ``eager``     -- eager ``open_durable`` over the page-file pair:
                   label arrays adopted as zero-copy mmap views, forest
                   still decoded up front;
* ``lazy``      -- ``open_durable(lazy=True)``: the forest stays on
                   disk; estimation is served from the mapping and the
                   catalog's stored tag index.

Every mode answers the same query set and the values must be
bit-identical before any timing is trusted.  Acceptance bars (embedded
in the artifact, enforced by ``check_perf_floors.py``):

* ``warm_start_speedup`` (npz open time / lazy open time)  >= 2.0x
* ``lazy_rss_ratio`` (lazy peak-RSS delta / npz peak-RSS delta,
  both net of an import-only baseline process)              <= 0.6x

Writes a ``BENCH_mmap.json`` artifact.

Run:  python benchmarks/bench_mmap.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import generate_xmark  # noqa: E402
from repro.service import EstimationService  # noqa: E402

QUERIES = [
    "//item//parlist",
    "//people//person",
    "//open_auction//increase",
    "//site//name",
]


def prime(service) -> None:
    for stats in service.catalog.register_all_tags():
        service.position_histogram(stats.predicate)
        service.coverage_histogram(stats.predicate)
    _ = service.estimator.true_histogram


def peak_rss_kb() -> int:
    """Peak resident set of THIS process image, in KiB.

    ``VmHWM`` is preferred over ``ru_maxrss``: the rusage counter
    survives ``exec``, so a child forked from a parent that held the
    whole dataset would inherit the parent's high-water mark and every
    mode would report the same number.  ``VmHWM`` belongs to the
    process image and resets on ``exec``.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# -- child modes (one process per measurement) -------------------------------


def run_child(mode: str, directory: str) -> int:
    """Open the durable directory per ``mode``, estimate, report JSON."""
    if mode == "baseline":
        # Import-only floor: the interpreter + numpy + repro modules,
        # no data.  Both RSS deltas are taken against this.
        print(json.dumps({"mode": mode, "rss_kb": peak_rss_kb()}))
        return 0
    started = time.perf_counter()
    service = EstimationService.open_durable(directory, lazy=(mode == "lazy"))
    open_seconds = time.perf_counter() - started
    started = time.perf_counter()
    estimates = {q: service.estimate(q).value for q in QUERIES}
    estimate_seconds = time.perf_counter() - started
    forced = getattr(service.tree.elements, "materialized", True)
    if mode == "lazy" and forced:
        print("lazy warm start materialised the forest", file=sys.stderr)
        return 1
    print(
        json.dumps(
            {
                "mode": mode,
                "nodes": len(service),
                "open_seconds": open_seconds,
                "estimate_seconds": estimate_seconds,
                "estimates": estimates,
                "forest_materialized": bool(forced),
                "rss_kb": peak_rss_kb(),
            }
        )
    )
    service.close()
    return 0


def measure(mode: str, directory: Path) -> dict:
    proc = subprocess.run(
        [sys.executable, __file__, "--child", mode, "--dir", str(directory)],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {mode!r} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


# -- the benchmark -----------------------------------------------------------


def build_checkpoints(workdir: Path, scale: float) -> tuple[Path, Path, dict]:
    """Build one durable service, checkpoint it in both containers."""
    pgf_dir = workdir / "wal-pagefile"
    npz_dir = workdir / "wal-npz"

    started = time.perf_counter()
    document = generate_xmark(seed=23, scale=scale)
    nodes = document.count_nodes()
    print(f"xmark tree: {nodes} nodes "
          f"({time.perf_counter() - started:.1f}s to generate)")

    started = time.perf_counter()
    service = EstimationService.open_durable(
        pgf_dir, document, grid_size=10, spacing=64, checkpoint_every=10**9
    )
    prime(service)
    service.checkpoint(full=True)
    live = {q: service.estimate(q).value for q in QUERIES}
    service.close()
    print(f"durable build + page-file checkpoint: "
          f"{time.perf_counter() - started:.1f}s")

    # Same state, legacy container: clone the directory and re-cut the
    # checkpoint as .npz (the rewrite drops the page-file twin).
    started = time.perf_counter()
    shutil.copytree(pgf_dir, npz_dir)
    service = EstimationService.open_durable(npz_dir)
    service._ckpt_container = "npz"
    service.checkpoint(full=True)
    service.close()
    print(f".npz re-checkpoint: {time.perf_counter() - started:.1f}s")
    return pgf_dir, npz_dir, {"nodes": nodes, "estimates": live}


def bench(scale: float, quick: bool, workdir: Path) -> dict:
    pgf_dir, npz_dir, built = build_checkpoints(workdir, scale)

    baseline = measure("baseline", pgf_dir)
    npz = measure("npz", npz_dir)
    eager = measure("eager", pgf_dir)
    lazy = measure("lazy", pgf_dir)

    for mode in (npz, eager, lazy):
        assert mode["estimates"] == built["estimates"], (
            f"{mode['mode']} estimates diverged from the live service"
        )
        assert mode["nodes"] == built["nodes"], mode["mode"]
    assert not lazy["forest_materialized"]

    base_kb = baseline["rss_kb"]
    npz_delta = max(1, npz["rss_kb"] - base_kb)
    lazy_delta = max(0, lazy["rss_kb"] - base_kb)
    eager_delta = max(0, eager["rss_kb"] - base_kb)
    record = {
        "quick": quick,
        "scale": scale,
        "nodes": built["nodes"],
        "baseline_rss_kb": base_kb,
        "npz": npz,
        "pagefile_eager": eager,
        "pagefile_lazy": lazy,
        "warm_start_speedup": npz["open_seconds"] / lazy["open_seconds"],
        "eager_open_ratio": npz["open_seconds"] / eager["open_seconds"],
        "lazy_rss_ratio": lazy_delta / npz_delta,
        "eager_rss_ratio": eager_delta / npz_delta,
        "floors": {"warm_start_speedup": 2.0},
        "ceilings": {"lazy_rss_ratio": 0.6},
    }
    print(
        f"warm start: npz {npz['open_seconds']:.3f}s, "
        f"pagefile eager {eager['open_seconds']:.3f}s, "
        f"lazy {lazy['open_seconds']:.3f}s "
        f"-> {record['warm_start_speedup']:.1f}x"
    )
    print(
        f"peak RSS over baseline ({base_kb} KiB): npz +{npz_delta} KiB, "
        f"eager +{eager_delta} KiB, lazy +{lazy_delta} KiB "
        f"-> lazy ratio {record['lazy_rss_ratio']:.2f}x"
    )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small tree for CI smoke (ratios still bound)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the XMark scale factor")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_mmap.json"),
    )
    parser.add_argument("--child", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return run_child(args.child, args.dir)

    scale = args.scale if args.scale is not None else (20 if args.quick else 640)
    workdir = Path(tempfile.mkdtemp(prefix="bench_mmap_"))
    try:
        record = bench(scale, args.quick, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")
    ok = (
        record["warm_start_speedup"] >= record["floors"]["warm_start_speedup"]
        and record["lazy_rss_ratio"] <= record["ceilings"]["lazy_rss_ratio"]
    )
    print("acceptance:", "ok" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
