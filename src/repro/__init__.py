"""repro -- reproduction of "Estimating Answer Sizes for XML Queries".

Wu, Patel, Jagadish (EDBT 2002): position histograms, the pH-join
estimation algorithm, coverage histograms for no-overlap predicates, and
cascaded twig-pattern answer-size estimation, implemented over a
self-contained XML substrate (parser, interval labeling, predicates,
exact matchers, DTD tools, data generators, and a small cost-based
optimizer).

Quickstart::

    from repro import AnswerSizeEstimator, label_document, parse_document

    doc = parse_document(open("data.xml").read())
    tree = label_document(doc)
    est = AnswerSizeEstimator(tree, grid_size=10)
    print(est.estimate("//article//author").value)
    print(est.real_answer("//article//author"))
"""

from repro.estimation import (
    AnswerSizeEstimator,
    EstimationResult,
    TwigEstimator,
    naive_product_estimate,
    no_overlap_estimate,
    ph_join,
    ph_join_literal,
    upper_bound_estimate,
)
from repro.histograms import (
    CoverageHistogram,
    GridSpec,
    PositionHistogram,
    build_coverage_histogram,
    build_position_histogram,
    build_true_histogram,
)
from repro.labeling import LabeledTree, label_document, label_forest
from repro.predicates import (
    PredicateCatalog,
    TagPredicate,
    TruePredicate,
)
from repro.query import PatternTree, count_matches, parse_xpath
from repro.service import EstimationService
from repro.xmltree import Document, Element, parse_document

__version__ = "1.0.0"

__all__ = [
    "AnswerSizeEstimator",
    "CoverageHistogram",
    "Document",
    "Element",
    "EstimationResult",
    "EstimationService",
    "GridSpec",
    "LabeledTree",
    "PatternTree",
    "PositionHistogram",
    "PredicateCatalog",
    "TagPredicate",
    "TruePredicate",
    "TwigEstimator",
    "build_coverage_histogram",
    "build_position_histogram",
    "build_true_histogram",
    "count_matches",
    "label_document",
    "label_forest",
    "naive_product_estimate",
    "no_overlap_estimate",
    "parse_document",
    "parse_xpath",
    "ph_join",
    "ph_join_literal",
    "upper_bound_estimate",
]
