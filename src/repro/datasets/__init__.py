"""Data sets for experiments: the paper's example plus generators.

The paper evaluates on DBLP, XMark, Shakespeare and IBM-generator
synthetic data.  None of those artifacts are redistributable here, so
each is *simulated* by a seeded generator that reproduces the structural
characteristics the estimation problem depends on (see DESIGN.md §4 for
the substitution argument):

* :mod:`repro.datasets.paper_example` -- the exact Fig. 1 department
  document (3 faculty, 5 TA, real faculty//TA answer = 2).
* :mod:`repro.datasets.dblp` -- a DBLP-like bibliography (Table 1).
* :mod:`repro.datasets.orgchart` -- the manager/department/employee DTD
  of Section 5.2, generated through the DTD-driven generator with deep
  recursion (Table 3).
* :mod:`repro.datasets.generator` -- the IBM-XML-generator analogue: a
  random document generator driven by any parsed DTD.
* :mod:`repro.datasets.shakespeare` / :mod:`repro.datasets.xmark` --
  small analogues of the paper's other two data sets, used for
  robustness tests.
"""

from repro.datasets.dblp import generate_dblp
from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.datasets.orgchart import ORGCHART_DTD, generate_orgchart
from repro.datasets.paper_example import paper_example_document
from repro.datasets.shakespeare import generate_shakespeare
from repro.datasets.treebank import generate_treebank
from repro.datasets.xmark import generate_xmark

__all__ = [
    "DtdGenerator",
    "GeneratorConfig",
    "ORGCHART_DTD",
    "generate_dblp",
    "generate_orgchart",
    "generate_shakespeare",
    "generate_treebank",
    "generate_xmark",
    "paper_example_document",
]
