"""A Shakespeare-play-like data set (substitute for the ibiblio corpus).

The paper reports that results on the Shakespeare play collection were
"substantially similar" to DBLP.  This generator reproduces the play
markup hierarchy (PLAY / ACT / SCENE / SPEECH / SPEAKER / LINE), which
is strictly non-recursive (every tag predicate is no-overlap) but deeper
than DBLP -- a useful robustness point between the flat bibliography and
the recursive orgchart.
"""

from __future__ import annotations

import random

from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import Document

_SPEAKERS = (
    "HAMLET OPHELIA CLAUDIUS GERTRUDE HORATIO LAERTES POLONIUS "
    "ROSENCRANTZ GUILDENSTERN FORTINBRAS"
).split()
_WORDS = (
    "the and to of a my in you is not it that with this for be his "
    "what but as he have so do will thou all by we him no"
).split()


def generate_shakespeare(seed: int = 11, plays: int = 2) -> Document:
    """Generate a collection of ``plays`` Shakespeare-like plays."""
    if plays < 1:
        raise ValueError("need at least one play")
    rng = random.Random(seed)
    builder = TreeBuilder()
    builder.start("PLAYS")
    for p in range(plays):
        builder.start("PLAY")
        builder.leaf("TITLE", f"The Tragedy of Play {p + 1}")
        for act_number in range(1, rng.randint(3, 5) + 1):
            builder.start("ACT")
            builder.leaf("TITLE", f"ACT {act_number}")
            for scene_number in range(1, rng.randint(2, 6) + 1):
                builder.start("SCENE")
                builder.leaf("TITLE", f"SCENE {scene_number}")
                for _ in range(rng.randint(4, 18)):
                    builder.start("SPEECH")
                    builder.leaf("SPEAKER", rng.choice(_SPEAKERS))
                    for _ in range(rng.randint(1, 6)):
                        line = " ".join(
                            rng.choice(_WORDS) for _ in range(rng.randint(4, 9))
                        )
                        builder.leaf("LINE", line)
                    builder.end()
                builder.end()
            builder.end()
        builder.end()
    builder.end()
    return builder.finish()
