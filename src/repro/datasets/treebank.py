"""A Treebank-like data set: deep linguistic parse trees.

Penn-Treebank-style XML is the classic stress test for XML cardinality
estimation: almost every tag (S, NP, VP, PP, SBAR) is recursive, so
nearly all predicates have the *overlap* property and nesting depth is
large and skewed.  The paper claims its technique is "insensitive to
depth of tree" -- this generator provides the data to test exactly
that, complementing the shallow DBLP and the moderately recursive
orgchart.

The grammar below is a tiny PCFG over the usual phrase labels; the
generator expands it with depth damping so sentences terminate while
still producing nesting depths of 15+.
"""

from __future__ import annotations

import random

from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import Document

# Phrase label -> list of (weight, children) productions.  "TOKEN"
# expands to a terminal word.
_GRAMMAR: dict[str, list[tuple[float, tuple[str, ...]]]] = {
    "S": [
        (0.6, ("NP", "VP")),
        (0.2, ("S", "CC", "S")),
        (0.2, ("PP", "NP", "VP")),
    ],
    "NP": [
        (0.4, ("DT", "NN")),
        (0.25, ("NP", "PP")),
        (0.2, ("DT", "JJ", "NN")),
        (0.15, ("NP", "SBAR")),
    ],
    "VP": [
        (0.4, ("VB", "NP")),
        (0.25, ("VB", "NP", "PP")),
        (0.2, ("VB", "SBAR")),
        (0.15, ("VB",)),
    ],
    "PP": [(1.0, ("IN", "NP"))],
    "SBAR": [(1.0, ("IN", "S"))],
}

_TERMINALS = {
    "DT": ["the", "a", "this", "that"],
    "NN": ["histogram", "query", "answer", "tree", "node", "join"],
    "JJ": ["large", "nested", "sparse", "accurate"],
    "VB": ["estimates", "contains", "matches", "joins"],
    "IN": ["of", "in", "under", "with", "that"],
    "CC": ["and", "but", "or"],
}


def generate_treebank(seed: int = 17, sentences: int = 60) -> Document:
    """Generate a corpus of deeply nested parse trees."""
    if sentences < 1:
        raise ValueError("need at least one sentence")
    rng = random.Random(seed)
    builder = TreeBuilder()
    builder.start("corpus")
    for _ in range(sentences):
        _expand(builder, rng, "S", depth=0)
    builder.end()
    return builder.finish()


def _expand(builder: TreeBuilder, rng: random.Random, label: str, depth: int) -> None:
    if label in _TERMINALS:
        builder.leaf(label, rng.choice(_TERMINALS[label]))
        return
    builder.start(label)
    productions = _GRAMMAR[label]
    if depth >= 14:
        # Depth cap: take the production with the fewest recursive
        # symbols to force termination.
        children = min(
            (p for _w, p in productions),
            key=lambda p: sum(1 for s in p if s in _GRAMMAR),
        )
    else:
        pick = rng.random() * sum(w for w, _p in productions)
        acc = 0.0
        children = productions[-1][1]
        for weight, production in productions:
            acc += weight
            if pick <= acc:
                children = production
                break
    for child in children:
        _expand(builder, rng, child, depth + 1)
    builder.end()
