"""A DBLP-like bibliography generator (substitute for the real DBLP dump).

The paper's headline experiments (Tables 1-2, Fig. 12) run on a 2001
DBLP snapshot (~9 MB, ~0.5 M nodes).  That artifact is not available
offline, so this module generates a bibliography with the same
*structural* characteristics, which are what position-histogram
estimation depends on:

* a flat two-level record structure: a ``dblp`` root whose children are
  ``article`` / ``inproceedings`` / ``book`` records;
* every element-tag predicate is no-overlap (Table 1's "Overlap
  Property" column);
* relative cardinalities follow Table 1 -- about 5.6 authors per
  article, ~0.8 citations per record concentrated in a citing subset,
  years drawn mostly from the 1980s and 1990s, optional ``cdrom`` and
  ``url`` children;
* ``cite`` text carries ``conf/...`` and ``journal/...`` prefixes so
  the paper's prefix-match content predicates are meaningful.

``scale=1.0`` produces roughly 5,000 records (~55k nodes) -- large
enough for stable histograms, small enough for CI.  Counts scale
linearly with ``scale``.
"""

from __future__ import annotations

import random

from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import Document

_FIRST = (
    "Alice Bob Carol David Erin Frank Grace Heidi Ivan Judy Mallory "
    "Niaj Olivia Peggy Rupert Sybil Trent Victor Wendy Yan"
).split()
_LAST = (
    "Garcia Smith Chen Patel Mueller Rossi Kim Tanaka Silva Dubois "
    "Kowalski Novak Ivanov Okafor Haddad Larsen Costa Nagy Berg Moreau"
).split()
_TOPICS = (
    "histograms selectivity estimation xml query optimization twig "
    "patterns joins indexing storage semistructured data streams views "
    "caching recovery transactions warehouses mining olap parallel"
).split()
_VENUES_CONF = "sigmod vldb icde edbt pods cikm".split()
_VENUES_JOURNAL = "tods vldbj tkde sigmodrecord is".split()


def generate_dblp(seed: int = 7, scale: float = 1.0) -> Document:
    """Generate a DBLP-like document.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds give identical documents.
    scale:
        Linear size factor: ``scale=1.0`` is ~5,000 records.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)
    records = max(10, int(5000 * scale))

    builder = TreeBuilder()
    builder.start("dblp")
    for _ in range(records):
        kind = rng.random()
        if kind < 0.72:
            _emit_record(builder, rng, "article", journal=True)
        elif kind < 0.96:
            _emit_record(builder, rng, "inproceedings", journal=False)
        else:
            _emit_record(builder, rng, "book", journal=False)
    builder.end()
    return builder.finish()


def _emit_record(
    builder: TreeBuilder, rng: random.Random, tag: str, journal: bool
) -> None:
    # DBLP records carry hierarchical `key` attributes like
    # "journals/tods/Smith99" -- attribute predicates select on them.
    if journal:
        key = f"journals/{rng.choice(_VENUES_JOURNAL)}/{rng.randint(1, 99_999)}"
    elif tag == "book":
        key = f"books/{rng.choice(_LAST).lower()}/{rng.randint(1, 9_999)}"
    else:
        key = f"conf/{rng.choice(_VENUES_CONF)}/{rng.randint(1, 99_999)}"
    builder.start(tag, attributes={"key": key, "mdate": f"20{rng.randint(0, 1)}0-01-01"})

    # Authors: DBLP averages ~2 authors/record within records, but
    # Table 1's author/article ratio (41501/7366 ~ 5.6) counts authors
    # across all record types; we draw 1-4 with a heavy-ish tail.
    for _ in range(_draw_count(rng, mean=2.3, minimum=1, maximum=8)):
        builder.leaf("author", f"{rng.choice(_FIRST)} {rng.choice(_LAST)}")

    builder.leaf("title", _title(rng))

    # Year: biased to the 80s/90s like the 2001 snapshot.
    year_pick = rng.random()
    if year_pick < 0.45:
        year = rng.randint(1990, 1999)
    elif year_pick < 0.80:
        year = rng.randint(1980, 1989)
    else:
        year = rng.randint(1965, 1979)
    builder.leaf("year", str(year))

    # Citations: concentrated (many records cite nothing, a citing
    # subset cites many), text carrying conf/journal prefixes.
    if rng.random() < 0.28:
        for _ in range(_draw_count(rng, mean=5.5, minimum=1, maximum=25)):
            if rng.random() < 0.63:
                venue = rng.choice(_VENUES_CONF)
                builder.leaf("cite", f"conf/{venue}/{rng.randint(60, 99)}")
            else:
                venue = rng.choice(_VENUES_JOURNAL)
                builder.leaf("cite", f"journal/{venue}/{rng.randint(60, 99)}")

    if journal:
        builder.leaf("journal", rng.choice(_VENUES_JOURNAL).upper())
        builder.leaf("volume", str(rng.randint(1, 30)))
    else:
        builder.leaf("booktitle", rng.choice(_VENUES_CONF).upper())

    builder.leaf("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
    if rng.random() < 0.93:
        builder.leaf("url", f"db/{tag}/{rng.randint(1, 10_000)}.html")
    if rng.random() < 0.22:
        builder.leaf("cdrom", f"CD{rng.randint(1, 40)}/{rng.randint(1, 999)}")

    builder.end()


def _title(rng: random.Random) -> str:
    words = rng.sample(_TOPICS, rng.randint(3, 6))
    return " ".join(w.capitalize() for w in words)


def _draw_count(
    rng: random.Random, mean: float, minimum: int, maximum: int
) -> int:
    """Geometric-ish count with the given mean, clamped to a range."""
    probability = 1.0 / max(mean, 1e-6)
    count = minimum
    while count < maximum and rng.random() > probability:
        count += 1
    return count
