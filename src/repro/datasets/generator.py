"""DTD-driven random XML document generator.

This is the reproduction's stand-in for the IBM XML generator the paper
used (Section 5.2): given a parsed DTD and a root element, it produces a
random document conforming to the DTD, with tunable occurrence
probabilities and recursion damping so recursive DTDs (like the paper's
manager DTD) terminate with realistic depth distributions.

Determinism: every generator takes an explicit seed; the same seed and
configuration always produce the same document, so experiments are
repeatable bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.dtd.ast import (
    AnyContent,
    Choice,
    ContentModel,
    ElementDecl,
    EmptyContent,
    NameRef,
    PCData,
    Repeat,
    RepeatKind,
    Sequence,
)

from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import Document

_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform "
    "victor whiskey xray yankee zulu"
).split()


@dataclass
class GeneratorConfig:
    """Tuning knobs for :class:`DtdGenerator`.

    Attributes
    ----------
    optional_probability:
        Chance that a ``?`` particle is produced.
    repeat_mean:
        Mean of the geometric distribution drawn for ``*`` and ``+``
        occurrence counts (``+`` adds 1).
    max_depth:
        Hard recursion cap: at this depth, recursive choices are
        avoided when an alternative exists, and repeats collapse to
        their minimum.
    depth_damping:
        Multiplier (< 1) applied to ``repeat_mean`` per level of depth,
        so recursive structures thin out naturally.
    max_nodes:
        Soft cap on generated elements; once exceeded, repeats collapse
        to their minimum count.
    choice_weights:
        Optional per-tag weights used when a :class:`Choice` picks
        among element options, e.g. ``{"manager": 1, "employee": 4}``.
    tag_repeat_means:
        Per-tag override of ``repeat_mean`` for repeats whose particle
        is a single element reference, e.g. ``{"name": 0.8}`` to keep
        ``name+`` lists short while other lists stay long.
    """

    optional_probability: float = 0.5
    repeat_mean: float = 2.0
    max_depth: int = 12
    depth_damping: float = 0.85
    max_nodes: int = 200_000
    choice_weights: dict[str, float] = field(default_factory=dict)
    tag_repeat_means: dict[str, float] = field(default_factory=dict)


class DtdGenerator:
    """Generate random documents conforming to a DTD."""

    def __init__(
        self,
        declarations: dict[str, ElementDecl],
        config: Optional[GeneratorConfig] = None,
        seed: int = 0,
    ) -> None:
        self.declarations = declarations
        self.config = config or GeneratorConfig()
        self._rng = random.Random(seed)
        self._nodes_made = 0

    def generate(self, root: str) -> Document:
        """Generate one document with the given root element tag."""
        if root not in self.declarations:
            raise KeyError(f"root element {root!r} is not declared in the DTD")
        self._nodes_made = 0
        builder = TreeBuilder()
        self._emit_element(builder, root, depth=0)
        return builder.finish()

    # -- internals -------------------------------------------------------

    def _emit_element(self, builder: TreeBuilder, tag: str, depth: int) -> None:
        self._nodes_made += 1
        builder.start(tag)
        declaration = self.declarations.get(tag)
        if declaration is not None:
            self._emit_model(builder, declaration.model, depth + 1)
        builder.end()

    def _emit_model(
        self, builder: TreeBuilder, model: ContentModel, depth: int
    ) -> None:
        if isinstance(model, EmptyContent):
            return
        if isinstance(model, PCData):
            builder.text(self._random_text())
            return
        if isinstance(model, AnyContent):
            # Keep ANY shallow: a text payload.
            builder.text(self._random_text())
            return
        if isinstance(model, NameRef):
            self._emit_element(builder, model.name, depth)
            return
        if isinstance(model, Sequence):
            for item in model.items:
                self._emit_model(builder, item, depth)
            return
        if isinstance(model, Choice):
            option = self._pick_choice(model, depth)
            if option is not None:
                self._emit_model(builder, option, depth)
            return
        if isinstance(model, Repeat):
            tag = model.item.name if isinstance(model.item, NameRef) else None
            for _ in range(self._occurrences(model.kind, depth, tag)):
                self._emit_model(builder, model.item, depth)
            return
        raise TypeError(f"unknown content model node {model!r}")

    def _pick_choice(
        self, choice: Choice, depth: int
    ) -> Optional[ContentModel]:
        options = list(choice.options)
        weights = []
        for option in options:
            tag = option.name if isinstance(option, NameRef) else None
            weight = self.config.choice_weights.get(tag, 1.0) if tag else 1.0
            # At the depth cap, strongly disfavour recursive options.
            if depth >= self.config.max_depth and tag is not None:
                if self._is_recursive(tag):
                    weight = 0.0
            weights.append(weight)
        total = sum(weights)
        if total <= 0:
            # Everything recursive at the cap: fall back to uniform so the
            # content model still produces something valid.
            weights = [1.0] * len(options)
            total = float(len(options))
        pick = self._rng.random() * total
        acc = 0.0
        for option, weight in zip(options, weights):
            acc += weight
            if pick <= acc:
                return option
        return options[-1]

    def _is_recursive(self, tag: str) -> bool:
        declaration = self.declarations.get(tag)
        if declaration is None:
            return False
        from repro.dtd.ast import referenced_names

        # One-step containment is enough of a signal for damping.
        return tag in set(referenced_names(declaration.model))

    def _occurrences(
        self, kind: RepeatKind, depth: int, tag: Optional[str] = None
    ) -> int:
        if kind is RepeatKind.OPTIONAL:
            return 1 if self._rng.random() < self.config.optional_probability else 0
        minimum = 1 if kind is RepeatKind.PLUS else 0
        if (
            depth >= self.config.max_depth
            or self._nodes_made >= self.config.max_nodes
        ):
            return minimum
        base_mean = self.config.repeat_mean
        if tag is not None and tag in self.config.tag_repeat_means:
            base_mean = self.config.tag_repeat_means[tag]
        mean = base_mean * (self.config.depth_damping ** depth)
        mean = max(mean, 1e-6)
        # Geometric with the requested mean: P(success) = 1 / (mean + 1).
        extra = 0
        probability = 1.0 / (mean + 1.0)
        while self._rng.random() > probability:
            extra += 1
            if extra > 50:  # hard safety bound
                break
        return minimum + extra

    def _random_text(self) -> str:
        count = self._rng.randint(1, 3)
        return " ".join(self._rng.choice(_WORDS) for _ in range(count))
