"""The example XML document of the paper's Fig. 1.

A department with six personnel in document order:

1. faculty (name, RA)
2. staff (name)
3. faculty (name, secretary, RA, RA, RA)
4. lecturer (name, TA, TA, TA)
5. faculty (name, secretary, TA, RA, RA, TA)
6. research_scientist (name, secretary, RA, RA, RA, RA)

which yields the counts the paper's running example quotes: 3 faculty
nodes, 5 TA nodes, 10 RA nodes, and exactly 2 (faculty, TA)
ancestor-descendant pairs -- against the naive estimate of 15 and the
no-overlap upper bound of 5.
"""

from __future__ import annotations

from repro.xmltree.builder import element
from repro.xmltree.tree import Document


def paper_example_document() -> Document:
    """Build the Fig. 1 document."""
    department = element(
        "department",
        element(
            "faculty",
            element("name", "Faculty One"),
            element("RA", "ra-1"),
        ),
        element(
            "staff",
            element("name", "Staff One"),
        ),
        element(
            "faculty",
            element("name", "Faculty Two"),
            element("secretary", "Secretary A"),
            element("RA", "ra-2"),
            element("RA", "ra-3"),
            element("RA", "ra-4"),
        ),
        element(
            "lecturer",
            element("name", "Lecturer One"),
            element("TA", "ta-1"),
            element("TA", "ta-2"),
            element("TA", "ta-3"),
        ),
        element(
            "faculty",
            element("name", "Faculty Three"),
            element("secretary", "Secretary B"),
            element("TA", "ta-4"),
            element("RA", "ra-5"),
            element("RA", "ra-6"),
            element("TA", "ta-5"),
        ),
        element(
            "research_scientist",
            element("name", "Scientist One"),
            element("secretary", "Secretary C"),
            element("RA", "ra-7"),
            element("RA", "ra-8"),
            element("RA", "ra-9"),
            element("RA", "ra-10"),
        ),
    )
    document = Document()
    document.append(department)
    return document
