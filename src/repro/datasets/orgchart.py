"""The paper's synthetic data set: manager/department/employee DTD.

Section 5.2 of the paper generates synthetic data with the IBM XML
generator from this DTD::

    <!ELEMENT manager (name, (manager | department | employee)+)>
    <!ELEMENT department (name, email?, employee+, department*)>
    <!ELEMENT employee (name+, email?)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT email (#PCDATA)>

The recursion through manager and department produces deeply nested,
*overlapping* manager and department predicates, while employee, email
and name remain no-overlap -- the mix Table 3 reports.  Default tuning
aims at the same order of magnitude as the paper's counts (44 managers,
270 departments, 473 employees, 173 emails, 1002 names).
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.generator import DtdGenerator, GeneratorConfig
from repro.dtd.parser import parse_dtd
from repro.xmltree.tree import Document

ORGCHART_DTD = """
<!ELEMENT manager (name, (manager | department | employee)+)>
<!ELEMENT department (name, email?, employee+, department*)>
<!ELEMENT employee (name+, email?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
"""


def generate_orgchart(
    seed: int = 42,
    config: Optional[GeneratorConfig] = None,
    min_nodes: int = 1200,
) -> Document:
    """Generate the synthetic orgchart document.

    The default configuration produces a document whose predicate
    cardinalities sit in the same ranges as the paper's Table 3 and --
    crucially -- whose manager and department tags overlap (nest) while
    employee/email/name do not.

    The recursive DTD makes document size a near-critical branching
    process: some seeds die out after a handful of nodes.  To keep
    experiments meaningful, generation deterministically retries with
    derived seeds until the document has at least ``min_nodes``
    elements (pass ``min_nodes=0`` to disable).
    """
    declarations = parse_dtd(ORGCHART_DTD)
    if config is None:
        config = GeneratorConfig(
            optional_probability=0.4,
            repeat_mean=3.2,
            max_depth=14,
            depth_damping=0.9,
            choice_weights={
                "manager": 1.5,
                "department": 1.5,
                "employee": 2.2,
            },
            tag_repeat_means={"name": 0.9, "department": 1.3},
        )
    for attempt in range(500):
        generator = DtdGenerator(declarations, config, seed=seed + 7919 * attempt)
        document = generator.generate("manager")
        if min_nodes <= 0 or _acceptable(document, min_nodes):
            return document
    raise RuntimeError(
        f"could not reach {min_nodes} nodes in 500 attempts; "
        "loosen the generator configuration"
    )


def _acceptable(document: Document, min_nodes: int) -> bool:
    """Size gate plus the structural property Table 3 depends on:
    managers must recurse (several nested managers) so the manager
    predicate is an *overlap* predicate, as in the paper."""
    if document.count_nodes() < min_nodes:
        return False
    managers = sum(1 for e in document.iter_elements() if e.tag == "manager")
    return managers >= 10
