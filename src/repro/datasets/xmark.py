"""An XMark-auction-like data set (substitute for the XMark benchmark).

XMark models an auction site (site / regions / open_auctions / people /
categories).  The interesting structural feature for this paper is the
recursive ``parlist`` inside item descriptions -- it gives an
*overlapping* predicate inside an otherwise no-overlap catalog, like the
paper's synthetic DTD but with realistic skew.
"""

from __future__ import annotations

import random

from repro.xmltree.builder import TreeBuilder
from repro.xmltree.tree import Document

_REGIONS = "africa asia australia europe namerica samerica".split()
_WORDS = (
    "vintage rare mint boxed signed limited original restored classic "
    "antique modern sealed graded complete working"
).split()


def generate_xmark(seed: int = 23, scale: float = 1.0) -> Document:
    """Generate an XMark-like auction document (~3k nodes at scale 1)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)
    items_per_region = max(2, int(12 * scale))
    people = max(5, int(60 * scale))
    auctions = max(5, int(40 * scale))

    builder = TreeBuilder()
    builder.start("site")

    builder.start("regions")
    for region in _REGIONS:
        builder.start(region)
        for item_number in range(items_per_region):
            builder.start("item")
            builder.leaf("name", f"item-{region}-{item_number}")
            builder.start("description")
            _emit_parlist(builder, rng, depth=0)
            builder.end()
            if rng.random() < 0.5:
                builder.leaf("payment", "credit card")
            builder.end()
        builder.end()
    builder.end()

    builder.start("people")
    for person_number in range(people):
        builder.start("person")
        builder.leaf("name", f"person-{person_number}")
        if rng.random() < 0.7:
            builder.leaf("emailaddress", f"p{person_number}@example.org")
        if rng.random() < 0.4:
            builder.start("profile")
            builder.leaf("interest", rng.choice(_REGIONS))
            builder.end()
        builder.end()
    builder.end()

    builder.start("open_auctions")
    for auction_number in range(auctions):
        builder.start("open_auction")
        builder.leaf("initial", f"{rng.randint(1, 500)}.00")
        for _ in range(rng.randint(0, 5)):
            builder.start("bidder")
            builder.leaf("increase", f"{rng.randint(1, 50)}.00")
            builder.end()
        builder.leaf("current", f"{rng.randint(1, 2000)}.00")
        builder.end()
    builder.end()

    builder.end()
    return builder.finish()


def _emit_parlist(builder: TreeBuilder, rng: random.Random, depth: int) -> None:
    """Recursive parlist/listitem description markup (overlapping tags)."""
    builder.start("parlist")
    for _ in range(rng.randint(1, 3)):
        builder.start("listitem")
        if depth < 3 and rng.random() < 0.35:
            _emit_parlist(builder, rng, depth + 1)
        else:
            text = " ".join(rng.choice(_WORDS) for _ in range(rng.randint(2, 6)))
            builder.leaf("text", text)
        builder.end()
    builder.end()
