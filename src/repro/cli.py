"""Command-line interface: ``python -m repro <command>``.

Commands cover the practical workflow:

* ``generate`` -- produce one of the built-in synthetic data sets (or a
  document from a user DTD) as an XML file;
* ``stats`` -- predicate characteristics of an XML file (the paper's
  Table 1 / Table 3 view): counts, overlap property, summary storage;
* ``estimate`` -- estimate a query's answer size over an XML file,
  optionally comparing all estimators against the exact answer;
* ``workload`` -- q-error percentiles over a random twig workload;
* ``serve`` -- run the online :class:`~repro.service.EstimationService`
  over a file, applying update/estimate commands from a script or
  stdin, with optional statistics persistence, warm start, and batched
  update ingestion (``--batch-size``);
* ``build`` -- build the full statistics set over an XML file (sharded
  across ``--workers`` processes) and persist it as a binary store for
  later ``serve --warm-start``;
* ``recover`` -- crash-recover a durable service (``serve --wal-dir``)
  from its write-ahead log + checkpoints and report the recovered
  state.

Examples
--------
::

    python -m repro generate dblp --scale 0.2 --out dblp.xml
    python -m repro stats dblp.xml
    python -m repro estimate dblp.xml "//article//author" --grid 10 --compare
    echo 'estimate //article//author' | python -m repro serve dblp.xml
    python -m repro build dblp.xml --out dblp.npz --workers 4
    python -m repro serve dblp.xml --warm-start dblp.npz --batch-size 64
    python -m repro serve dblp.xml --wal-dir state/ --batch-size 64
    python -m repro recover state/ --verify
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from typing import Optional, Sequence

from repro.estimation import AnswerSizeEstimator
from repro.histograms.storage import coverage_storage_bytes, position_storage_bytes
from repro.labeling import label_document
from repro.utils.tables import format_table
from repro.xmltree.parser import parse_document
from repro.xmltree.writer import write_document


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Position-histogram answer-size estimation for XML queries "
        "(Wu, Patel, Jagadish; EDBT 2002).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic data set as an XML file"
    )
    generate.add_argument(
        "dataset",
        choices=[
            "dblp",
            "orgchart",
            "shakespeare",
            "xmark",
            "treebank",
            "paper-example",
        ],
        help="which built-in generator to run",
    )
    generate.add_argument("--out", required=True, help="output XML path")
    generate.add_argument("--seed", type=int, default=7, help="RNG seed")
    generate.add_argument(
        "--scale", type=float, default=0.2, help="size factor (dblp/xmark)"
    )

    stats = commands.add_parser(
        "stats", help="predicate characteristics of an XML file"
    )
    stats.add_argument("data", help="XML file path")
    stats.add_argument("--grid", type=int, default=10, help="grid side g")

    estimate = commands.add_parser(
        "estimate", help="estimate a query's answer size over an XML file"
    )
    estimate.add_argument("data", help="XML file path")
    estimate.add_argument("query", help='mini-XPath query, e.g. "//article//author"')
    estimate.add_argument("--grid", type=int, default=10, help="grid side g")
    estimate.add_argument(
        "--grid-kind",
        choices=["uniform", "equi-depth"],
        default="uniform",
        help="bucket boundary placement",
    )
    estimate.add_argument(
        "--compare",
        action="store_true",
        help="run every estimator and the exact matcher, print a table",
    )

    workload = commands.add_parser(
        "workload",
        help="random-twig accuracy study: q-error percentiles over N queries",
    )
    workload.add_argument("data", help="XML file path")
    workload.add_argument("--count", type=int, default=30, help="number of twigs")
    workload.add_argument("--grid", type=int, default=10, help="grid side g")
    workload.add_argument("--seed", type=int, default=0, help="workload seed")
    workload.add_argument(
        "--max-size", type=int, default=4, help="largest twig size"
    )

    serve = commands.add_parser(
        "serve",
        help="online estimation service: estimates stay correct under "
        "insert/delete commands read from a script or stdin",
    )
    serve.add_argument(
        "data",
        nargs="?",
        default=None,
        help="XML file path (omitted when --replica-of bootstraps the "
        "state from a primary)",
    )
    # Defaults resolve in cmd_serve: with --warm-start the grid comes
    # from the store, and an explicit --grid/--grid-kind is an error.
    serve.add_argument(
        "--grid", type=int, default=None, help="grid side g (default 10)"
    )
    serve.add_argument(
        "--grid-kind",
        choices=["uniform", "equi-depth"],
        default=None,
        help="bucket boundary placement (default uniform)",
    )
    # Defaults resolve in cmd_serve (64 / 0.25): an existing --wal-dir
    # fixes both from its checkpoint, so an explicit flag is an error.
    serve.add_argument(
        "--spacing",
        type=int,
        default=None,
        help="label gap factor for inserts (default 64)",
    )
    serve.add_argument(
        "--rebuild-threshold",
        type=float,
        default=None,
        help="dirty fraction that triggers a full rebuild (default 0.25)",
    )
    serve.add_argument(
        "--script",
        default=None,
        help="command file (default: read commands from stdin)",
    )
    serve.add_argument(
        "--warm-start",
        default=None,
        help="binary summary store (.npz) to warm-start statistics from",
    )
    serve.add_argument(
        "--save-stats",
        default=None,
        help="write the final statistics to this .npz path on exit",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="coalesce up to N consecutive insert/delete commands into "
        "one apply_batch call (1 = apply each update immediately)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard statistics rebuilds over N worker processes",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        help="durable mode: write-ahead-log every update into this "
        "directory (created and checkpointed on first use; an existing "
        "directory is crash-recovered and supersedes the data file)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        help="with --wal-dir: cut a checkpoint every N logged updates",
    )
    serve.add_argument(
        "--keep-checkpoints",
        type=int,
        default=2,
        help="with --wal-dir: retain at most N checkpoints (plus any "
        "older ones they still reference); superseded checkpoints are "
        "pruned and the log compacted after every new checkpoint",
    )
    serve.add_argument(
        "--no-compact",
        action="store_true",
        help="with --wal-dir: keep every checkpoint and never compact "
        "the log (disables --keep-checkpoints)",
    )
    serve.add_argument(
        "--lazy",
        action="store_true",
        help="with --wal-dir: map the newest page-file checkpoint and "
        "defer decoding the forest until the first structural touch "
        "(read-only estimation serves straight from the mapping)",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="also serve the line-delimited JSON protocol on TCP "
        "(port 0 picks a free port); after the script/stdin stream "
        "ends the process keeps serving until a client sends shutdown",
    )
    serve.add_argument(
        "--linger-ms",
        type=float,
        default=0.0,
        help="admission window in milliseconds: hold a non-full update "
        "group open for straggling concurrent writers before flushing "
        "(0 = flush as soon as the queue drains)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="bound the admission queue: past N pending requests new "
        "submissions are fast-rejected with a retryable `overloaded` "
        "error (default: unbounded)",
    )
    serve.add_argument(
        "--client-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --listen: evict a connection that sends nothing for "
        "this long, cancelling its unflushed ops (default: never)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="with --listen: how long connection teardown waits for "
        "pending responses to flush before cutting the client off",
    )
    serve.add_argument(
        "--replica-of",
        default=None,
        metavar="HOST:PORT",
        help="run as a read replica of the given primary: bootstrap "
        "--wal-dir (required) from its newest checkpoint, then stream "
        "and apply its committed WAL records continuously; mutations "
        "are refused with a `read_only` error.  Restart without this "
        "flag to promote the replica to a standalone primary",
    )
    serve.add_argument(
        "--read-only-on-wal-error",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="on a WAL append/fsync failure, degrade to read-only mode "
        "(reads keep serving, writes get `read_only` errors, operator "
        "`resume` re-probes the device); --no-read-only-on-wal-error "
        "surfaces the raw storage error instead",
    )

    client = commands.add_parser(
        "client",
        help="connect to a `serve --listen` server and run the serve "
        "command language over the network",
    )
    client.add_argument("address", metavar="[HOST:]PORT", help="server address")
    client.add_argument(
        "--script",
        default=None,
        help="command file (default: read commands from stdin)",
    )
    client.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="queue up to N consecutive insert/delete commands "
        "client-side and submit them as one atomic batch",
    )
    client.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry each request up to N times on connect failure, "
        "timeout, mid-frame disconnect, or a retryable `overloaded` "
        "reply; idempotency keys keep retried mutations exactly-once",
    )
    client.add_argument(
        "--backoff-ms",
        type=float,
        default=50.0,
        metavar="MS",
        help="base retry backoff in milliseconds (doubles per attempt, "
        "with jitter)",
    )
    client.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request response timeout (raises a client timeout "
        "instead of hanging on a stalled server)",
    )

    recover = commands.add_parser(
        "recover",
        help="recover a durable estimation service from its WAL directory "
        "(load newest valid checkpoint, replay the committed log suffix, "
        "truncate any torn tail) and report the recovered state",
    )
    recover.add_argument("wal_dir", help="write-ahead-log directory")
    recover.add_argument(
        "--verify",
        action="store_true",
        help="run the differential self-check over the recovered state",
    )
    recover.add_argument(
        "--checkpoint",
        action="store_true",
        help="cut a fresh checkpoint after replay (shortens the next recovery)",
    )
    recover.add_argument(
        "--compact",
        action="store_true",
        help="after replay, drop log records below the oldest retained "
        "checkpoint and prune superseded checkpoints/orphaned files",
    )
    recover.add_argument(
        "--keep-checkpoints",
        type=int,
        default=2,
        help="with --compact: retain at most N checkpoints (plus any "
        "they reference)",
    )
    recover.add_argument(
        "--lazy",
        action="store_true",
        help="map the newest page-file checkpoint instead of decoding "
        "the forest eagerly (replaying a non-empty log suffix still "
        "forces it)",
    )

    build = commands.add_parser(
        "build",
        help="build the full statistics set (sharded across worker "
        "processes) and persist it as a binary .npz store",
    )
    build.add_argument("data", help="XML file path")
    build.add_argument(
        "--out",
        required=True,
        help="output store path (.npz archive, or .pgf for the "
        "mmap-friendly page-file container)",
    )
    build.add_argument("--grid", type=int, default=10, help="grid side g")
    build.add_argument(
        "--grid-kind",
        choices=["uniform", "equi-depth"],
        default="uniform",
        help="bucket boundary placement",
    )
    build.add_argument(
        "--spacing", type=int, default=64, help="label gap factor for inserts"
    )
    build.add_argument(
        "--workers", type=int, default=1, help="shard count / worker processes"
    )
    return parser


def _load_estimator(path: str, grid: int, grid_kind: str = "uniform") -> AnswerSizeEstimator:
    text = Path(path).read_text()
    tree = label_document(parse_document(text))
    return AnswerSizeEstimator(tree, grid_size=grid, grid=grid_kind)


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import (
        generate_dblp,
        generate_orgchart,
        generate_shakespeare,
        generate_treebank,
        generate_xmark,
        paper_example_document,
    )

    if args.dataset == "dblp":
        document = generate_dblp(seed=args.seed, scale=args.scale)
    elif args.dataset == "orgchart":
        document = generate_orgchart(seed=args.seed)
    elif args.dataset == "shakespeare":
        document = generate_shakespeare(seed=args.seed)
    elif args.dataset == "xmark":
        document = generate_xmark(seed=args.seed, scale=args.scale)
    elif args.dataset == "treebank":
        document = generate_treebank(seed=args.seed, sentences=max(5, int(60 * args.scale)))
    else:
        document = paper_example_document()
    Path(args.out).write_text(write_document(document, indent=1))
    print(f"wrote {document.count_nodes():,} elements to {args.out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    estimator = _load_estimator(args.data, args.grid)
    rows = []
    for stats in estimator.catalog.register_all_tags():
        predicate = stats.predicate
        hist_bytes = position_storage_bytes(estimator.position_histogram(predicate))
        coverage = estimator.coverage_histogram(predicate)
        cvg_bytes = coverage_storage_bytes(coverage) if coverage else 0
        rows.append(
            [
                predicate.name,
                stats.count,
                "no overlap" if stats.no_overlap else "overlap",
                hist_bytes,
                cvg_bytes,
            ]
        )
    print(
        format_table(
            ["Predicate", "Node Count", "Overlap Property", "Hist Bytes", "Cvg Bytes"],
            rows,
            title=(
                f"{args.data}: {len(estimator.tree):,} elements, "
                f"{args.grid}x{args.grid} grid"
            ),
        )
    )
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    estimator = _load_estimator(args.data, args.grid, args.grid_kind)
    result = estimator.estimate(args.query)
    if not args.compare:
        print(f"{result.value:.2f}")
        return 0

    from repro.query.xpath import parse_xpath

    pattern = parse_xpath(args.query)
    rows = [[result.method, round(result.value, 2), f"{result.elapsed_seconds:.6f}"]]
    if pattern.size() == 2:
        anc = pattern.root.predicate
        desc = pattern.root.children[0].predicate
        methods = ["naive", "ph-join", "ph-join-level"]
        if estimator.is_no_overlap(anc):
            methods += ["upper-bound", "no-overlap"]
        for method in methods:
            r = estimator.estimate_pair(anc, desc, method=method)
            timing = f"{r.elapsed_seconds:.6f}" if r.elapsed_seconds else "-"
            rows.append([r.method, round(r.value, 2), timing])
    real = estimator.real_answer(args.query)
    rows.append(["exact", real, "-"])
    print(
        format_table(
            ["method", "answer size", "time (s)"],
            rows,
            title=f"{args.query} on {args.data}",
        )
    )
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import ErrorSummary, RandomTwigGenerator

    estimator = _load_estimator(args.data, args.grid)
    generator = RandomTwigGenerator(estimator.tree, seed=args.seed)
    workload = generator.workload(args.count, min_size=2, max_size=args.max_size)
    pairs = []
    for pattern in workload:
        estimate = estimator.estimate(pattern).value
        real = float(estimator.real_answer(pattern))
        pairs.append((estimate, real))
    summary = ErrorSummary.from_pairs(pairs)
    print(
        format_table(
            ["queries", "geo-mean q", "median q", "p90 q", "p99 q", "worst q"],
            [summary.as_row()],
            title=(
                f"q-error over {args.count} random twigs on {args.data} "
                f"({args.grid}x{args.grid} grid)"
            ),
        )
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the online estimation service over a command stream.

    Command language (one command per line, ``#`` comments skipped)::

        estimate <query>           print the current answer-size estimate
        exact <query>              print the exact answer (ground truth)
        insert <parent-tag> <xml>  insert the XML snippet as the last child
                                   of the first element with the tag
        delete <tag> [k]           delete the k-th element (1-based,
                                   default first) with the tag
        stats                      one status line (nodes, dirty, rebuilds)
        save <path.npz>            persist current statistics
        shutdown                   stop the service (and any TCP server)
        quit                       stop reading commands

    Every response is a single parseable line; errors are reported as
    ``error: ...`` and the stream continues -- including for malformed
    raw input (non-UTF-8 bytes, over-limit lines).

    With ``--batch-size N > 1``, consecutive insert/delete commands are
    queued (response ``queued ...``) and applied as one
    :meth:`~repro.service.EstimationService.apply_batch` call when the
    queue reaches N commands, a read command arrives, or the stream
    ends (response ``ok batch ...``).  Update targets resolve when the
    batch flushes, against the database state the batch started from.

    With ``--listen [HOST:]PORT``, the same service additionally takes
    concurrent network clients over the line-delimited JSON protocol
    (see README, *Wire protocol*); the stdin loop becomes one local
    client among many, all writes funnel through the admission
    batcher's single writer thread, and the process keeps serving after
    local EOF until a client sends ``shutdown``.
    """
    from repro.service import EstimationService

    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.replica_of is not None:
        return _cmd_serve_replica(args)
    if args.data is None:
        print("error: serve needs an XML data file (or --replica-of)", file=sys.stderr)
        return 2
    if args.wal_dir and args.warm_start:
        print(
            "error: --warm-start conflicts with --wal-dir (a durable "
            "directory carries its own checkpointed statistics)",
            file=sys.stderr,
        )
        return 2
    spacing = args.spacing if args.spacing is not None else 64
    rebuild_threshold = (
        args.rebuild_threshold if args.rebuild_threshold is not None else 0.25
    )
    if args.wal_dir:
        if args.checkpoint_every < 1:
            print("error: --checkpoint-every must be >= 1", file=sys.stderr)
            return 2
        if args.keep_checkpoints < 1:
            print("error: --keep-checkpoints must be >= 1", file=sys.stderr)
            return 2
        from repro.service.wal import LOG_NAME, list_checkpoints

        wal_dir = Path(args.wal_dir)
        has_state = (wal_dir / LOG_NAME).exists() or bool(list_checkpoints(wal_dir))
        if has_state and (
            args.grid is not None
            or args.grid_kind is not None
            or args.spacing is not None
            or args.rebuild_threshold is not None
        ):
            print(
                "error: --grid/--grid-kind/--spacing/--rebuild-threshold "
                "conflict with an existing --wal-dir (the durable state "
                "fixes them)",
                file=sys.stderr,
            )
            return 2
        document = None if has_state else parse_document(Path(args.data).read_text())
        service = EstimationService.open_durable(
            wal_dir,
            document,
            grid_size=args.grid if args.grid is not None else 10,
            grid=args.grid_kind if args.grid_kind is not None else "uniform",
            spacing=spacing,
            rebuild_threshold=rebuild_threshold,
            n_workers=args.workers,
            checkpoint_every=args.checkpoint_every,
            keep_checkpoints=None if args.no_compact else args.keep_checkpoints,
            auto_compact=not args.no_compact,
            lazy=args.lazy,
        )
        if service.recovery_info is not None:
            info = service.recovery_info
            print(
                f"recovered {args.wal_dir}: checkpoint lsn {info.checkpoint_lsn}, "
                f"{info.batches_replayed} replayed, {info.batches_skipped} "
                f"skipped, {info.truncated_bytes} torn bytes truncated "
                f"(data file superseded by durable state)"
            )
    elif args.warm_start:
        if args.grid is not None or args.grid_kind is not None:
            print(
                "error: --grid/--grid-kind conflict with --warm-start "
                "(the persisted store fixes the grid)",
                file=sys.stderr,
            )
            return 2
        document = parse_document(Path(args.data).read_text())
        service = EstimationService.warm_start(
            document,
            args.warm_start,
            spacing=spacing,
            rebuild_threshold=rebuild_threshold,
            n_workers=args.workers,
        )
    else:
        document = parse_document(Path(args.data).read_text())
        service = EstimationService(
            document,
            grid_size=args.grid if args.grid is not None else 10,
            grid=args.grid_kind if args.grid_kind is not None else "uniform",
            spacing=spacing,
            rebuild_threshold=rebuild_threshold,
            n_workers=args.workers,
        )
    print(f"serving {args.data}: {len(service):,} elements, grid {service.estimator.grid.size}")

    from repro.service.protocol import iter_raw_lines
    from repro.service.server import EstimationServer, ServiceEngine, parse_listen

    # All mutation flows through the admission engine's single writer
    # thread, so the local command stream and any network clients share
    # one serialization point; --batch-size doubles as the coalescing
    # cap for concurrent network writers.  Everything runs under
    # try/finally: however the command loop ends (EOF, quit, a handler
    # bug, Ctrl-C), the trailing partial batch flushes before the
    # session summary and the engine, server, worker pool, and WAL are
    # released.
    service.read_only_on_wal_error = args.read_only_on_wal_error
    engine = ServiceEngine(
        service,
        max_ops=args.batch_size,
        linger=(args.linger_ms / 1000.0) if args.linger_ms else None,
        max_queue=args.max_queue,
    )
    server = None
    restore_signals: list[tuple[int, object]] = []
    try:
        if args.listen is not None:
            try:
                host, port = parse_listen(args.listen)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            server = EstimationServer(
                engine,
                host=host,
                port=port,
                drain_timeout=args.drain_timeout,
                client_timeout=args.client_timeout,
            )
            server.start()
            print(f"listening on {server.host}:{server.port}")
            # Container orchestration stops the process with SIGTERM (or
            # Ctrl-C in a terminal): enter SHUTTING_DOWN exactly as a
            # client-sent shutdown would -- stop admitting, flush the
            # pending group, then the normal exit path checkpoints and
            # drains connections.  The handler only nudges a daemon
            # thread: engine.request blocks on the writer thread, and
            # signal handlers must not (the Condition is not reentrant).
            import signal as _signal

            def _graceful(signum, frame):  # pragma: no cover - signal path
                threading.Thread(
                    target=lambda: engine.request({"op": "shutdown"}),
                    name="signal-shutdown",
                    daemon=True,
                ).start()

            for signum in (_signal.SIGTERM, _signal.SIGINT):
                restore_signals.append((signum, _signal.getsignal(signum)))
                _signal.signal(signum, _graceful)
        if args.script:
            lines = iter(Path(args.script).read_bytes().splitlines())
        else:
            lines = iter_raw_lines(sys.stdin.buffer)
        _run_text_session(engine.request, lines, args.batch_size)
        if server is not None and not engine.shutdown_event.is_set():
            # The local stream ended but network clients may still be
            # talking; keep serving until one of them sends shutdown.
            engine.shutdown_event.wait()

        stats = service.stats
        print(
            f"session inserts={stats.inserts} deletes={stats.deletes} "
            f"rebuilds={stats.rebuilds} batches={stats.batches} nodes={len(service)}"
        )
        if args.save_stats:
            written = service.save_statistics(args.save_stats)
            print(f"saved {written} predicate summaries to {args.save_stats}")
        if service.wal_attached:
            lsn = service.checkpoint()
            print(f"checkpointed {args.wal_dir} at lsn {lsn}")
    finally:
        if restore_signals:
            import signal as _signal

            for signum, previous in restore_signals:
                try:
                    _signal.signal(signum, previous)
                except (ValueError, TypeError):  # pragma: no cover
                    pass
        if server is not None:
            server.stop()
            server.join(timeout=10)
        engine.close()
        service.close()
    return 0


def _cmd_serve_replica(args: argparse.Namespace) -> int:
    """``serve --replica-of HOST:PORT``: run as a read replica.

    Bootstraps ``--wal-dir`` from the primary's newest checkpoint
    (direct copy when the primary's directory is readable locally,
    chunked ``repl.fetch`` otherwise), recovers it with the ordinary
    durable-open path, then streams and applies the primary's committed
    WAL records continuously.  Reads (``estimate``/``exact``/
    ``execute``/``stats``/``health`` and pinned snapshots) serve
    normally -- locally and over ``--listen`` -- while mutations are
    refused with the ``read_only`` coded error.  Restarting the same
    ``--wal-dir`` without ``--replica-of`` promotes the replica: it
    recovers as a standalone primary at its last applied LSN.
    """
    from repro.service import EstimationService
    from repro.service.protocol import iter_raw_lines
    from repro.service.replica import Follower, ReplicaError, bootstrap_follower
    from repro.service.server import EstimationServer, ServiceEngine, parse_listen

    if not args.wal_dir:
        print("error: --replica-of requires --wal-dir", file=sys.stderr)
        return 2
    conflicts = {
        "a data file": args.data is not None,
        "--warm-start": args.warm_start is not None,
        "--grid/--grid-kind": args.grid is not None or args.grid_kind is not None,
        "--spacing": args.spacing is not None,
        "--rebuild-threshold": args.rebuild_threshold is not None,
    }
    for name, present in conflicts.items():
        if present:
            print(
                f"error: {name} conflicts with --replica-of (the primary's "
                "replicated state fixes it)",
                file=sys.stderr,
            )
            return 2
    try:
        primary_host, primary_port = parse_listen(args.replica_of)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        info = bootstrap_follower(args.wal_dir, primary_host, primary_port)
    except (ReplicaError, ConnectionError, OSError) as exc:
        print(f"error: replica bootstrap failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"replica bootstrap: {info['transfer']}"
        + (
            f" of checkpoint lsn {info['checkpoint_lsn']} "
            f"({info['files']} files)"
            if info["transfer"] != "resume"
            else f" from existing state in {info['directory']}"
        )
    )
    service = EstimationService.open_durable(
        Path(args.wal_dir),
        None,
        n_workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        keep_checkpoints=None if args.no_compact else args.keep_checkpoints,
        auto_compact=not args.no_compact,
        lazy=args.lazy,
    )
    service.read_only_on_wal_error = args.read_only_on_wal_error
    if service.recovery_info is not None:
        rec = service.recovery_info
        print(
            f"recovered {args.wal_dir}: checkpoint lsn {rec.checkpoint_lsn}, "
            f"{rec.batches_replayed} replayed, {rec.batches_skipped} skipped"
        )
    engine = ServiceEngine(
        service,
        max_ops=args.batch_size,
        linger=(args.linger_ms / 1000.0) if args.linger_ms else None,
        max_queue=args.max_queue,
    )
    follower = Follower(service, engine, primary_host, primary_port)
    server = None
    restore_signals: list[tuple[int, object]] = []
    try:
        follower.start()
        print(
            f"replicating from {primary_host}:{primary_port} "
            f"(applied lsn {service._last_lsn})"
        )
        if args.listen is not None:
            try:
                host, port = parse_listen(args.listen)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            server = EstimationServer(
                engine,
                host=host,
                port=port,
                drain_timeout=args.drain_timeout,
                client_timeout=args.client_timeout,
            )
            server.start()
            print(f"listening on {server.host}:{server.port} (read-only replica)")
            import signal as _signal

            def _graceful(signum, frame):  # pragma: no cover - signal path
                threading.Thread(
                    target=lambda: engine.request({"op": "shutdown"}),
                    name="signal-shutdown",
                    daemon=True,
                ).start()

            for signum in (_signal.SIGTERM, _signal.SIGINT):
                restore_signals.append((signum, _signal.getsignal(signum)))
                _signal.signal(signum, _graceful)
        if args.script:
            lines = iter(Path(args.script).read_bytes().splitlines())
        else:
            lines = iter_raw_lines(sys.stdin.buffer)
        _run_text_session(engine.request, lines, args.batch_size)
        if server is not None and not engine.shutdown_event.is_set():
            engine.shutdown_event.wait()
        status = service.replica_status or {}
        print(
            f"replica session applied_lsn={service._last_lsn} "
            f"source_lsn={status.get('source_committed_lsn', service._last_lsn)} "
            f"connected={status.get('connected', False)}"
        )
        follower.stop()
        if service.wal_attached and not service.degraded:
            lsn = service.checkpoint()
            print(f"checkpointed {args.wal_dir} at lsn {lsn}")
    finally:
        if restore_signals:
            import signal as _signal

            for signum, previous in restore_signals:
                try:
                    _signal.signal(signum, previous)
                except (ValueError, TypeError):  # pragma: no cover
                    pass
        follower.stop()
        if server is not None:
            server.stop()
            server.join(timeout=10)
        engine.close()
        service.close()
    return 0


def _run_text_session(request_fn, lines, batch_size: int, out=print) -> None:
    """Drive one serve-language command stream through ``request_fn``.

    ``request_fn`` is either a local engine's
    :meth:`~repro.service.server.ServiceEngine.request` or a network
    :meth:`~repro.service.client.ServiceClient.request` -- the session
    is a thin client either way.  Update commands queue locally under
    ``batch_size > 1`` and submit as one atomic ``batch`` request when
    the queue fills, a read command arrives, or the stream ends, so the
    persisted/observed state always reflects every acknowledged
    ``queued`` response.  Malformed raw input (non-UTF-8 bytes,
    over-limit lines) yields one ``error:`` line and the loop lives on.
    """
    from repro.service.protocol import (
        ProtocolError,
        decode_line,
        format_error,
        format_flush_response,
        format_text_response,
        parse_text_command,
    )

    pending: list[dict] = []

    def flush() -> str:
        ops = list(pending)
        pending.clear()
        response = request_fn({"op": "batch", "ops": ops})
        if not response.get("ok", False):
            return f"error: {format_error(response.get('error', 'unknown failure'))}"
        return format_flush_response(response)

    try:
        for raw in lines:
            try:
                line = decode_line(raw)
            except ProtocolError as exc:
                out(f"error: {exc}")
                continue
            if not line or line.startswith("#"):
                continue
            if line == "quit":
                break
            command = line.split(None, 1)[0]
            if batch_size > 1 and command in ("insert", "delete"):
                try:
                    pending.append(parse_text_command(line))
                    response = f"queued {command} ({len(pending)}/{batch_size})"
                    if len(pending) >= batch_size:
                        response = flush()
                except Exception as exc:  # drop the poisoned command
                    response = f"error: {exc}"
                out(response)
                continue
            if pending:  # read commands see all queued updates applied
                try:
                    out(flush())
                except Exception as exc:
                    out(f"error: {exc}")
            try:
                request = parse_text_command(line)
                response = format_text_response(request, request_fn(request))
            except Exception as exc:  # keep serving; report the failure
                response = f"error: {exc}"
            out(response)
            if command == "shutdown":
                break
    finally:
        # EOF / quit / handler escape with updates still queued: the
        # partial trailing batch must apply before the final stats.
        if pending:
            try:
                out(flush())
            except Exception as exc:
                out(f"error: {exc}")


def cmd_client(args: argparse.Namespace) -> int:
    """Run the serve command language against a ``serve --listen`` server."""
    from repro.service.client import ServiceClient
    from repro.service.protocol import iter_raw_lines
    from repro.service.server import parse_listen

    try:
        host, port = parse_listen(args.address)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    try:
        client = ServiceClient(
            host,
            port,
            timeout=args.timeout,
            retries=args.retries,
            backoff_ms=args.backoff_ms,
        )
    except OSError as exc:
        print(f"error: cannot connect to {host}:{port}: {exc}", file=sys.stderr)
        return 1
    try:
        if args.script:
            lines = iter(Path(args.script).read_bytes().splitlines())
        else:
            lines = iter_raw_lines(sys.stdin.buffer)
        _run_text_session(client.request_retrying, lines, args.batch_size)
    finally:
        client.close()
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Recover a durable service from its WAL directory and report."""
    from repro.service import EstimationService, WalError

    if args.keep_checkpoints < 1:
        print("error: --keep-checkpoints must be >= 1", file=sys.stderr)
        return 2
    try:
        service = EstimationService.open_durable(
            args.wal_dir,
            keep_checkpoints=args.keep_checkpoints if args.compact else None,
            lazy=args.lazy,
        )
    except WalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        info = service.recovery_info
        if info is None:
            print(f"{args.wal_dir}: fresh durable directory, nothing to replay")
        else:
            print(
                f"recovered {args.wal_dir}: checkpoint lsn {info.checkpoint_lsn}, "
                f"{info.batches_replayed} batch(es) replayed, "
                f"{info.batches_skipped} skipped, "
                f"{info.truncated_bytes} torn bytes truncated, "
                f"next lsn {info.next_lsn}"
            )
        print(
            f"state: {len(service):,} elements, "
            f"{len(service.catalog)} predicates, grid "
            f"{service.estimator.grid.size}, dirty {service.dirty_fraction:.4f}"
        )
        if args.verify:
            service.differential_check()
            print("differential check passed: recovered statistics are "
                  "bit-identical to a from-scratch build")
        if args.checkpoint:
            lsn = service.checkpoint()
            print(f"checkpointed at lsn {lsn}")
        if args.compact:
            stats = service.compact()
            print(
                f"compacted: log {stats.log_bytes_before} -> "
                f"{stats.log_bytes_after} bytes "
                f"({stats.records_dropped} records dropped, base lsn "
                f"{stats.base_lsn}), pruned checkpoints "
                f"{stats.checkpoints_pruned or 'none'}"
            )
    finally:
        service.close()
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Build the full per-tag statistics set and persist it.

    With ``--workers N > 1`` the build shards over N worker processes
    (vectorised relabel + per-shard histogram/coverage/catalog builds
    merged by integer addition); the result is bit-identical to the
    serial build, so stores are interchangeable.
    """
    import time

    from repro.service import EstimationService

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    text = Path(args.data).read_text()
    document = parse_document(text)
    started = time.perf_counter()
    service = EstimationService(
        document,
        grid_size=args.grid,
        grid=args.grid_kind,
        spacing=args.spacing,
        n_workers=args.workers,
    )
    if args.workers <= 1:
        # The sharded path primes everything at construction; the lazy
        # serial path needs explicit priming to produce a full store.
        for stats in service.catalog.register_all_tags():
            service.position_histogram(stats.predicate)
            service.coverage_histogram(stats.predicate)
        _ = service.estimator.true_histogram
    elapsed = time.perf_counter() - started
    written = service.save_statistics(args.out)
    size = Path(args.out).stat().st_size
    tags = len(service.catalog.tag_indices())
    print(
        f"built statistics over {len(service):,} elements "
        f"({tags} tags, grid {args.grid}, {args.workers} worker(s)) "
        f"in {elapsed:.3f}s"
    )
    print(f"saved {written} predicate summaries ({size:,} bytes) to {args.out}")
    service.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "stats": cmd_stats,
        "estimate": cmd_estimate,
        "workload": cmd_workload,
        "serve": cmd_serve,
        "client": cmd_client,
        "build": cmd_build,
        "recover": cmd_recover,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
