"""Command-line interface: ``python -m repro <command>``.

Three commands cover the practical workflow:

* ``generate`` -- produce one of the built-in synthetic data sets (or a
  document from a user DTD) as an XML file;
* ``stats`` -- predicate characteristics of an XML file (the paper's
  Table 1 / Table 3 view): counts, overlap property, summary storage;
* ``estimate`` -- estimate a query's answer size over an XML file,
  optionally comparing all estimators against the exact answer.

Examples
--------
::

    python -m repro generate dblp --scale 0.2 --out dblp.xml
    python -m repro stats dblp.xml
    python -m repro estimate dblp.xml "//article//author" --grid 10 --compare
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.estimation import AnswerSizeEstimator
from repro.histograms.storage import coverage_storage_bytes, position_storage_bytes
from repro.labeling import label_document
from repro.predicates.base import TagPredicate
from repro.utils.tables import format_table
from repro.xmltree.parser import parse_document
from repro.xmltree.writer import write_document


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Position-histogram answer-size estimation for XML queries "
        "(Wu, Patel, Jagadish; EDBT 2002).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic data set as an XML file"
    )
    generate.add_argument(
        "dataset",
        choices=[
            "dblp",
            "orgchart",
            "shakespeare",
            "xmark",
            "treebank",
            "paper-example",
        ],
        help="which built-in generator to run",
    )
    generate.add_argument("--out", required=True, help="output XML path")
    generate.add_argument("--seed", type=int, default=7, help="RNG seed")
    generate.add_argument(
        "--scale", type=float, default=0.2, help="size factor (dblp/xmark)"
    )

    stats = commands.add_parser(
        "stats", help="predicate characteristics of an XML file"
    )
    stats.add_argument("data", help="XML file path")
    stats.add_argument("--grid", type=int, default=10, help="grid side g")

    estimate = commands.add_parser(
        "estimate", help="estimate a query's answer size over an XML file"
    )
    estimate.add_argument("data", help="XML file path")
    estimate.add_argument("query", help='mini-XPath query, e.g. "//article//author"')
    estimate.add_argument("--grid", type=int, default=10, help="grid side g")
    estimate.add_argument(
        "--grid-kind",
        choices=["uniform", "equi-depth"],
        default="uniform",
        help="bucket boundary placement",
    )
    estimate.add_argument(
        "--compare",
        action="store_true",
        help="run every estimator and the exact matcher, print a table",
    )

    workload = commands.add_parser(
        "workload",
        help="random-twig accuracy study: q-error percentiles over N queries",
    )
    workload.add_argument("data", help="XML file path")
    workload.add_argument("--count", type=int, default=30, help="number of twigs")
    workload.add_argument("--grid", type=int, default=10, help="grid side g")
    workload.add_argument("--seed", type=int, default=0, help="workload seed")
    workload.add_argument(
        "--max-size", type=int, default=4, help="largest twig size"
    )
    return parser


def _load_estimator(path: str, grid: int, grid_kind: str = "uniform") -> AnswerSizeEstimator:
    text = Path(path).read_text()
    tree = label_document(parse_document(text))
    return AnswerSizeEstimator(tree, grid_size=grid, grid=grid_kind)


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import (
        generate_dblp,
        generate_orgchart,
        generate_shakespeare,
        generate_treebank,
        generate_xmark,
        paper_example_document,
    )

    if args.dataset == "dblp":
        document = generate_dblp(seed=args.seed, scale=args.scale)
    elif args.dataset == "orgchart":
        document = generate_orgchart(seed=args.seed)
    elif args.dataset == "shakespeare":
        document = generate_shakespeare(seed=args.seed)
    elif args.dataset == "xmark":
        document = generate_xmark(seed=args.seed, scale=args.scale)
    elif args.dataset == "treebank":
        document = generate_treebank(seed=args.seed, sentences=max(5, int(60 * args.scale)))
    else:
        document = paper_example_document()
    Path(args.out).write_text(write_document(document, indent=1))
    print(f"wrote {document.count_nodes():,} elements to {args.out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    estimator = _load_estimator(args.data, args.grid)
    rows = []
    for stats in estimator.catalog.register_all_tags():
        predicate = stats.predicate
        hist_bytes = position_storage_bytes(estimator.position_histogram(predicate))
        coverage = estimator.coverage_histogram(predicate)
        cvg_bytes = coverage_storage_bytes(coverage) if coverage else 0
        rows.append(
            [
                predicate.name,
                stats.count,
                "no overlap" if stats.no_overlap else "overlap",
                hist_bytes,
                cvg_bytes,
            ]
        )
    print(
        format_table(
            ["Predicate", "Node Count", "Overlap Property", "Hist Bytes", "Cvg Bytes"],
            rows,
            title=(
                f"{args.data}: {len(estimator.tree):,} elements, "
                f"{args.grid}x{args.grid} grid"
            ),
        )
    )
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    estimator = _load_estimator(args.data, args.grid, args.grid_kind)
    result = estimator.estimate(args.query)
    if not args.compare:
        print(f"{result.value:.2f}")
        return 0

    from repro.query.xpath import parse_xpath

    pattern = parse_xpath(args.query)
    rows = [[result.method, round(result.value, 2), f"{result.elapsed_seconds:.6f}"]]
    if pattern.size() == 2:
        anc = pattern.root.predicate
        desc = pattern.root.children[0].predicate
        methods = ["naive", "ph-join", "ph-join-level"]
        if estimator.is_no_overlap(anc):
            methods += ["upper-bound", "no-overlap"]
        for method in methods:
            r = estimator.estimate_pair(anc, desc, method=method)
            timing = f"{r.elapsed_seconds:.6f}" if r.elapsed_seconds else "-"
            rows.append([r.method, round(r.value, 2), timing])
    real = estimator.real_answer(args.query)
    rows.append(["exact", real, "-"])
    print(
        format_table(
            ["method", "answer size", "time (s)"],
            rows,
            title=f"{args.query} on {args.data}",
        )
    )
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import ErrorSummary, RandomTwigGenerator

    estimator = _load_estimator(args.data, args.grid)
    generator = RandomTwigGenerator(estimator.tree, seed=args.seed)
    workload = generator.workload(args.count, min_size=2, max_size=args.max_size)
    pairs = []
    for pattern in workload:
        estimate = estimator.estimate(pattern).value
        real = float(estimator.real_answer(pattern))
        pairs.append((estimate, real))
    summary = ErrorSummary.from_pairs(pairs)
    print(
        format_table(
            ["queries", "geo-mean q", "median q", "p90 q", "p99 q", "worst q"],
            [summary.as_row()],
            title=(
                f"q-error over {args.count} random twigs on {args.data} "
                f"({args.grid}x{args.grid} grid)"
            ),
        )
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "stats": cmd_stats,
        "estimate": cmd_estimate,
        "workload": cmd_workload,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
