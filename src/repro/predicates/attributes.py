"""Attribute predicates.

XML elements carry attributes (DBLP records have ``key``, XMark items
have ``id``); queries select on them just like on content.  These
predicates complete the predicate family of paper Section 3.4 --
attribute predicates are element-content predicates in the paper's
taxonomy, summarised by exactly the same position histograms.
"""

from __future__ import annotations

from typing import Optional

from repro.predicates.base import Predicate
from repro.xmltree.tree import Element


class AttributePresentPredicate(Predicate):
    """``@name`` -- the element has the attribute, any value."""

    def __init__(self, attribute: str, tag: Optional[str] = None) -> None:
        self.attribute = attribute
        self.tag = tag

    @property
    def name(self) -> str:
        scope = f"{self.tag}" if self.tag else "*"
        return f"{scope}[@{self.attribute}]"

    def matches(self, element: Element) -> bool:
        if self.tag is not None and element.tag != self.tag:
            return False
        return self.attribute in element.attributes

    def description(self) -> str:
        scope = f"{self.tag} " if self.tag else ""
        return f"{scope}has attribute @{self.attribute}"

    def _key(self) -> tuple:
        return (self.attribute, self.tag)


class AttributeEqualsPredicate(Predicate):
    """``@name = "value"`` -- exact attribute-value match."""

    def __init__(
        self, attribute: str, value: str, tag: Optional[str] = None
    ) -> None:
        self.attribute = attribute
        self.value = value
        self.tag = tag

    @property
    def name(self) -> str:
        scope = f"{self.tag}" if self.tag else "*"
        return f'{scope}[@{self.attribute}="{self.value}"]'

    def matches(self, element: Element) -> bool:
        if self.tag is not None and element.tag != self.tag:
            return False
        return element.attributes.get(self.attribute) == self.value

    def description(self) -> str:
        scope = f"{self.tag} " if self.tag else ""
        return f'{scope}@{self.attribute} = "{self.value}"'

    def _key(self) -> tuple:
        return (self.attribute, self.value, self.tag)


class AttributePrefixPredicate(Predicate):
    """``starts-with(@name, "prefix")`` -- DBLP keys are hierarchical
    (``journals/tods/...``), making prefix selection the natural
    attribute predicate, mirroring the paper's ``cite`` prefixes."""

    def __init__(
        self, attribute: str, prefix: str, tag: Optional[str] = None
    ) -> None:
        self.attribute = attribute
        self.prefix = prefix
        self.tag = tag

    @property
    def name(self) -> str:
        scope = f"{self.tag}" if self.tag else "*"
        return f'{scope}[@{self.attribute}^="{self.prefix}"]'

    def matches(self, element: Element) -> bool:
        if self.tag is not None and element.tag != self.tag:
            return False
        value = element.attributes.get(self.attribute)
        return value is not None and value.startswith(self.prefix)

    def description(self) -> str:
        scope = f"{self.tag} " if self.tag else ""
        return f'{scope}@{self.attribute} starts-with "{self.prefix}"'

    def _key(self) -> tuple:
        return (self.attribute, self.prefix, self.tag)
