"""Boolean composition of predicates.

Compound predicates arise both from query expressions and from the choice
of the basic predicate set ``P`` (paper Section 3.4).  The estimation
layer can either evaluate a compound predicate exactly (when building a
histogram from data) or synthesise its histogram from the component
histograms and the TRUE histogram under an in-cell independence
assumption (see :func:`repro.histograms.truehist.combine_histograms`).
"""

from __future__ import annotations

from repro.predicates.base import Predicate
from repro.xmltree.tree import Element


class AndPredicate(Predicate):
    """Conjunction of two or more predicates."""

    def __init__(self, *parts: Predicate) -> None:
        if len(parts) < 2:
            raise ValueError("AndPredicate needs at least two parts")
        self.parts = tuple(parts)

    @property
    def tag(self) -> str | None:
        """The tag every match must carry, when one conjunct pins it.

        Exposing it lets the catalog scan only that tag's candidate
        nodes (via its per-tag index) instead of the whole tree.
        """
        for part in self.parts:
            tag = getattr(part, "tag", None)
            if isinstance(tag, str):
                return tag
        return None

    @property
    def name(self) -> str:
        return "(" + " AND ".join(p.name for p in self.parts) + ")"

    def matches(self, element: Element) -> bool:
        return all(p.matches(element) for p in self.parts)

    def description(self) -> str:
        return " AND ".join(p.description() for p in self.parts)

    def _key(self) -> tuple:
        return self.parts


class OrPredicate(Predicate):
    """Disjunction of two or more predicates.

    The paper's decade predicates ("1990's") are Or-compositions of ten
    exact year predicates whose histograms are summed; see
    :func:`repro.histograms.truehist.or_histograms`.
    """

    def __init__(self, *parts: Predicate, label: str | None = None) -> None:
        if len(parts) < 2:
            raise ValueError("OrPredicate needs at least two parts")
        self.parts = tuple(parts)
        self.label = label

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        return "(" + " OR ".join(p.name for p in self.parts) + ")"

    def matches(self, element: Element) -> bool:
        return any(p.matches(element) for p in self.parts)

    def description(self) -> str:
        return " OR ".join(p.description() for p in self.parts)

    def _key(self) -> tuple:
        return self.parts + (self.label,)


class NotPredicate(Predicate):
    """Negation of a predicate."""

    def __init__(self, part: Predicate) -> None:
        self.part = part

    @property
    def name(self) -> str:
        return f"NOT {self.part.name}"

    def matches(self, element: Element) -> bool:
        return not self.part.matches(element)

    def description(self) -> str:
        return f"NOT ({self.part.description()})"

    def _key(self) -> tuple:
        return (self.part,)
