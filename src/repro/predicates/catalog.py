"""Predicate catalog: binding predicates to a labeled database tree.

The catalog is the bridge between the raw data and the summary
structures.  For each registered predicate it records the matching node
indices (the "index structure that identifies lists of nodes satisfying
each predicate" of paper Section 3.1), the cardinality, and whether the
predicate has the *no-overlap* property of Definition 2 -- determined
from the data itself, and optionally asserted from schema knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.labeling.interval import LabeledTree
from repro.predicates.base import Predicate, TagPredicate
from repro.xmltree.tree import Element


@dataclass
class PredicateStats:
    """Summary row for one predicate (the paper's Table 1 / Table 3 row).

    Attributes
    ----------
    predicate: the predicate object.
    node_indices: pre-order indices of matching nodes, ascending.
    count: number of matching nodes.
    no_overlap: True if no matching node is an ancestor of another
        matching node (Definition 2), as observed in the data.
    schema_no_overlap: optional assertion from schema analysis; when
        set it overrides the data-derived flag for estimation choices.
    """

    predicate: Predicate
    node_indices: np.ndarray
    count: int
    no_overlap: bool
    schema_no_overlap: Optional[bool] = None

    @property
    def effective_no_overlap(self) -> bool:
        """The overlap property the estimators should use."""
        if self.schema_no_overlap is not None:
            return self.schema_no_overlap
        return self.no_overlap


def detect_no_overlap(tree: LabeledTree, indices: np.ndarray) -> bool:
    """Check Definition 2 on a sorted list of node indices.

    With nodes sorted by start label, a set has the no-overlap property
    iff no node's interval contains the next node's interval -- nesting
    among matching nodes always manifests between start-adjacent pairs,
    because an ancestor's interval contains everything up to its end.
    We keep a running maximum of seen end labels: if the next start falls
    below it, some earlier matching node contains this one.
    """
    if len(indices) <= 1:
        return True
    starts = tree.start[indices]
    ends = tree.end[indices]
    running_end = ends[0]
    for k in range(1, len(indices)):
        if starts[k] < running_end:
            return False
        running_end = max(running_end, ends[k])
    return True


class PredicateCatalog:
    """All predicates known for one labeled database tree.

    Typical use::

        catalog = PredicateCatalog(tree)
        catalog.register_all_tags()
        stats = catalog.stats(TagPredicate("article"))
    """

    def __init__(self, tree: LabeledTree) -> None:
        self.tree = tree
        self._stats: dict[Predicate, PredicateStats] = {}

    # -- registration ----------------------------------------------------

    def register(
        self, predicate: Predicate, schema_no_overlap: Optional[bool] = None
    ) -> PredicateStats:
        """Evaluate ``predicate`` over the tree and record its stats.

        Registration is idempotent: re-registering returns the cached
        stats (updating the schema assertion if one is supplied).
        """
        if predicate in self._stats:
            stats = self._stats[predicate]
            if schema_no_overlap is not None:
                stats.schema_no_overlap = schema_no_overlap
            return stats

        indices = self._scan(predicate)
        stats = PredicateStats(
            predicate=predicate,
            node_indices=indices,
            count=int(len(indices)),
            no_overlap=detect_no_overlap(self.tree, indices),
            schema_no_overlap=schema_no_overlap,
        )
        self._stats[predicate] = stats
        return stats

    def register_all_tags(self) -> list[PredicateStats]:
        """Register a :class:`TagPredicate` for every distinct tag.

        This is the paper's recommendation: "there are not many element
        tags defined in an XML document, so it is easy to justify ...
        a histogram on each one of these distinct element tags."
        """
        by_tag: dict[str, list[int]] = {}
        for i, element in enumerate(self.tree.elements):
            by_tag.setdefault(element.tag, []).append(i)
        out: list[PredicateStats] = []
        for tag in sorted(by_tag):
            predicate = TagPredicate(tag)
            if predicate in self._stats:
                out.append(self._stats[predicate])
                continue
            indices = np.asarray(by_tag[tag], dtype=np.int64)
            stats = PredicateStats(
                predicate=predicate,
                node_indices=indices,
                count=int(len(indices)),
                no_overlap=detect_no_overlap(self.tree, indices),
            )
            self._stats[predicate] = stats
            out.append(stats)
        return out

    # -- lookup ----------------------------------------------------------

    def stats(self, predicate: Predicate) -> PredicateStats:
        """Stats for a predicate, registering it on first use."""
        if predicate not in self._stats:
            return self.register(predicate)
        return self._stats[predicate]

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._stats

    def __iter__(self) -> Iterator[PredicateStats]:
        return iter(self._stats.values())

    def __len__(self) -> int:
        return len(self._stats)

    def predicates(self) -> Iterable[Predicate]:
        """The registered predicates, in registration order."""
        return self._stats.keys()

    def matching_elements(self, predicate: Predicate) -> list[Element]:
        """The elements satisfying ``predicate``, in document order."""
        stats = self.stats(predicate)
        return [self.tree.elements[i] for i in stats.node_indices]

    # -- internals ---------------------------------------------------------

    def _scan(self, predicate: Predicate) -> np.ndarray:
        matches = [
            i for i, element in enumerate(self.tree.elements)
            if predicate.matches(element)
        ]
        return np.asarray(matches, dtype=np.int64)
