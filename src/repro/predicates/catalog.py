"""Predicate catalog: binding predicates to a labeled database tree.

The catalog is the bridge between the raw data and the summary
structures.  For each registered predicate it records the matching node
indices (the "index structure that identifies lists of nodes satisfying
each predicate" of paper Section 3.1), the cardinality, and whether the
predicate has the *no-overlap* property of Definition 2 -- determined
from the data itself, and optionally asserted from schema knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.labeling.interval import LabeledTree
from repro.predicates.base import Predicate, TagPredicate
from repro.utils.arrays import group_by_code
from repro.xmltree.tree import Element


@dataclass
class PredicateStats:
    """Summary row for one predicate (the paper's Table 1 / Table 3 row).

    Attributes
    ----------
    predicate: the predicate object.
    node_indices: pre-order indices of matching nodes, ascending.
    count: number of matching nodes.
    no_overlap: True if no matching node is an ancestor of another
        matching node (Definition 2), as observed in the data.
    schema_no_overlap: optional assertion from schema analysis; when
        set it overrides the data-derived flag for estimation choices.
    """

    predicate: Predicate
    node_indices: np.ndarray
    count: int
    no_overlap: bool
    schema_no_overlap: Optional[bool] = None

    @property
    def effective_no_overlap(self) -> bool:
        """The overlap property the estimators should use."""
        if self.schema_no_overlap is not None:
            return self.schema_no_overlap
        return self.no_overlap


def detect_no_overlap(tree: LabeledTree, indices: np.ndarray) -> bool:
    """Check Definition 2 on a sorted list of node indices.

    With nodes sorted by start label, a set has the no-overlap property
    iff no node's start falls below the running maximum of earlier end
    labels -- nesting among matching nodes always manifests against some
    earlier node, because an ancestor's interval contains everything up
    to its end.  The running maximum is one ``np.maximum.accumulate``.
    """
    if len(indices) <= 1:
        return True
    starts = tree.start[indices]
    running_end = np.maximum.accumulate(tree.end[indices])
    return not bool(np.any(starts[1:] < running_end[:-1]))


class PredicateCatalog:
    """All predicates known for one labeled database tree.

    Typical use::

        catalog = PredicateCatalog(tree)
        catalog.register_all_tags()
        stats = catalog.stats(TagPredicate("article"))
    """

    def __init__(self, tree: LabeledTree) -> None:
        self.tree = tree
        self._stats: dict[Predicate, PredicateStats] = {}
        self._tag_indices: Optional[dict[str, np.ndarray]] = None

    # -- tag index -------------------------------------------------------

    def tag_indices(self) -> dict[str, np.ndarray]:
        """Per-tag sorted node-index arrays, built once per catalog.

        One pass over the elements serves every tag-scoped predicate
        afterwards: tag predicates resolve by dictionary lookup, and
        attribute/content predicates scan only their tag's candidates.
        Grouping is a stable argsort over the tag column, so the only
        per-element Python work is reading the ``tag`` attribute.
        """
        if self._tag_indices is None:
            if not self.tree.elements:
                self._tag_indices = {}
                return self._tag_indices
            code_of: dict[str, int] = {}
            codes = np.fromiter(
                (code_of.setdefault(e.tag, len(code_of)) for e in self.tree.elements),
                dtype=np.int64,
                count=len(self.tree.elements),
            )
            tag_of = {code: tag for tag, code in code_of.items()}
            grouped = group_by_code(codes)
            for group in grouped.values():
                # The groups are shared: handed out as TagPredicate
                # node_indices and reused by every tag-scoped scan.
                group.setflags(write=False)
            self._tag_indices = {
                tag_of[code]: group for code, group in grouped.items()
            }
        return self._tag_indices

    # -- registration ----------------------------------------------------

    def register(
        self, predicate: Predicate, schema_no_overlap: Optional[bool] = None
    ) -> PredicateStats:
        """Evaluate ``predicate`` over the tree and record its stats.

        Registration is idempotent: re-registering returns the cached
        stats (updating the schema assertion if one is supplied).
        """
        if predicate in self._stats:
            stats = self._stats[predicate]
            if schema_no_overlap is not None:
                stats.schema_no_overlap = schema_no_overlap
            return stats

        indices = self._scan(predicate)
        stats = PredicateStats(
            predicate=predicate,
            node_indices=indices,
            count=int(len(indices)),
            no_overlap=detect_no_overlap(self.tree, indices),
            schema_no_overlap=schema_no_overlap,
        )
        self._stats[predicate] = stats
        return stats

    def register_all_tags(self) -> list[PredicateStats]:
        """Register a :class:`TagPredicate` for every distinct tag.

        This is the paper's recommendation: "there are not many element
        tags defined in an XML document, so it is easy to justify ...
        a histogram on each one of these distinct element tags."
        """
        return [self.register(TagPredicate(tag)) for tag in sorted(self.tag_indices())]

    def register_many(self, predicates: Iterable[Predicate]) -> list[PredicateStats]:
        """Register a batch of predicates, sharing element scans.

        Tag-scoped predicates resolve against the per-tag index; the
        remaining ones are evaluated together in a single pass over the
        elements instead of one full scan per predicate.  This is the
        catalog half of the workload-amortised estimation API.
        """
        predicates = list(dict.fromkeys(predicates))  # may be a generator
        unique = [p for p in predicates if p not in self._stats]
        full_scan = [
            p for p in unique if not isinstance(getattr(p, "tag", None), str)
        ]
        if len(full_scan) > 1:
            hits: dict[Predicate, list[int]] = {p: [] for p in full_scan}
            for i, element in enumerate(self.tree.elements):
                for p in full_scan:
                    if p.matches(element):
                        hits[p].append(i)
            for p, matched in hits.items():
                indices = np.asarray(matched, dtype=np.int64)
                self._stats[p] = PredicateStats(
                    predicate=p,
                    node_indices=indices,
                    count=int(len(indices)),
                    no_overlap=detect_no_overlap(self.tree, indices),
                )
        return [self.register(p) for p in predicates]

    # -- bulk installation (sharded builds) ------------------------------

    def install_built(self, built) -> list[PredicateStats]:
        """Install the output of a sharded statistics build
        (:func:`repro.histograms.parallel.build_statistics_parallel`).

        Replaces the per-tag index and registers a
        :class:`~repro.predicates.base.TagPredicate` row for every tag,
        skipping the per-predicate scans -- the index arrays were built
        per shard and merged, and are bit-identical to what
        :meth:`register_all_tags` would produce.  Returns the installed
        rows in tag order.
        """
        self._tag_indices = dict(built.tag_indices)
        rows = []
        for tag in sorted(built.tag_indices):
            predicate = TagPredicate(tag)
            stats = PredicateStats(
                predicate=predicate,
                node_indices=built.tag_indices[tag],
                count=int(len(built.tag_indices[tag])),
                no_overlap=built.no_overlap[tag],
            )
            self._stats[predicate] = stats
            rows.append(stats)
        return rows

    # -- incremental maintenance -----------------------------------------

    def apply_insert(
        self, position: int, elements: list[Element]
    ) -> dict[Predicate, np.ndarray]:
        """Account for ``elements`` spliced into the tree at pre-order
        ``position`` (the tree object must already hold the new nodes).

        Every registered predicate's node-index array is shifted past
        the splice point; predicates matched by some new element gain
        the corresponding indices, get their cardinality bumped, and
        have the no-overlap property re-checked (an insert can break it,
        never restore it).  Returns ``predicate -> inserted indices``
        (new numbering) for the predicates whose membership grew -- the
        delta the statistics service feeds to its histograms.
        """
        size = len(elements)
        if size == 0:
            return {}
        matched_by_tag: dict[str, list[int]] = {}
        for offset, element in enumerate(elements):
            matched_by_tag.setdefault(element.tag, []).append(offset)
        new_groups = {
            tag: position + np.asarray(offsets, dtype=np.int64)
            for tag, offsets in matched_by_tag.items()
        }

        if self._tag_indices is not None:
            for tag in set(self._tag_indices) | set(new_groups):
                group = self._tag_indices.get(tag)
                updated = self._spliced(
                    group if group is not None else np.empty(0, dtype=np.int64),
                    position,
                    size,
                    new_groups.get(tag),
                )
                updated.setflags(write=False)
                self._tag_indices[tag] = updated

        changed: dict[Predicate, np.ndarray] = {}
        for predicate, stats in self._stats.items():
            inserted = self._matches_of(predicate, elements, new_groups, position)
            stats.node_indices = self._spliced(
                stats.node_indices, position, size, inserted
            )
            if inserted is not None and inserted.size:
                changed[predicate] = inserted
                stats.count = int(len(stats.node_indices))
                stats.no_overlap = detect_no_overlap(self.tree, stats.node_indices)
        return changed

    def apply_delete(
        self, position: int, count: int
    ) -> dict[Predicate, np.ndarray]:
        """Account for the pre-order slice ``[position, position + count)``
        removed from the tree (the tree object must already be spliced).

        Returns ``predicate -> removed indices`` (old numbering) for the
        predicates whose membership shrank.  Removals can restore the
        no-overlap property, so it is re-checked for those predicates.
        """
        if count == 0:
            return {}
        if self._tag_indices is not None:
            for tag in list(self._tag_indices):
                group, _ = self._cut(self._tag_indices[tag], position, count)
                if group.size == 0:
                    del self._tag_indices[tag]
                else:
                    group.setflags(write=False)
                    self._tag_indices[tag] = group
        changed: dict[Predicate, np.ndarray] = {}
        for predicate, stats in self._stats.items():
            remaining, removed = self._cut(stats.node_indices, position, count)
            stats.node_indices = remaining
            if removed.size:
                changed[predicate] = removed
                stats.count = int(len(remaining))
                stats.no_overlap = detect_no_overlap(self.tree, remaining)
        return changed

    def apply_batch(
        self,
        remap: np.ndarray,
        inserted: list[tuple[int, Element]],
    ) -> dict[Predicate, tuple[np.ndarray, np.ndarray]]:
        """Account for a whole update batch in one pass per predicate.

        ``remap`` maps every pre-batch node index to its post-batch
        index (``-1`` for nodes the batch deleted); ``inserted`` lists
        the batch's net-new elements with their post-batch positions.
        The tree object must already hold the final state.  Each
        registered predicate's index array is rebuilt by one vectorised
        gather + merge -- independent of how many updates the batch
        coalesced -- and its no-overlap property is re-checked only when
        membership actually changed.  Returns ``predicate -> (added new
        positions, removed old indices)`` for predicates whose
        membership changed, both sorted ascending.
        """
        by_tag: dict[str, list[tuple[int, Element]]] = {}
        for position, element in inserted:
            by_tag.setdefault(element.tag, []).append((position, element))
        new_groups = {
            tag: np.sort(np.asarray([p for p, _ in pairs], dtype=np.int64))
            for tag, pairs in by_tag.items()
        }

        if self._tag_indices is not None:
            for tag in set(self._tag_indices) | set(new_groups):
                group = self._tag_indices.get(tag)
                if group is None:
                    survivors = np.empty(0, dtype=np.int64)
                else:
                    mapped = remap[group]
                    survivors = mapped[mapped >= 0]
                added = new_groups.get(tag)
                merged = (
                    survivors
                    if added is None
                    else np.sort(np.concatenate([survivors, added]))
                )
                if merged.size == 0:
                    self._tag_indices.pop(tag, None)
                else:
                    merged.setflags(write=False)
                    self._tag_indices[tag] = merged

        changed: dict[Predicate, tuple[np.ndarray, np.ndarray]] = {}
        empty = np.empty(0, dtype=np.int64)
        for predicate, stats in self._stats.items():
            mapped = remap[stats.node_indices]
            kept = mapped >= 0
            removed_old = stats.node_indices[~kept]
            added = self._batch_matches(predicate, by_tag, new_groups, inserted)
            if removed_old.size == 0 and (added is None or added.size == 0):
                # Splices preserve relative order, so the gather is
                # already sorted; membership (and overlap) unchanged.
                stats.node_indices = mapped
                continue
            if isinstance(predicate, TagPredicate) and self._tag_indices is not None:
                # The per-tag index merge above already produced exactly
                # this predicate's new array; don't merge it twice.
                new_indices = self._tag_indices.get(predicate.tag, empty)
            else:
                survivors = mapped[kept]
                new_indices = (
                    survivors
                    if added is None or added.size == 0
                    else np.sort(np.concatenate([survivors, added]))
                )
            stats.node_indices = new_indices
            stats.count = int(len(new_indices))
            stats.no_overlap = detect_no_overlap(self.tree, new_indices)
            changed[predicate] = (
                added if added is not None else empty,
                removed_old,
            )
        return changed

    def _batch_matches(
        self,
        predicate: Predicate,
        by_tag: dict[str, list[tuple[int, Element]]],
        new_groups: dict[str, np.ndarray],
        inserted: list[tuple[int, Element]],
    ) -> Optional[np.ndarray]:
        """Sorted post-batch positions of net-new elements matching
        ``predicate`` (None when none can match)."""
        tag = getattr(predicate, "tag", None)
        if isinstance(predicate, TagPredicate):
            return new_groups.get(tag)
        if isinstance(tag, str):
            pairs = by_tag.get(tag)
            if not pairs:
                return None
            hits = [p for p, e in pairs if predicate.matches(e)]
            return np.sort(np.asarray(hits, dtype=np.int64)) if hits else None
        hits = [p for p, e in inserted if predicate.matches(e)]
        return np.sort(np.asarray(hits, dtype=np.int64)) if hits else None

    @staticmethod
    def _spliced(
        indices: np.ndarray,
        position: int,
        size: int,
        inserted: Optional[np.ndarray],
    ) -> np.ndarray:
        """Shift a sorted index array for a splice, merging new members.

        The inserted block is contiguous at ``position``, so the merge
        is a three-way concatenation at one split point.
        """
        cut = int(np.searchsorted(indices, position))
        parts = [indices[:cut]]
        if inserted is not None and inserted.size:
            parts.append(inserted)
        parts.append(indices[cut:] + size)
        return np.concatenate(parts)

    @staticmethod
    def _cut(
        indices: np.ndarray, position: int, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop members inside the deleted slice, shift the tail down.

        Returns ``(remaining_new_numbering, removed_old_numbering)``.
        """
        lo = int(np.searchsorted(indices, position))
        hi = int(np.searchsorted(indices, position + count))
        removed = indices[lo:hi].copy()
        remaining = np.concatenate([indices[:lo], indices[hi:] - count])
        return remaining, removed

    def _matches_of(
        self,
        predicate: Predicate,
        elements: list[Element],
        new_groups: dict[str, np.ndarray],
        position: int,
    ) -> Optional[np.ndarray]:
        """New-element indices (new numbering) matching ``predicate``."""
        tag = getattr(predicate, "tag", None)
        if isinstance(predicate, TagPredicate):
            return new_groups.get(tag)
        if isinstance(tag, str):
            candidates = new_groups.get(tag)
            if candidates is None:
                return None
            hits = [
                int(i)
                for i in candidates.tolist()
                if predicate.matches(elements[i - position])
            ]
            return np.asarray(hits, dtype=np.int64) if hits else None
        hits = [
            position + offset
            for offset, element in enumerate(elements)
            if predicate.matches(element)
        ]
        return np.asarray(hits, dtype=np.int64) if hits else None

    # -- lookup ----------------------------------------------------------

    def stats(self, predicate: Predicate) -> PredicateStats:
        """Stats for a predicate, registering it on first use."""
        if predicate not in self._stats:
            return self.register(predicate)
        return self._stats[predicate]

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._stats

    def __iter__(self) -> Iterator[PredicateStats]:
        return iter(self._stats.values())

    def __len__(self) -> int:
        return len(self._stats)

    def predicates(self) -> Iterable[Predicate]:
        """The registered predicates, in registration order."""
        return self._stats.keys()

    def matching_elements(self, predicate: Predicate) -> list[Element]:
        """The elements satisfying ``predicate``, in document order."""
        stats = self.stats(predicate)
        return [self.tree.elements[i] for i in stats.node_indices]

    # -- internals ---------------------------------------------------------

    def _scan(self, predicate: Predicate) -> np.ndarray:
        tag = getattr(predicate, "tag", None)
        if isinstance(tag, str):
            candidates = self.tag_indices().get(tag)
            if candidates is None:
                return np.empty(0, dtype=np.int64)
            if isinstance(predicate, TagPredicate):
                return candidates
            elements = self.tree.elements
            mask = np.fromiter(
                (predicate.matches(elements[i]) for i in candidates.tolist()),
                dtype=bool,
                count=candidates.size,
            )
            return candidates[mask]
        return np.flatnonzero(predicate.matches_batch(self.tree.elements))
