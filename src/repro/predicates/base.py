"""Base node predicates.

A predicate maps an :class:`~repro.xmltree.tree.Element` to a boolean
(paper Section 2).  Every predicate has a stable ``name`` used as the key
in the :class:`~repro.predicates.catalog.PredicateCatalog` and in
histogram files, mirroring the "Predicate Name" column of the paper's
Tables 1 and 3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.xmltree.tree import Element


class Predicate(ABC):
    """A boolean predicate over element nodes.

    Subclasses must be value objects: equal predicates must compare and
    hash equal, because catalogs and estimators key off them.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Stable human-readable identifier (Tables 1 and 3 style)."""

    @abstractmethod
    def matches(self, element: Element) -> bool:
        """Evaluate the predicate on one element."""

    def matches_batch(self, elements: Sequence[Element]) -> np.ndarray:
        """Evaluate the predicate over a node list, returning a bool mask.

        The catalog scans through this hook so subclasses with cheap
        columnar evaluations can override it; the default is one fused
        ``fromiter`` pass with no intermediate list.
        """
        return np.fromiter(
            (self.matches(e) for e in elements), dtype=bool, count=len(elements)
        )

    @abstractmethod
    def description(self) -> str:
        """The 'Predicate' column text, e.g. ``element tag = "article"``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        """Value-identity key; subclasses override."""
        return (self.name,)


class TruePredicate(Predicate):
    """The predicate satisfied by every element.

    Its position histogram is the per-cell normalisation constant used
    for compound predicates (paper Section 3.4).
    """

    @property
    def name(self) -> str:
        return "TRUE"

    def matches(self, element: Element) -> bool:
        return True

    def matches_batch(self, elements: Sequence[Element]) -> np.ndarray:
        return np.ones(len(elements), dtype=bool)

    def description(self) -> str:
        return "TRUE (all elements)"


class TagPredicate(Predicate):
    """``element tag = <tag>`` -- the workhorse predicate of the paper."""

    def __init__(self, tag: str) -> None:
        self.tag = tag

    @property
    def name(self) -> str:
        return self.tag

    def matches(self, element: Element) -> bool:
        return element.tag == self.tag

    def description(self) -> str:
        return f'element tag = "{self.tag}"'

    def _key(self) -> tuple:
        return (self.tag,)


class _ContentPredicate(Predicate):
    """Shared machinery for content predicates.

    Content predicates inspect an element's immediate text content.  When
    ``tag`` is given, the predicate additionally requires that tag (the
    paper's year-content predicates are of this form: text nodes with a
    parent node ``year``).
    """

    def __init__(self, value: str, tag: Optional[str] = None) -> None:
        self.value = value
        self.tag = tag

    def _own_text(self, element: Element) -> str:
        from repro.xmltree.tree import Text

        return "".join(
            c.value for c in element.children if isinstance(c, Text)
        ).strip()

    def _tag_ok(self, element: Element) -> bool:
        return self.tag is None or element.tag == self.tag

    def _key(self) -> tuple:
        return (self.value, self.tag)


class ContentEqualsPredicate(_ContentPredicate):
    """Exact match on an element's own text content."""

    @property
    def name(self) -> str:
        return self.value if self.tag is None else f"{self.tag}={self.value}"

    def matches(self, element: Element) -> bool:
        return self._tag_ok(element) and self._own_text(element) == self.value

    def description(self) -> str:
        scope = f"{self.tag} " if self.tag else ""
        return f'{scope}text = "{self.value}"'


class ContentPrefixPredicate(_ContentPredicate):
    """Prefix match, e.g. the paper's ``text start-with "conf"``."""

    @property
    def name(self) -> str:
        return self.value if self.tag is None else f"{self.tag}^={self.value}"

    def matches(self, element: Element) -> bool:
        return self._tag_ok(element) and self._own_text(element).startswith(self.value)

    def description(self) -> str:
        scope = f"{self.tag} " if self.tag else ""
        return f'{scope}text start-with "{self.value}"'


class ContentSuffixPredicate(_ContentPredicate):
    """Suffix match on an element's own text content."""

    @property
    def name(self) -> str:
        return f"*{self.value}" if self.tag is None else f"{self.tag}$={self.value}"

    def matches(self, element: Element) -> bool:
        return self._tag_ok(element) and self._own_text(element).endswith(self.value)

    def description(self) -> str:
        scope = f"{self.tag} " if self.tag else ""
        return f'{scope}text end-with "{self.value}"'


class NumericRangePredicate(Predicate):
    """Numeric range over an element's own text, e.g. year in [1990, 1999].

    The paper's "1990's" compound predicate is the union of ten exact
    year predicates; this class provides the equivalent single predicate
    so both formulations can be compared.
    """

    def __init__(self, low: int, high: int, tag: Optional[str] = None,
                 label: Optional[str] = None) -> None:
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        self.low = low
        self.high = high
        self.tag = tag
        self.label = label

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        scope = f"{self.tag}:" if self.tag else ""
        return f"{scope}[{self.low}..{self.high}]"

    def matches(self, element: Element) -> bool:
        if self.tag is not None and element.tag != self.tag:
            return False
        from repro.xmltree.tree import Text

        raw = "".join(
            c.value for c in element.children if isinstance(c, Text)
        ).strip()
        try:
            value = int(raw)
        except ValueError:
            return False
        return self.low <= value <= self.high

    def description(self) -> str:
        scope = f"{self.tag} " if self.tag else ""
        return f"{scope}text in [{self.low}, {self.high}]"

    def _key(self) -> tuple:
        return (self.low, self.high, self.tag, self.label)
