"""Predicate system over XML element nodes.

Section 2 of the paper assumes a set ``P`` of boolean node predicates;
Section 3.4 divides them into *element-tag* predicates and
*element-content* predicates, and shows how compound (boolean) predicates
are handled via a TRUE histogram.  This package provides:

* :mod:`repro.predicates.base` -- tag predicates and the content
  predicate family (exact / prefix / suffix / numeric range).
* :mod:`repro.predicates.boolean` -- And / Or / Not composition.
* :mod:`repro.predicates.catalog` -- a :class:`PredicateCatalog` binding
  predicates to a labeled tree: node lists, cardinalities, and the
  data-derived no-overlap property of Definition 2.
"""

from repro.predicates.attributes import (
    AttributeEqualsPredicate,
    AttributePrefixPredicate,
    AttributePresentPredicate,
)
from repro.predicates.base import (
    ContentEqualsPredicate,
    ContentPrefixPredicate,
    ContentSuffixPredicate,
    NumericRangePredicate,
    Predicate,
    TagPredicate,
    TruePredicate,
)
from repro.predicates.boolean import AndPredicate, NotPredicate, OrPredicate
from repro.predicates.catalog import PredicateCatalog, PredicateStats

__all__ = [
    "AndPredicate",
    "AttributeEqualsPredicate",
    "AttributePrefixPredicate",
    "AttributePresentPredicate",
    "ContentEqualsPredicate",
    "ContentPrefixPredicate",
    "ContentSuffixPredicate",
    "NotPredicate",
    "NumericRangePredicate",
    "OrPredicate",
    "Predicate",
    "PredicateCatalog",
    "PredicateStats",
    "TagPredicate",
    "TruePredicate",
]
