"""A small cost-based twig-join optimizer (the paper's motivating use).

The paper's introduction argues the whole point of answer-size
estimation: a query like ``department//faculty[TA][RA]`` can be
evaluated by structural joins in several orders, and "depending on the
cardinalities of the intermediate result set, one plan may be
substantially better than another."  This package closes that loop:

* :mod:`repro.optimizer.plans` -- join plans: orderings of the twig's
  edges such that the joined subpattern stays connected;
* :mod:`repro.optimizer.cost` -- a cost model charging each structural
  join its input and (estimated) output cardinalities;
* :mod:`repro.optimizer.optimizer` -- exhaustive plan enumeration and
  selection, plus execution of the chosen plan with the stack-tree
  join for end-to-end validation.
"""

from repro.optimizer.cost import PlanCost, estimate_plan_cost
from repro.optimizer.optimizer import Optimizer, PlanChoice
from repro.optimizer.plans import JoinPlan, JoinStep, enumerate_plans

__all__ = [
    "JoinPlan",
    "JoinStep",
    "Optimizer",
    "PlanChoice",
    "PlanCost",
    "enumerate_plans",
    "estimate_plan_cost",
]
