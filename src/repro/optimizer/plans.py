"""Join plans over twig patterns.

A twig with ``k`` edges is evaluated as a sequence of ``k`` pairwise
structural joins.  A :class:`JoinPlan` is an ordering of the edges such
that after every step the set of joined pattern nodes is connected --
the standard "no cross products" restriction.  Each step joins the
current intermediate result with one new pattern node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.query.pattern import PatternNode, PatternTree


@dataclass(frozen=True)
class JoinStep:
    """One pairwise join: attach ``child`` below ``parent``.

    Node identity is positional: indices into the pattern's pre-order
    node list (stable across copies of the same pattern).
    """

    parent: int
    child: int

    def __str__(self) -> str:
        return f"({self.parent} -> {self.child})"


@dataclass(frozen=True)
class JoinPlan:
    """An ordered sequence of join steps covering every pattern edge."""

    steps: tuple[JoinStep, ...]

    def __str__(self) -> str:
        return " , ".join(str(s) for s in self.steps)

    def joined_after(self, count: int) -> frozenset[int]:
        """The set of pattern-node indices joined after ``count`` steps."""
        nodes: set[int] = set()
        for step in self.steps[:count]:
            nodes.add(step.parent)
            nodes.add(step.child)
        return frozenset(nodes)


def pattern_edges(pattern: PatternTree) -> list[JoinStep]:
    """The edges of a pattern as (parent-index, child-index) pairs."""
    nodes = pattern.nodes()
    index_of = {id(n): i for i, n in enumerate(nodes)}
    return [
        JoinStep(parent=index_of[id(node.parent)], child=index_of[id(node)])
        for node in nodes
        if node.parent is not None
    ]


def enumerate_plans(pattern: PatternTree) -> Iterator[JoinPlan]:
    """Yield every connected join order for the pattern's edges.

    Backtracking over edge permutations with a connectivity filter: a
    step may be appended only if it shares a node with the already
    joined set (the first step is free).  Exhaustive -- intended for the
    small twigs of the paper (2-6 nodes).
    """
    edges = pattern_edges(pattern)
    if not edges:
        return

    def extend(
        chosen: list[JoinStep], joined: set[int], remaining: list[JoinStep]
    ) -> Iterator[JoinPlan]:
        if not remaining:
            yield JoinPlan(tuple(chosen))
            return
        for index, edge in enumerate(remaining):
            if joined and edge.parent not in joined and edge.child not in joined:
                continue
            chosen.append(edge)
            added = {n for n in (edge.parent, edge.child) if n not in joined}
            joined.update(added)
            rest = remaining[:index] + remaining[index + 1 :]
            yield from extend(chosen, joined, rest)
            chosen.pop()
            joined.difference_update(added)

    yield from extend([], set(), edges)


def induced_subpattern(
    pattern: PatternTree, node_indices: frozenset[int]
) -> Optional[PatternTree]:
    """The subpattern induced by a connected set of node indices.

    Returns a fresh :class:`PatternTree` rooted at the topmost included
    node.  Edges of the induced pattern correspond to original edges;
    an excluded node between two included ones cannot occur because the
    set is connected in the tree.  Returns None for the empty set.
    """
    if not node_indices:
        return None
    nodes = pattern.nodes()
    included = sorted(node_indices)
    index_of = {id(n): i for i, n in enumerate(nodes)}

    # The root of the induced pattern: the included node whose parent is
    # not included (unique, because the set is connected).
    roots = [
        i
        for i in included
        if nodes[i].parent is None or index_of[id(nodes[i].parent)] not in node_indices
    ]
    if len(roots) != 1:
        raise ValueError(f"node set {set(node_indices)} is not connected")

    copies: dict[int, PatternNode] = {}
    for i in included:
        original = nodes[i]
        copies[i] = PatternNode(original.predicate, original.axis)
    for i in included:
        original = nodes[i]
        if original.parent is not None:
            p = index_of[id(original.parent)]
            if p in node_indices:
                copies[p].attach(copies[i])
    return PatternTree(copies[roots[0]])
