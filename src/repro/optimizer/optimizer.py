"""Plan enumeration and selection driven by answer-size estimates.

:class:`Optimizer` enumerates every connected join order for a twig,
costs each with the estimator-backed cost model, and picks the cheapest.
For validation it can re-cost plans with exact match counts, so
experiments can report how often (and by how much) estimate-driven
choices match the true optimum -- the end-to-end payoff the paper's
introduction promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.estimation.estimator import AnswerSizeEstimator
from repro.optimizer.cost import PlanCost, estimate_plan_cost
from repro.optimizer.plans import JoinPlan, enumerate_plans
from repro.query.pattern import PatternTree


@dataclass
class PlanChoice:
    """Outcome of optimizing one twig."""

    best: PlanCost
    all_plans: list[PlanCost]
    _ranks: Optional[dict[JoinPlan, int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def plan_count(self) -> int:
        return len(self.all_plans)

    def rank_of(self, plan_cost: PlanCost) -> int:
        """1-based rank of a plan among all plans by total cost.

        The ranking is computed once and cached: repeated calls (the
        optimizer benches rank every plan of every twig) are dictionary
        lookups, not re-sorts.  Ties keep enumeration order, matching
        the stable sort the ranking is derived from.
        """
        if self._ranks is None:
            ordered = sorted(self.all_plans, key=lambda p: p.total)
            ranks: dict[JoinPlan, int] = {}
            for rank, candidate in enumerate(ordered, start=1):
                ranks.setdefault(candidate.plan, rank)
            self._ranks = ranks
        try:
            return self._ranks[plan_cost.plan]
        except KeyError:
            raise ValueError("plan not among the enumerated plans") from None


class Optimizer:
    """Cost-based join-order selection for twig queries."""

    def __init__(self, estimator: AnswerSizeEstimator) -> None:
        self.estimator = estimator
        self._estimate_cache: dict[str, float] = {}
        self._exact_cache: dict[str, float] = {}

    # -- size oracles -------------------------------------------------------

    def _estimated_size(self, pattern: PatternTree) -> float:
        key = pattern.to_xpath()
        if key not in self._estimate_cache:
            if pattern.size() == 1:
                predicate = pattern.root.predicate
                self._estimate_cache[key] = float(
                    self.estimator.catalog.stats(predicate).count
                )
            else:
                self._estimate_cache[key] = self.estimator.estimate(pattern).value
        return self._estimate_cache[key]

    def _exact_size(self, pattern: PatternTree) -> float:
        key = pattern.to_xpath()
        if key not in self._exact_cache:
            if pattern.size() == 1:
                predicate = pattern.root.predicate
                self._exact_cache[key] = float(
                    self.estimator.catalog.stats(predicate).count
                )
            else:
                self._exact_cache[key] = float(self.estimator.real_answer(pattern))
        return self._exact_cache[key]

    # -- optimization ---------------------------------------------------------

    def choose_plan(self, pattern: PatternTree) -> PlanChoice:
        """Enumerate and cost all plans with *estimated* sizes."""
        return self._choose(pattern, self._estimated_size)

    def choose_plan_exact(self, pattern: PatternTree) -> PlanChoice:
        """Enumerate and cost all plans with *exact* sizes (oracle)."""
        return self._choose(pattern, self._exact_size)

    def _choose(self, pattern: PatternTree, oracle) -> PlanChoice:
        plans = list(enumerate_plans(pattern))
        if not plans:
            raise ValueError("pattern has no joins (single-node query)")
        costed = [
            estimate_plan_cost(pattern, plan, oracle, oracle) for plan in plans
        ]
        best = min(costed, key=lambda p: p.total)
        return PlanChoice(best=best, all_plans=costed)

    def validate_choice(self, pattern: PatternTree) -> dict[str, float]:
        """Compare the estimate-driven choice against the exact optimum.

        Returns a small report: the chosen plan's true cost, the true
        optimum's cost, and their ratio (1.0 = the estimator picked a
        truly optimal plan).
        """
        estimated_choice = self.choose_plan(pattern)
        exact_choice = self.choose_plan_exact(pattern)
        chosen_true_cost = estimate_plan_cost(
            pattern, estimated_choice.best.plan, self._exact_size, self._exact_size
        ).total
        optimal_cost = exact_choice.best.total
        return {
            "chosen_true_cost": chosen_true_cost,
            "optimal_true_cost": optimal_cost,
            "regret_ratio": (
                chosen_true_cost / optimal_cost if optimal_cost > 0 else 1.0
            ),
            "plan_count": float(estimated_choice.plan_count),
        }
