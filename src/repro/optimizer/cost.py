"""Cost model for twig join plans.

Each structural join step reads its two inputs and writes its output;
with the merge-based stack-tree join the work is linear in input and
output sizes, so the model charges::

    step_cost = |left input| + |right input| + |output|

where the left input is the intermediate result so far (match count of
the joined subpattern), the right input the cardinality of the new
node's predicate, and the output the match count of the extended
subpattern.  Sizes come from the estimator (planning) or from exact
counting (post-hoc validation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.optimizer.plans import JoinPlan, induced_subpattern
from repro.query.pattern import PatternTree

SizeOracle = Callable[[PatternTree], float]


@dataclass
class PlanCost:
    """Cost breakdown of one plan."""

    plan: JoinPlan
    step_costs: list[float]
    intermediate_sizes: list[float]

    @property
    def total(self) -> float:
        return sum(self.step_costs)


def estimate_plan_cost(
    pattern: PatternTree,
    plan: JoinPlan,
    subpattern_size: SizeOracle,
    leaf_size: SizeOracle,
) -> PlanCost:
    """Cost a plan using a size oracle for subpatterns.

    Parameters
    ----------
    pattern:
        The full twig.
    plan:
        The join order to cost.
    subpattern_size:
        Maps an induced subpattern to its (estimated or exact) match
        count.
    leaf_size:
        Maps a single-node pattern to its cardinality (usually also
        ``subpattern_size``, split out so estimators can use exact node
        counts for base inputs).
    """
    step_costs: list[float] = []
    intermediates: list[float] = []
    for step_number, step in enumerate(plan.steps, start=1):
        before = plan.joined_after(step_number - 1)
        after = plan.joined_after(step_number)

        if before:
            left_pattern = induced_subpattern(pattern, before)
            assert left_pattern is not None
            left = subpattern_size(left_pattern)
            (new_node,) = after - before
            right_pattern = induced_subpattern(pattern, frozenset({new_node}))
        else:
            # First step: both inputs are base node lists.
            left_pattern = induced_subpattern(pattern, frozenset({step.parent}))
            right_pattern = induced_subpattern(pattern, frozenset({step.child}))
            assert left_pattern is not None
            left = leaf_size(left_pattern)
        assert right_pattern is not None
        right = leaf_size(right_pattern)

        output_pattern = induced_subpattern(pattern, after)
        assert output_pattern is not None
        output = subpattern_size(output_pattern)

        step_costs.append(left + right + output)
        intermediates.append(output)
    return PlanCost(plan=plan, step_costs=step_costs, intermediate_sizes=intermediates)
