"""Plan execution with columnar structural joins.

:class:`PlanExecutor` runs a :class:`~repro.optimizer.plans.JoinPlan`
over a labeled tree: it seeds a binding table from the plan's first
edge and extends it one pattern node per step, using the vectorized
interval join to enumerate partner pair arrays and a columnar
gather/repeat expansion to keep full bindings -- no per-pair Python
dictionaries anywhere on the path.  The executor records
:class:`ExecutionStats` whose ``total_work`` is exactly the quantity
the optimizer's cost model predicts (input sizes + output size per
step), enabling end-to-end validation of estimate-driven plan choice
against *measured* work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.bindings import BindingTable
from repro.labeling.interval import LabeledTree
from repro.optimizer.plans import JoinPlan
from repro.predicates.catalog import PredicateCatalog
from repro.query.pattern import Axis, PatternTree
from repro.query.structjoin import vectorized_join_pairs


@dataclass
class StepStats:
    """Work accounting for one join step."""

    left_rows: int
    right_nodes: int
    output_rows: int

    @property
    def work(self) -> int:
        return self.left_rows + self.right_nodes + self.output_rows


@dataclass
class ExecutionStats:
    """Work accounting for a whole plan."""

    steps: list[StepStats] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        return sum(step.work for step in self.steps)

    @property
    def peak_intermediate(self) -> int:
        return max((step.output_rows for step in self.steps), default=0)


class PlanExecutor:
    """Execute twig join plans over one labeled database tree."""

    def __init__(self, tree: LabeledTree, catalog: PredicateCatalog) -> None:
        self.tree = tree
        self.catalog = catalog

    def execute(
        self, pattern: PatternTree, plan: JoinPlan
    ) -> tuple[BindingTable, ExecutionStats]:
        """Run ``plan`` and return the full binding table plus stats.

        The binding table's row count equals the twig's exact match
        count regardless of the join order chosen (tests verify this
        against the independent DP matcher).
        """
        nodes = pattern.nodes()
        stats = ExecutionStats()
        table: BindingTable | None = None

        for step in plan.steps:
            parent_id, child_id = step.parent, step.child
            axis = nodes[child_id].axis

            if table is None:
                parent_nodes = self._candidates(nodes[parent_id])
                table = BindingTable.single_column(parent_id, parent_nodes)

            if parent_id in table.columns:
                existing_id, new_id, new_is_child = parent_id, child_id, True
            elif child_id in table.columns:
                existing_id, new_id, new_is_child = child_id, parent_id, False
            else:
                raise ValueError(
                    f"plan step {step} is disconnected from the bindings"
                )

            bound = table.distinct_array(existing_id)
            candidates = self._candidates(nodes[new_id])
            if new_is_child:
                keys, partners = vectorized_join_pairs(
                    self.tree, bound, candidates, axis=axis
                )
            else:
                partners, keys = vectorized_join_pairs(
                    self.tree, candidates, bound, axis=axis
                )

            left_rows = len(table)
            table = table.expand_pairs(existing_id, new_id, keys, partners)
            stats.steps.append(
                StepStats(
                    left_rows=left_rows,
                    right_nodes=len(candidates),
                    output_rows=len(table),
                )
            )

        if table is None:
            raise ValueError("plan has no steps (single-node pattern)")
        return table, stats

    def _candidates(self, pattern_node) -> np.ndarray:
        return self.catalog.stats(pattern_node.predicate).node_indices
