"""Physical twig execution engine.

The paper's setting is TIMBER's cost-based optimizer choosing among
structural-join orders.  This package supplies the execution side: a
:class:`~repro.engine.bindings.BindingTable` of partial matches and a
plan :class:`~repro.engine.executor.PlanExecutor` that runs a
:class:`~repro.optimizer.plans.JoinPlan` step by step with stack-tree
joins, producing the full set of twig matches and an accounting of the
actual work done -- which is what the optimizer's cost model is trying
to predict.
"""

from repro.engine.bindings import BindingTable
from repro.engine.executor import ExecutionStats, PlanExecutor

__all__ = ["BindingTable", "ExecutionStats", "PlanExecutor"]
