"""Binding tables: intermediate results of twig-plan execution.

A binding table holds partial matches of a twig: one column per bound
pattern node (identified by its pre-order index in the pattern), one
row per distinct assignment of data-node indices to those pattern
nodes.  Storage is columnar: a single 2-D int64 array, so join
expansion is a vectorized gather/repeat instead of per-row Python
loops, and column extraction is a slice.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.utils.arrays import expand_ranges

RowsLike = Union[np.ndarray, Iterable[tuple[int, ...]]]


class BindingTable:
    """Partial twig matches: ``columns`` pattern-node ids, one row of
    data-node indices per match, stored as an ``(n_rows, n_cols)``
    int64 array."""

    def __init__(self, columns: Sequence[int], rows: RowsLike) -> None:
        self.columns = tuple(columns)
        width = len(self.columns)
        if isinstance(rows, np.ndarray):
            data = np.ascontiguousarray(rows, dtype=np.int64)
            if data.ndim != 2 or data.shape[1] != width:
                raise ValueError(
                    f"row width {data.shape[1] if data.ndim == 2 else '?'} "
                    f"does not match {width} columns"
                )
        else:
            row_list = [tuple(row) for row in rows]
            for row in row_list:
                if len(row) != width:
                    raise ValueError(
                        f"row width {len(row)} does not match {width} columns"
                    )
            data = np.asarray(row_list, dtype=np.int64).reshape(len(row_list), width)
        self.data = data

    @classmethod
    def single_column(cls, column: int, nodes: Iterable[int]) -> "BindingTable":
        """A base table: one pattern node, one row per matching data node."""
        values = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes), dtype=np.int64
        )
        return cls((column,), values.reshape(-1, 1))

    @property
    def rows(self) -> list[tuple[int, ...]]:
        """The rows as Python tuples (materialised on demand)."""
        return [tuple(row) for row in self.data.tolist()]

    def __len__(self) -> int:
        return self.data.shape[0]

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return (tuple(row) for row in self.data.tolist())

    def column_position(self, column: int) -> int:
        """Index of a pattern-node column within each row."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(f"pattern node {column} is not bound") from None

    def column_array(self, column: int) -> np.ndarray:
        """All data-node indices bound to one pattern node (with
        multiplicity, row order) as an int64 array."""
        return self.data[:, self.column_position(column)]

    def column_values(self, column: int) -> list[int]:
        """All data-node indices bound to one pattern node (with
        multiplicity, row order)."""
        return self.column_array(column).tolist()

    def expand_pairs(
        self,
        column: int,
        new_column: int,
        keys: np.ndarray,
        partners: np.ndarray,
    ) -> "BindingTable":
        """Join with a new pattern node given columnar join pairs.

        ``keys[k]`` is a data node that may appear in ``column``,
        ``partners[k]`` a data node joinable with it for ``new_column``;
        rows whose ``column`` value never appears in ``keys`` are
        dropped (inner join).  Vectorized: sort the pairs by key once,
        then locate each row's partner range with two binary searches
        and expand with gather/repeat.
        """
        position = self.column_position(column)
        keys = np.asarray(keys, dtype=np.int64)
        partners = np.asarray(partners, dtype=np.int64)
        if keys.shape != partners.shape:
            raise ValueError("keys and partners must be aligned 1-D arrays")
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        partners = partners[order]

        values = self.data[:, position]
        lo = np.searchsorted(keys, values, side="left")
        hi = np.searchsorted(keys, values, side="right")
        counts = hi - lo

        row_index = np.repeat(np.arange(self.data.shape[0]), counts)
        partner_index = expand_ranges(lo, hi)
        out = np.empty((len(partner_index), self.data.shape[1] + 1), dtype=np.int64)
        out[:, :-1] = self.data[row_index]
        out[:, -1] = partners[partner_index]
        return BindingTable(self.columns + (new_column,), out)

    def expand(
        self,
        column: int,
        new_column: int,
        matches: dict[int, list[int]],
    ) -> "BindingTable":
        """Join with a new pattern node given a match adjacency dict.

        Compatibility wrapper over :meth:`expand_pairs` for callers that
        hold ``{node: [partners]}`` mappings.
        """
        keys = np.asarray(
            [k for k, vs in matches.items() for _ in vs], dtype=np.int64
        )
        partners = np.asarray(
            [v for vs in matches.values() for v in vs], dtype=np.int64
        )
        return self.expand_pairs(column, new_column, keys, partners)

    def distinct_array(self, column: int) -> np.ndarray:
        """Sorted distinct data nodes bound to a pattern node (int64)."""
        return np.unique(self.column_array(column))

    def distinct(self, column: int) -> list[int]:
        """Sorted distinct data nodes bound to a pattern node."""
        return self.distinct_array(column).tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BindingTable(columns={self.columns}, rows={len(self)})"
