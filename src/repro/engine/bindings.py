"""Binding tables: intermediate results of twig-plan execution.

A binding table holds partial matches of a twig: one column per bound
pattern node (identified by its pre-order index in the pattern), one
row per distinct assignment of data-node indices to those pattern
nodes.  Stored as plain tuples in row-major lists -- simple, exact, and
fast enough for the data-set sizes of the experiments.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class BindingTable:
    """Partial twig matches: ``columns`` pattern-node ids, ``rows`` of
    data-node indices aligned with the columns."""

    def __init__(self, columns: Sequence[int], rows: Iterable[tuple[int, ...]]) -> None:
        self.columns = tuple(columns)
        self.rows = list(rows)
        width = len(self.columns)
        for row in self.rows:
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} does not match {width} columns"
                )

    @classmethod
    def single_column(cls, column: int, nodes: Iterable[int]) -> "BindingTable":
        """A base table: one pattern node, one row per matching data node."""
        return cls((column,), ((int(n),) for n in nodes))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.rows)

    def column_position(self, column: int) -> int:
        """Index of a pattern-node column within each row."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(f"pattern node {column} is not bound") from None

    def column_values(self, column: int) -> list[int]:
        """All data-node indices bound to one pattern node (with
        multiplicity, row order)."""
        position = self.column_position(column)
        return [row[position] for row in self.rows]

    def expand(
        self,
        column: int,
        new_column: int,
        matches: dict[int, list[int]],
    ) -> "BindingTable":
        """Join with a new pattern node.

        ``matches`` maps each data node that may appear in ``column`` to
        the data nodes joinable with it for ``new_column``; rows without
        matches are dropped (inner join).
        """
        position = self.column_position(column)
        out_rows: list[tuple[int, ...]] = []
        for row in self.rows:
            for partner in matches.get(row[position], ()):  # inner join
                out_rows.append(row + (partner,))
        return BindingTable(self.columns + (new_column,), out_rows)

    def distinct(self, column: int) -> list[int]:
        """Sorted distinct data nodes bound to a pattern node."""
        return sorted(set(self.column_values(column)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BindingTable(columns={self.columns}, rows={len(self.rows)})"
