"""Recursive-descent parser for DTD element declarations.

Parses the subset of DTD syntax needed for data generation and schema
analysis: ``<!ELEMENT name content-model>`` declarations.  Attribute
lists, entities and notations are skipped (tolerated, not modelled).

Content-model grammar::

    model    := 'EMPTY' | 'ANY' | group ('?' | '*' | '+')?
    group    := '(' body ')'
    body     := particle ( ',' particle )*      -- sequence
              | particle ( '|' particle )*      -- choice
              | '#PCDATA' ( '|' name )*         -- mixed content
    particle := name ('?' | '*' | '+')?
              | group ('?' | '*' | '+')?
"""

from __future__ import annotations

import re

from repro.dtd.ast import (
    AnyContent,
    Choice,
    ContentModel,
    ElementDecl,
    EmptyContent,
    NameRef,
    PCData,
    Repeat,
    RepeatKind,
    Sequence,
)

_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([-A-Za-z0-9._:]+)\s+(.*?)>", re.DOTALL)
_SKIPPED_RE = re.compile(r"<!(?:ATTLIST|ENTITY|NOTATION)\s.*?>", re.DOTALL)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_NAME_RE = re.compile(r"[-A-Za-z0-9._:]+")


class DTDParseError(ValueError):
    """Raised on malformed DTD input."""


def parse_dtd(text: str) -> dict[str, ElementDecl]:
    """Parse all element declarations in ``text``.

    Returns a mapping from element name to its declaration, in source
    order (dicts preserve insertion order).  Raises
    :class:`DTDParseError` on duplicate or malformed declarations.
    """
    text = _COMMENT_RE.sub(" ", text)
    text = _SKIPPED_RE.sub(" ", text)
    declarations: dict[str, ElementDecl] = {}
    for match in _ELEMENT_RE.finditer(text):
        name = match.group(1)
        if name in declarations:
            raise DTDParseError(f"duplicate declaration for element {name!r}")
        model = _parse_model(match.group(2).strip(), name)
        declarations[name] = ElementDecl(name, model)
    if not declarations:
        raise DTDParseError("no <!ELEMENT ...> declarations found")
    return declarations


def _parse_model(text: str, element: str) -> ContentModel:
    if text == "EMPTY":
        return EmptyContent()
    if text == "ANY":
        return AnyContent()
    parser = _ModelParser(text, element)
    model = parser.parse_particle(top_level=True)
    parser.skip_spaces()
    if not parser.eof():
        raise DTDParseError(
            f"trailing input {parser.rest()!r} in content model of {element!r}"
        )
    return model


class _ModelParser:
    def __init__(self, text: str, element: str) -> None:
        self.text = text
        self.pos = 0
        self.element = element

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def rest(self) -> str:
        return self.text[self.pos :]

    def skip_spaces(self) -> None:
        while not self.eof() and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if not self.eof() else ""

    def fail(self, message: str) -> DTDParseError:
        return DTDParseError(
            f"{message} at position {self.pos} in content model of "
            f"{self.element!r}: {self.text!r}"
        )

    def parse_particle(self, top_level: bool = False) -> ContentModel:
        self.skip_spaces()
        if self.peek() == "(":
            inner = self.parse_group()
        elif self.text.startswith("#PCDATA", self.pos):
            self.pos += len("#PCDATA")
            inner = PCData()
        else:
            match = _NAME_RE.match(self.text, self.pos)
            if match is None:
                raise self.fail("expected a name, '(' or '#PCDATA'")
            self.pos = match.end()
            inner = NameRef(match.group())
        return self._maybe_repeat(inner)

    def parse_group(self) -> ContentModel:
        assert self.peek() == "("
        self.pos += 1
        items = [self.parse_particle()]
        self.skip_spaces()
        separator = ""
        while self.peek() in (",", "|"):
            if separator and self.peek() != separator:
                raise self.fail("cannot mix ',' and '|' in one group")
            separator = self.peek()
            self.pos += 1
            items.append(self.parse_particle())
            self.skip_spaces()
        if self.peek() != ")":
            raise self.fail("expected ')'")
        self.pos += 1
        if len(items) == 1:
            return items[0]
        if separator == "|":
            return Choice(tuple(items))
        return Sequence(tuple(items))

    def _maybe_repeat(self, inner: ContentModel) -> ContentModel:
        if self.peek() in ("?", "*", "+"):
            kind = RepeatKind(self.peek())
            self.pos += 1
            return Repeat(inner, kind)
        return inner
