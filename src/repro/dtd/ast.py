"""Content-model AST for DTD element declarations."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Union


class RepeatKind(Enum):
    """The three DTD occurrence operators."""

    OPTIONAL = "?"   # zero or one
    STAR = "*"       # zero or more
    PLUS = "+"       # one or more


@dataclass(frozen=True)
class NameRef:
    """Reference to a child element by tag name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PCData:
    """``#PCDATA`` -- character data content."""

    def __str__(self) -> str:
        return "#PCDATA"


@dataclass(frozen=True)
class EmptyContent:
    """``EMPTY`` -- the element has no content."""

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class AnyContent:
    """``ANY`` -- the element may contain anything."""

    def __str__(self) -> str:
        return "ANY"


@dataclass(frozen=True)
class Sequence:
    """``(a, b, c)`` -- ordered sequence."""

    items: tuple["ContentModel", ...]

    def __str__(self) -> str:
        return "(" + ",".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Choice:
    """``(a | b | c)`` -- exclusive choice."""

    options: tuple["ContentModel", ...]

    def __str__(self) -> str:
        return "(" + "|".join(str(o) for o in self.options) + ")"


@dataclass(frozen=True)
class Repeat:
    """A content particle with an occurrence operator."""

    item: "ContentModel"
    kind: RepeatKind

    def __str__(self) -> str:
        return f"{self.item}{self.kind.value}"


ContentModel = Union[NameRef, PCData, EmptyContent, AnyContent, Sequence, Choice, Repeat]


@dataclass(frozen=True)
class ElementDecl:
    """One ``<!ELEMENT name model>`` declaration."""

    name: str
    model: ContentModel

    def __str__(self) -> str:
        return f"<!ELEMENT {self.name} {self.model}>"


def referenced_names(model: ContentModel) -> Iterator[str]:
    """Yield every element name mentioned in a content model."""
    stack: list[ContentModel] = [model]
    while stack:
        node = stack.pop()
        if isinstance(node, NameRef):
            yield node.name
        elif isinstance(node, Sequence):
            stack.extend(node.items)
        elif isinstance(node, Choice):
            stack.extend(node.options)
        elif isinstance(node, Repeat):
            stack.append(node.item)
        # PCData / EmptyContent / AnyContent reference nothing.
