"""Schema analysis over a parsed DTD.

Section 4 of the paper exploits schema knowledge, chiefly the no-overlap
property: "for a given predicate, two nodes satisfying the predicate
cannot have any ancestor-descendant relationship."  For an element-tag
predicate this holds exactly when the tag cannot transitively contain
itself in the containment graph induced by the DTD.

:func:`analyze_dtd` builds that graph and computes, per tag:

* ``can_contain`` -- the set of tags reachable as descendants;
* ``no_overlap`` -- whether the tag is schema-guaranteed no-overlap;
* ``zero_pairs`` / ``guaranteed_parent`` helpers backing the paper's
  other schema shortcuts ("estimate is zero", "equal to the child
  count").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.ast import (
    AnyContent,
    Choice,
    ContentModel,
    ElementDecl,
    NameRef,
    Repeat,
    RepeatKind,
    Sequence,
    referenced_names,
)


@dataclass
class SchemaAnalysis:
    """Derived structural facts about a DTD."""

    declarations: dict[str, ElementDecl]
    #: direct containment: tag -> tags that may appear as children
    children: dict[str, set[str]]
    #: transitive containment: tag -> tags reachable as descendants
    reachable: dict[str, set[str]]

    def no_overlap(self, tag: str) -> bool:
        """Schema-guaranteed no-overlap: the tag cannot contain itself."""
        return tag not in self.reachable.get(tag, set())

    def can_contain(self, ancestor: str, descendant: str) -> bool:
        """Whether ``descendant`` may appear under ``ancestor`` at any depth."""
        return descendant in self.reachable.get(ancestor, set())

    def zero_answer(self, ancestor: str, descendant: str) -> bool:
        """The paper's first shortcut: if the schema forbids the
        nesting, the pattern's answer size is exactly zero."""
        return not self.can_contain(ancestor, descendant)

    def sole_parent(self, child: str) -> str | None:
        """If exactly one tag may directly contain ``child``, return it.

        This backs the paper's second shortcut: when every ``author``
        has a ``book`` parent, ``|book//author| = |author|``.
        """
        parents = [
            tag for tag, kids in self.children.items() if child in kids
        ]
        if len(parents) == 1:
            return parents[0]
        return None

    def mandatory_tags(self, tag: str) -> set[str]:
        """Direct children that must occur at least once under ``tag``."""
        decl = self.declarations.get(tag)
        if decl is None:
            return set()
        return _mandatory(decl.model)


def analyze_dtd(declarations: dict[str, ElementDecl]) -> SchemaAnalysis:
    """Compute containment reachability for a parsed DTD."""
    children: dict[str, set[str]] = {}
    for name, decl in declarations.items():
        if isinstance(decl.model, AnyContent):
            children[name] = set(declarations)
        else:
            children[name] = set(referenced_names(decl.model))

    reachable: dict[str, set[str]] = {}
    for name in declarations:
        seen: set[str] = set()
        stack = list(children.get(name, ()))
        while stack:
            tag = stack.pop()
            if tag in seen:
                continue
            seen.add(tag)
            stack.extend(children.get(tag, ()))
        reachable[name] = seen
    return SchemaAnalysis(declarations, children, reachable)


def _mandatory(model: ContentModel) -> set[str]:
    """Tags guaranteed to occur at least once under this model."""
    if isinstance(model, NameRef):
        return {model.name}
    if isinstance(model, Sequence):
        out: set[str] = set()
        for item in model.items:
            out |= _mandatory(item)
        return out
    if isinstance(model, Choice):
        options = [_mandatory(o) for o in model.options]
        if not options:
            return set()
        common = options[0]
        for other in options[1:]:
            common = common & other
        return common
    if isinstance(model, Repeat):
        if model.kind is RepeatKind.PLUS:
            return _mandatory(model.item)
        return set()  # ? and * may produce zero occurrences
    return set()
