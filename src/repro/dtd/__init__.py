"""DTD substrate: parsing and schema analysis.

The paper's synthetic experiments (Section 5.2) use the IBM XML
generator driven by a DTD; its no-overlap reasoning (Section 4) is
schema knowledge.  This package provides both halves:

* :mod:`repro.dtd.ast` and :mod:`repro.dtd.parser` -- a content-model
  AST and a recursive-descent parser for ``<!ELEMENT ...>``
  declarations (sequences, choices, ``?``/``*``/``+``, ``#PCDATA``,
  ``EMPTY``, ``ANY``);
* :mod:`repro.dtd.analyzer` -- containment-graph analysis deriving, for
  each element tag, whether the schema guarantees the no-overlap
  property (the tag cannot transitively contain itself).
"""

from repro.dtd.analyzer import SchemaAnalysis, analyze_dtd
from repro.dtd.ast import (
    AnyContent,
    Choice,
    ContentModel,
    ElementDecl,
    EmptyContent,
    NameRef,
    PCData,
    Repeat,
    RepeatKind,
    Sequence,
)
from repro.dtd.parser import DTDParseError, parse_dtd

__all__ = [
    "AnyContent",
    "Choice",
    "ContentModel",
    "DTDParseError",
    "ElementDecl",
    "EmptyContent",
    "NameRef",
    "PCData",
    "Repeat",
    "RepeatKind",
    "SchemaAnalysis",
    "Sequence",
    "analyze_dtd",
    "parse_dtd",
]
